"""Edge-list input/output.

Supports the plain whitespace-separated edge lists used by SNAP
(``com-DBLP.ungraph.txt``) and KONECT (``out.arenas-email``), including their
comment conventions (``#`` and ``%`` prefixed lines), plus a simple writer so
released (privacy-preserved) graphs can be exported.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator, Tuple, Union

from repro.exceptions import GraphFormatError
from repro.graphs.graph import Edge, Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "parse_edge_lines",
    "iter_edge_lines",
]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("#", "%", "//")


def _open_text(path: Path):
    """Open ``path`` for reading text, transparently handling ``.gz`` files."""
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open("r", encoding="utf-8")


def iter_edge_lines(lines: Iterable[str]) -> Iterator[Tuple[str, str]]:
    """Yield ``(u, v)`` string pairs from raw edge-list lines.

    Comment lines and blank lines are skipped.  Lines with extra columns
    (e.g. KONECT weight/timestamp columns) keep only the first two fields.

    Raises
    ------
    GraphFormatError
        If a non-comment line has fewer than two fields.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        fields = line.split()
        if len(fields) < 2:
            raise GraphFormatError(
                f"line {line_number}: expected at least two fields, got {line!r}"
            )
        yield fields[0], fields[1]


def parse_edge_lines(lines: Iterable[str], as_int: bool = True) -> Graph:
    """Build a :class:`Graph` from raw edge-list lines.

    Parameters
    ----------
    lines:
        Iterable of text lines (e.g. an open file).
    as_int:
        Convert node labels to ``int`` when every label parses as an integer
        (the SNAP / KONECT convention); otherwise keep them as strings.
    """
    pairs = list(iter_edge_lines(lines))
    if as_int:
        try:
            typed = [(int(u), int(v)) for u, v in pairs]
        except ValueError:
            typed = pairs
    else:
        typed = pairs
    graph = Graph()
    for u, v in typed:
        if u == v:
            continue  # drop self-loops; the TPP model assumes simple graphs
        graph.add_edge(u, v)
    return graph


def read_edge_list(path: PathLike, as_int: bool = True) -> Graph:
    """Read an edge-list file (optionally gzipped) into a :class:`Graph`."""
    path = Path(path)
    if not path.exists():
        raise GraphFormatError(f"edge list file does not exist: {path}")
    with _open_text(path) as handle:
        return parse_edge_lines(handle, as_int=as_int)


def write_edge_list(graph: Graph, path: PathLike, header: str = "") -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Parameters
    ----------
    graph:
        Graph to serialize.
    path:
        Destination file.
    header:
        Optional comment written as a ``#``-prefixed first line.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# {header}\n")
        for u, v in sorted(graph.edges(), key=lambda edge: (str(edge[0]), str(edge[1]))):
            handle.write(f"{u} {v}\n")


def edges_to_lines(edges: Iterable[Edge]) -> Iterator[str]:
    """Yield edge-list text lines for an iterable of edges (no trailing newline)."""
    for u, v in edges:
        yield f"{u} {v}"
