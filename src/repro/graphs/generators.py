"""Random graph generators.

The paper's related work relies on the classic generative models
(Erdős–Rényi, Barabási–Albert, Watts–Strogatz) and its datasets are sparse,
highly clustered social graphs.  These generators provide:

* the classic models, used in tests and ablation benchmarks, and
* :func:`powerlaw_cluster_graph` and :func:`planted_partition_graph`, which
  the synthetic dataset stand-ins (:mod:`repro.datasets.synthetic`) build on.

All generators take an explicit seed (or :class:`random.Random`) so every
experiment in the repository is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from repro.exceptions import GraphGenerationError
from repro.graphs.graph import Graph

__all__ = [
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "powerlaw_cluster_graph",
    "planted_partition_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
]

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    """Return a :class:`random.Random` built from ``seed`` (pass-through if given one)."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def complete_graph(n: int) -> Graph:
    """Return the complete graph on nodes ``0 .. n-1``."""
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def cycle_graph(n: int) -> Graph:
    """Return the cycle graph on nodes ``0 .. n-1`` (empty for n < 3)."""
    graph = Graph(nodes=range(n))
    if n >= 3:
        for u in range(n):
            graph.add_edge(u, (u + 1) % n)
    return graph


def path_graph(n: int) -> Graph:
    """Return the path graph on nodes ``0 .. n-1``."""
    graph = Graph(nodes=range(n))
    for u in range(n - 1):
        graph.add_edge(u, u + 1)
    return graph


def star_graph(n: int) -> Graph:
    """Return a star with center ``0`` and leaves ``1 .. n``."""
    graph = Graph(nodes=range(n + 1))
    for leaf in range(1, n + 1):
        graph.add_edge(0, leaf)
    return graph


def erdos_renyi_graph(n: int, p: float, seed: RandomLike = None) -> Graph:
    """Return a G(n, p) Erdős–Rényi random graph."""
    if not 0.0 <= p <= 1.0:
        raise GraphGenerationError(f"edge probability must be in [0, 1], got {p}")
    rng = _rng(seed)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def barabasi_albert_graph(n: int, m: int, seed: RandomLike = None) -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Parameters
    ----------
    n:
        Total number of nodes.
    m:
        Number of edges attached from every new node to existing nodes.
    """
    if m < 1 or m >= n:
        raise GraphGenerationError(f"m must satisfy 1 <= m < n, got m={m}, n={n}")
    rng = _rng(seed)
    graph = Graph(nodes=range(n))
    # seed clique-ish core: connect the first m+1 nodes as a path to bootstrap
    repeated_nodes: List[int] = []
    targets = list(range(m))
    for new_node in range(m, n):
        chosen = set()
        for target in targets:
            if target != new_node:
                chosen.add(target)
        # sorted: set iteration order is a CPython implementation detail;
        # the edge order feeds repeated_nodes and hence rng.choice below.
        for target in sorted(chosen):
            graph.add_edge(new_node, target)
            repeated_nodes.extend((new_node, target))
        # sample next targets proportionally to degree
        targets = _sample_distinct(repeated_nodes, m, rng)
    return graph


def _sample_distinct(population: Sequence[int], k: int, rng: random.Random) -> List[int]:
    """Sample up to ``k`` distinct values from ``population`` (with repetition bias)."""
    if not population:
        return []
    chosen = set()
    attempts = 0
    limit = 50 * max(k, 1)
    while len(chosen) < k and attempts < limit:
        chosen.add(rng.choice(population))
        attempts += 1
    # sorted: callers consume the sample in order, so returning the set's
    # hash order would leak CPython set internals into generated graphs.
    return sorted(chosen)


def watts_strogatz_graph(n: int, k: int, p: float, seed: RandomLike = None) -> Graph:
    """Return a Watts–Strogatz small-world graph.

    Starts from a ring lattice where every node connects to its ``k`` nearest
    neighbors (``k`` must be even) and rewires each edge with probability
    ``p``.
    """
    if k % 2 != 0:
        raise GraphGenerationError(f"k must be even, got {k}")
    if k >= n:
        raise GraphGenerationError(f"k must be < n, got k={k}, n={n}")
    rng = _rng(seed)
    graph = Graph(nodes=range(n))
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(node, (node + offset) % n)
    # rewire
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            neighbor = (node + offset) % n
            if rng.random() < p and graph.has_edge(node, neighbor):
                candidates = [
                    other
                    for other in range(n)
                    if other != node and not graph.has_edge(node, other)
                ]
                if candidates:
                    graph.remove_edge(node, neighbor)
                    graph.add_edge(node, rng.choice(candidates))
    return graph


def powerlaw_cluster_graph(
    n: int, m: int, triangle_probability: float, seed: RandomLike = None
) -> Graph:
    """Return a Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triangle-closing step connects the new node to a neighbor of the node it
    just attached to with probability ``triangle_probability``.  This yields
    the heavy-tailed degrees *and* high clustering typical of the social
    graphs (Arenas-email, DBLP) used in the paper's evaluation.
    """
    if m < 1 or m >= n:
        raise GraphGenerationError(f"m must satisfy 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphGenerationError(
            f"triangle_probability must be in [0, 1], got {triangle_probability}"
        )
    rng = _rng(seed)
    graph = Graph(nodes=range(n))
    repeated_nodes: List[int] = list(range(m))
    for new_node in range(m, n):
        added = 0
        last_target: Optional[int] = None
        guard = 0
        while added < m and guard < 50 * m:
            guard += 1
            close_triangle = (
                last_target is not None
                and rng.random() < triangle_probability
                and graph.degree(last_target) > 0
            )
            if close_triangle:
                candidates = [
                    w
                    for w in graph.neighbors(last_target)
                    if w != new_node and not graph.has_edge(new_node, w)
                ]
                if candidates:
                    target = rng.choice(candidates)
                else:
                    target = rng.choice(repeated_nodes)
            else:
                target = rng.choice(repeated_nodes)
            if target == new_node or graph.has_edge(new_node, target):
                continue
            graph.add_edge(new_node, target)
            repeated_nodes.extend((new_node, target))
            last_target = target
            added += 1
    return graph


def planted_partition_graph(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: RandomLike = None,
) -> Graph:
    """Return a planted-partition (stochastic block) graph.

    Nodes are split into communities of the given sizes; node pairs inside a
    community connect with probability ``p_in`` and pairs across communities
    with probability ``p_out``.  Used as the community-structured backbone of
    the DBLP-like synthetic dataset.
    """
    for p in (p_in, p_out):
        if not 0.0 <= p <= 1.0:
            raise GraphGenerationError(f"probabilities must be in [0, 1], got {p}")
    rng = _rng(seed)
    n = sum(community_sizes)
    graph = Graph(nodes=range(n))
    community_of = {}
    start = 0
    for index, size in enumerate(community_sizes):
        for node in range(start, start + size):
            community_of[node] = index
        start += size
    for u in range(n):
        for v in range(u + 1, n):
            probability = p_in if community_of[u] == community_of[v] else p_out
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph
