"""A lightweight undirected simple graph.

The whole library is built on this adjacency-set graph rather than on an
external dependency so that the substrate the paper relies on (an undirected,
unweighted, simple social graph) is implemented from scratch and fully under
test.  The API intentionally mirrors a small, familiar subset of networkx so
interop (see :mod:`repro.graphs.convert`) is trivial.

Edges are undirected and stored canonically; :func:`canonical_edge` defines
the canonical form used everywhere in the library (in particular for target
links and protector links in :mod:`repro.core`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError, SelfLoopError

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["Graph", "Node", "Edge", "canonical_edge", "edge_sort_key"]


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return the canonical (order-independent) representation of an edge.

    Nodes of mixed, non-comparable types fall back to ordering by ``repr``,
    which keeps canonicalisation total and deterministic.
    """
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


def edge_sort_key(edge: Edge) -> Tuple[str, str]:
    """Deterministic total ordering key for (canonical) edges.

    This is the library-wide tie-breaking order: the greedy algorithms break
    score ties by it, and :class:`~repro.graphs.indexed.IndexedGraph` assigns
    edge ids in this order so that comparing ids reproduces comparing keys.
    Defined here (not in :mod:`repro.core.selection`, which re-exports it)
    because the substrate layer must share it without importing core.
    """
    return (str(edge[0]), str(edge[1]))


class Graph:
    """An undirected simple graph backed by adjacency sets.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs inserted at construction time.
    nodes:
        Optional iterable of nodes inserted (possibly isolated) at
        construction time.

    Notes
    -----
    * Self-loops are rejected: the TPP model and every motif in the paper are
      defined on simple graphs.
    * Parallel edges collapse silently (set semantics), matching the
      unweighted social graphs used in the paper.
    """

    __slots__ = ("_adj",)

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        nodes: Iterable[Node] = (),
    ) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert ``node`` if absent; no-op otherwise."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Insert every node from ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert the undirected edge ``(u, v)``, creating endpoints if needed.

        Raises
        ------
        SelfLoopError
            If ``u == v`` (self-loops are not allowed).
        """
        if u == v:
            raise SelfLoopError(f"self-loops are not allowed: ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        """Insert every edge from ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the undirected edge ``(u, v)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError((u, v))
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def remove_edges_from(self, edges: Iterable[Edge]) -> None:
        """Remove every edge from ``edges``; missing edges are ignored."""
        for u, v in edges:
            if self.has_edge(u, v):
                self.remove_edge(u, v)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        NodeNotFoundError
            If the node is not present.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adj[node]):
            self._adj[neighbor].discard(node)
        del self._adj[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the undirected edge ``(u, v)`` is in the graph."""
        neighbors = self._adj.get(u)
        return neighbors is not None and v in neighbors

    def neighbors(self, node: Node) -> Set[Node]:
        """Return the neighbor set of ``node`` (a *copy-free live view*).

        The returned set is the internal adjacency set; callers must not
        mutate it.  Use ``set(graph.neighbors(n))`` for a private copy.

        Raises
        ------
        NodeNotFoundError
            If the node is not present.
        """
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``."""
        return len(self.neighbors(node))

    def degrees(self) -> Dict[Node, int]:
        """Return a dict mapping every node to its degree."""
        return {node: len(adj) for node, adj in self._adj.items()}

    def common_neighbors(self, u: Node, v: Node) -> Set[Node]:
        """Return the set of nodes adjacent to both ``u`` and ``v``."""
        nu, nv = self.neighbors(u), self.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return {w for w in nu if w in nv}

    # ------------------------------------------------------------------
    # iteration / sizes
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each yielded once in canonical form."""
        seen = set()
        for u, adj in self._adj.items():
            for v in adj:
                edge = canonical_edge(u, v)
                if edge not in seen:
                    seen.add(edge)
                    yield edge

    def edge_set(self) -> Set[Edge]:
        """Return the set of canonical edges."""
        return set(self.edges())

    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Return ``|E|``."""
        return sum(len(adj) for adj in self._adj.values()) // 2

    def density(self) -> float:
        """Return the edge density ``2m / (n (n - 1))`` (0.0 for n < 2)."""
        n = self.number_of_nodes()
        if n < 2:
            return 0.0
        return 2.0 * self.number_of_edges() / (n * (n - 1))

    # ------------------------------------------------------------------
    # copies / views
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep copy of the graph structure."""
        clone = Graph()
        clone._adj = {node: set(adj) for node, adj in self._adj.items()}
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes`` (unknown nodes ignored)."""
        keep = {node for node in nodes if node in self._adj}
        # Follow this graph's (insertion-ordered) node order rather than the
        # set's hash order so the subgraph's node iteration is deterministic.
        ordered = [node for node in self._adj if node in keep]
        sub = Graph(nodes=ordered)
        for u in ordered:
            for v in self._adj[u]:
                if v in keep:
                    sub.add_edge(u, v)
        return sub

    def without_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return a copy of the graph with ``edges`` removed (missing ignored)."""
        clone = self.copy()
        clone.remove_edges_from(edges)
        return clone

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return all(self._adj[node] == other._adj[node] for node in self._adj)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.number_of_nodes()}, "
            f"m={self.number_of_edges()})"
        )
