"""Graph substrate: data structure, algorithms, generators, IO and interop."""

from repro.graphs.algorithms import (
    average_clustering,
    average_shortest_path_length,
    bfs_distances,
    connected_components,
    core_numbers,
    is_connected,
    largest_connected_component,
    local_clustering,
    paths_of_length_three,
    paths_of_length_two,
    shortest_path_length,
    triangle_count,
    triangles_per_node,
)
from repro.graphs.community import (
    greedy_modularity_communities,
    label_propagation_communities,
    modularity,
)
from repro.graphs.convert import (
    from_adjacency,
    from_edge_list,
    from_indexed,
    from_networkx,
    to_adjacency,
    to_edge_list,
    to_indexed,
    to_networkx,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    planted_partition_graph,
    powerlaw_cluster_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Edge, Graph, Node, canonical_edge, edge_sort_key
from repro.graphs.indexed import IndexedGraph
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.spectral import (
    algebraic_connectivity,
    laplacian_eigenvalues,
    laplacian_matrix,
    second_largest_laplacian_eigenvalue,
)

__all__ = [
    "Graph",
    "Node",
    "Edge",
    "canonical_edge",
    "edge_sort_key",
    "IndexedGraph",
    # algorithms
    "bfs_distances",
    "shortest_path_length",
    "average_shortest_path_length",
    "connected_components",
    "largest_connected_component",
    "is_connected",
    "core_numbers",
    "triangles_per_node",
    "triangle_count",
    "local_clustering",
    "average_clustering",
    "paths_of_length_two",
    "paths_of_length_three",
    # community
    "modularity",
    "label_propagation_communities",
    "greedy_modularity_communities",
    # convert
    "from_edge_list",
    "to_edge_list",
    "from_adjacency",
    "to_adjacency",
    "from_networkx",
    "to_networkx",
    "to_indexed",
    "from_indexed",
    # generators
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "powerlaw_cluster_graph",
    "planted_partition_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    # io
    "read_edge_list",
    "write_edge_list",
    # spectral
    "laplacian_matrix",
    "laplacian_eigenvalues",
    "second_largest_laplacian_eigenvalue",
    "algebraic_connectivity",
]
