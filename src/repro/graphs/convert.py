"""Interop with external graph representations.

The library is self-contained, but users frequently hold their data as
networkx graphs, adjacency dictionaries or plain edge lists.  These helpers
convert between those representations and :class:`repro.graphs.Graph` without
making networkx a hard dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.graphs.graph import Edge, Graph, Node
from repro.graphs.indexed import IndexedGraph

__all__ = [
    "from_edge_list",
    "to_edge_list",
    "from_adjacency",
    "to_adjacency",
    "from_networkx",
    "to_networkx",
    "to_indexed",
    "from_indexed",
]


def from_edge_list(edges: Iterable[Edge], nodes: Iterable[Node] = ()) -> Graph:
    """Build a :class:`Graph` from an iterable of ``(u, v)`` pairs."""
    return Graph(edges=edges, nodes=nodes)


def to_edge_list(graph: Graph) -> List[Edge]:
    """Return the canonical edge list of ``graph`` (sorted for determinism)."""
    return sorted(graph.edges(), key=lambda edge: (str(edge[0]), str(edge[1])))


def from_adjacency(adjacency: Dict[Node, Iterable[Node]]) -> Graph:
    """Build a :class:`Graph` from a node -> neighbors mapping."""
    graph = Graph(nodes=adjacency.keys())
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            if neighbor != node:
                graph.add_edge(node, neighbor)
    return graph


def to_adjacency(graph: Graph) -> Dict[Node, Set[Node]]:
    """Return a node -> neighbor-set mapping (a deep copy)."""
    return {node: set(graph.neighbors(node)) for node in graph.nodes()}


def to_indexed(graph: Graph) -> IndexedGraph:
    """Freeze ``graph`` into a dense integer-indexed :class:`IndexedGraph`.

    The snapshot is immutable; node ids are assigned in ``str`` order and edge
    ids in ``edge_sort_key`` order (see :mod:`repro.graphs.indexed`).
    """
    return IndexedGraph(graph)


def from_indexed(indexed: IndexedGraph) -> Graph:
    """Materialise an :class:`IndexedGraph` snapshot back into a :class:`Graph`.

    ``from_indexed(to_indexed(g)) == g`` for every graph ``g``.
    """
    return indexed.to_graph()


def from_networkx(nx_graph) -> Graph:
    """Build a :class:`Graph` from a ``networkx.Graph``.

    Directed graphs are accepted and symmetrized; self-loops are dropped.
    """
    graph = Graph(nodes=nx_graph.nodes())
    for u, v in nx_graph.edges():
        if u != v:
            graph.add_edge(u, v)
    return graph


def to_networkx(graph: Graph):
    """Return a ``networkx.Graph`` with the same nodes and edges.

    Raises
    ------
    ImportError
        If networkx is not installed.
    """
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph
