"""Spectral graph quantities.

The paper's utility analysis (Table II) tracks the second largest eigenvalue
of the graph Laplacian ``L = D - A``.  This module builds the Laplacian and
computes its spectrum, preferring numpy when it is installed and otherwise
falling back to a pure-Python Jacobi eigenvalue iteration that is adequate
for the graph sizes used in tests.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.exceptions import UtilityError
from repro.graphs.graph import Graph, Node

__all__ = [
    "laplacian_matrix",
    "laplacian_eigenvalues",
    "second_largest_laplacian_eigenvalue",
    "algebraic_connectivity",
]


def laplacian_matrix(graph: Graph) -> List[List[float]]:
    """Return the dense Laplacian ``L = D - A`` as a list of rows.

    The row/column order follows ``sorted(graph.nodes(), key=str)`` so the
    matrix is deterministic for a given graph.
    """
    nodes = sorted(graph.nodes(), key=str)
    index: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    matrix = [[0.0] * n for _ in range(n)]
    for node in nodes:
        i = index[node]
        matrix[i][i] = float(graph.degree(node))
        for neighbor in graph.neighbors(node):
            matrix[i][index[neighbor]] = -1.0
    return matrix


def laplacian_eigenvalues(graph: Graph, max_nodes: int = 3000) -> List[float]:
    """Return all Laplacian eigenvalues sorted in ascending order.

    Parameters
    ----------
    graph:
        Graph whose Laplacian spectrum is computed.
    max_nodes:
        Safety limit; dense eigendecomposition is refused beyond this size
        (mirroring the paper, which skips spectral utility metrics on DBLP).

    Raises
    ------
    UtilityError
        If the graph exceeds ``max_nodes``.
    """
    n = graph.number_of_nodes()
    if n == 0:
        return []
    if n > max_nodes:
        raise UtilityError(
            f"refusing dense eigendecomposition for {n} nodes (limit {max_nodes})"
        )
    matrix = laplacian_matrix(graph)
    try:
        import numpy as np

        eigenvalues = np.linalg.eigvalsh(np.array(matrix))
        return [float(value) for value in sorted(eigenvalues)]
    except ImportError:
        return sorted(_jacobi_eigenvalues(matrix))


def second_largest_laplacian_eigenvalue(graph: Graph, max_nodes: int = 3000) -> float:
    """Return the second largest eigenvalue of the Laplacian (0.0 if n < 2)."""
    eigenvalues = laplacian_eigenvalues(graph, max_nodes=max_nodes)
    if len(eigenvalues) < 2:
        return 0.0
    return eigenvalues[-2]


def algebraic_connectivity(graph: Graph, max_nodes: int = 3000) -> float:
    """Return the second smallest Laplacian eigenvalue (Fiedler value)."""
    eigenvalues = laplacian_eigenvalues(graph, max_nodes=max_nodes)
    if len(eigenvalues) < 2:
        return 0.0
    return eigenvalues[1]


def _jacobi_eigenvalues(
    matrix: Sequence[Sequence[float]],
    tolerance: float = 1e-10,
    max_sweeps: int = 100,
) -> List[float]:
    """Compute eigenvalues of a symmetric matrix by cyclic Jacobi rotations.

    Pure-Python fallback used only when numpy is unavailable; O(n^3) per
    sweep, so it is intended for the small graphs exercised in tests.
    """
    a = [list(row) for row in matrix]
    n = len(a)
    for _ in range(max_sweeps):
        off_diagonal = math.sqrt(
            sum(a[i][j] ** 2 for i in range(n) for j in range(n) if i != j)
        )
        if off_diagonal < tolerance:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                if abs(a[p][q]) < tolerance:
                    continue
                theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q])
                sign = 1.0 if theta >= 0 else -1.0
                t = sign / (abs(theta) + math.sqrt(theta * theta + 1.0))
                c = 1.0 / math.sqrt(t * t + 1.0)
                s = t * c
                for k in range(n):
                    akp, akq = a[k][p], a[k][q]
                    a[k][p] = c * akp - s * akq
                    a[k][q] = s * akp + c * akq
                for k in range(n):
                    apk, aqk = a[p][k], a[q][k]
                    a[p][k] = c * apk - s * aqk
                    a[q][k] = s * apk + c * aqk
    return [a[i][i] for i in range(n)]
