"""Community detection and modularity.

The paper's utility analysis uses the Newman modularity of the community
partition (Table II, metric ``Mod``).  This module provides:

* :func:`modularity` — the modularity of a given partition, and
* two community detectors used to obtain that partition:
  :func:`label_propagation_communities` (fast, used for large graphs) and
  :func:`greedy_modularity_communities` (Clauset–Newman–Moore style greedy
  agglomeration, used for the Arenas-scale graphs).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Union

from repro.graphs.graph import Graph, Node

__all__ = [
    "modularity",
    "label_propagation_communities",
    "greedy_modularity_communities",
    "partition_from_communities",
    "best_partition_modularity",
]

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def partition_from_communities(
    communities: Iterable[Iterable[Node]],
) -> Dict[Node, int]:
    """Return a node -> community-id mapping from a list of communities."""
    partition: Dict[Node, int] = {}
    for community_id, community in enumerate(communities):
        for node in community:
            partition[node] = community_id
    return partition


def modularity(graph: Graph, communities: Sequence[Iterable[Node]]) -> float:
    """Return the Newman modularity of ``communities`` on ``graph``.

    ``Mod = (1 / 2m) * sum_ij [A_ij - d_i d_j / 2m] * delta(c_i, c_j)`` which
    reduces to the standard per-community form
    ``sum_c [ m_c / m - (D_c / 2m)^2 ]`` where ``m_c`` is the number of
    intra-community edges and ``D_c`` the total degree of community ``c``.
    """
    m = graph.number_of_edges()
    if m == 0:
        return 0.0
    partition = partition_from_communities(communities)
    intra_edges: Dict[int, int] = {}
    total_degree: Dict[int, int] = {}
    for node in graph.nodes():
        community = partition.get(node)
        if community is None:
            continue
        total_degree[community] = total_degree.get(community, 0) + graph.degree(node)
    for u, v in graph.edges():
        cu, cv = partition.get(u), partition.get(v)
        if cu is not None and cu == cv:
            intra_edges[cu] = intra_edges.get(cu, 0) + 1
    score = 0.0
    for community in total_degree:
        mc = intra_edges.get(community, 0)
        dc = total_degree[community]
        score += mc / m - (dc / (2.0 * m)) ** 2
    return score


def label_propagation_communities(
    graph: Graph, seed: RandomLike = 0, max_iterations: int = 100
) -> List[Set[Node]]:
    """Detect communities by asynchronous label propagation.

    Every node starts in its own community and repeatedly adopts the most
    frequent label among its neighbors (ties broken uniformly at random with
    the provided seed) until labels stabilise or ``max_iterations`` passes.
    """
    rng = _rng(seed)
    labels: Dict[Node, int] = {node: i for i, node in enumerate(graph.nodes())}
    nodes = list(graph.nodes())
    for _ in range(max_iterations):
        rng.shuffle(nodes)
        changed = False
        for node in nodes:
            neighbors = graph.neighbors(node)
            if not neighbors:
                continue
            counts: Dict[int, int] = {}
            for neighbor in neighbors:
                counts[labels[neighbor]] = counts.get(labels[neighbor], 0) + 1
            best = max(counts.values())
            best_labels = [label for label, count in counts.items() if count == best]
            new_label = rng.choice(best_labels)
            if new_label != labels[node]:
                labels[node] = new_label
                changed = True
        if not changed:
            break
    communities: Dict[int, Set[Node]] = {}
    for node, label in labels.items():
        communities.setdefault(label, set()).add(node)
    return list(communities.values())


def greedy_modularity_communities(
    graph: Graph, max_communities: Optional[int] = None
) -> List[Set[Node]]:
    """Detect communities by greedy modularity agglomeration (CNM-style).

    Starts from singleton communities and repeatedly merges the pair of
    connected communities giving the largest modularity increase, stopping
    when no merge improves modularity (or when ``max_communities`` is
    reached).  Quadratic in the number of communities; intended for graphs up
    to a few thousand nodes.
    """
    m = graph.number_of_edges()
    if m == 0:
        return [{node} for node in graph.nodes()]

    community_of: Dict[Node, int] = {node: i for i, node in enumerate(graph.nodes())}
    members: Dict[int, Set[Node]] = {i: {node} for node, i in community_of.items()}
    degree_sum: Dict[int, float] = {
        community_of[node]: float(graph.degree(node)) for node in graph.nodes()
    }
    # edge weights between communities (and self-edges count intra links)
    links: Dict[int, Dict[int, float]] = {i: {} for i in members}
    for u, v in graph.edges():
        cu, cv = community_of[u], community_of[v]
        links[cu][cv] = links[cu].get(cv, 0.0) + 1.0
        if cu != cv:
            links[cv][cu] = links[cv].get(cu, 0.0) + 1.0

    two_m = 2.0 * m

    def merge_gain(a: int, b: int) -> float:
        e_ab = links[a].get(b, 0.0)
        return 2.0 * (e_ab / two_m - (degree_sum[a] * degree_sum[b]) / (two_m * two_m))

    while True:
        if max_communities is not None and len(members) <= max_communities:
            break
        best_gain = 0.0
        best_pair = None
        for a in members:
            for b in links[a]:
                if b <= a or b not in members:
                    continue
                gain = merge_gain(a, b)
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (a, b)
        if best_pair is None:
            break
        a, b = best_pair
        # merge b into a
        members[a] |= members.pop(b)
        degree_sum[a] += degree_sum.pop(b)
        for node in members[a]:
            community_of[node] = a
        b_links = links.pop(b)
        for c, weight in b_links.items():
            if c == b:
                links[a][a] = links[a].get(a, 0.0) + weight
            elif c == a:
                links[a][a] = links[a].get(a, 0.0) + weight
            else:
                links[a][c] = links[a].get(c, 0.0) + weight
                links[c][a] = links[c].get(a, 0.0) + weight
                links[c].pop(b, None)
        links[a].pop(b, None)
    return list(members.values())


def best_partition_modularity(
    graph: Graph, seed: RandomLike = 0, large_graph_threshold: int = 5000
) -> float:
    """Return the modularity of an automatically detected partition.

    Uses greedy modularity agglomeration for graphs below
    ``large_graph_threshold`` nodes and label propagation above it, matching
    the accuracy/cost trade-off the experiments need.
    """
    if graph.number_of_nodes() <= large_graph_threshold:
        communities = greedy_modularity_communities(graph)
    else:
        communities = label_propagation_communities(graph, seed=seed)
    return modularity(graph, communities)
