"""Dense integer-indexed view of a :class:`~repro.graphs.graph.Graph`.

The coverage kernel (see :mod:`repro.motifs.enumeration`) and other hot loops
should not hash arbitrary node/edge objects on every query.  An
:class:`IndexedGraph` freezes a graph into

* node ids ``0 .. n-1`` (assigned in deterministic ``str`` order),
* edge ids ``0 .. m-1`` (assigned in :func:`~repro.graphs.graph.edge_sort_key`
  order, i.e. sorted by the string forms of the canonical endpoints), and
* a CSR adjacency structure (``indptr`` / ``neighbors`` / ``incident_edges``)
  over those ids,

so downstream code can carry plain ``int`` handles through its inner loops and
only translate back to node/edge objects at API boundaries.  The edge-id order
is load-bearing: because it matches ``edge_sort_key``, comparing edge ids
reproduces the deterministic tie-breaking the greedy algorithms already use on
edge tuples.

The view is immutable; mutating the source graph afterwards does not affect an
already-built index.  Round-trips are provided here (:meth:`IndexedGraph.to_graph`)
and in :mod:`repro.graphs.convert` (:func:`~repro.graphs.convert.to_indexed` /
:func:`~repro.graphs.convert.from_indexed`).

Construction is vectorised: because node ids are assigned in ``str`` order
and ``edge_sort_key`` compares the ``str`` forms of the canonical endpoints,
sorting edges by their (head id, tail id) pairs with ``np.lexsort``
reproduces the ``edge_sort_key`` order exactly, and the whole CSR adjacency
falls out of one more lexsort over the doubled endpoint arrays — no
per-node neighbor sort, no per-position dict lookup.  The seed's pure-Python
loop is retained behind ``assembly="python"`` as the executable reference
(``tests/graphs/test_indexed.py`` pins the two byte-identical; the
``bench_index_build`` benchmark measures the gap).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AssemblyModeError, EdgeNotFoundError, NodeNotFoundError
from repro.graphs.graph import Edge, Graph, Node, canonical_edge, edge_sort_key

__all__ = ["IndexedGraph"]

#: numpy dtype matching ``array("l")`` (the flat-array storage everywhere).
NP_LONG = np.dtype("l")

#: Recognised ``assembly`` arguments (numpy = vectorised, python = seed loop).
ASSEMBLY_MODES = ("numpy", "python")


def _as_long_array(values: np.ndarray) -> array:
    """Copy a C-long ndarray into an ``array("l")`` (one buffer memcpy)."""
    out = array("l")
    out.frombytes(np.ascontiguousarray(values, dtype=NP_LONG).tobytes())
    return out


class IndexedGraph:
    """Immutable dense-id snapshot of an undirected simple graph.

    Parameters
    ----------
    graph:
        The graph to snapshot.  Node and edge identities are frozen at
        construction time.
    assembly:
        ``"numpy"`` (default) builds the edge order and CSR adjacency with
        vectorised sorts; ``"python"`` runs the seed's element-wise loops.
        Both produce byte-identical arrays — the flag exists for the
        old-vs-new build benchmark and the differential tests.
    """

    __slots__ = (
        "_nodes",
        "_node_id",
        "_edges",
        "_edge_id",
        "_indptr",
        "_neighbors",
        "_incident_edges",
        # snapshot restores defer the edge-tuple table: endpoint-id pairs
        # (an (2m,) ndarray) until the first edge-object lookup needs them
        "_lazy_edge_ids",
        # flat (2m,) endpoint-id pairs in edge-id order, kept by every
        # assembly path so _endpoint_id_pairs never loops over edge tuples
        "_pair_ids",
    )

    def __init__(self, graph: Graph, assembly: str = "numpy") -> None:
        if assembly not in ASSEMBLY_MODES:
            raise AssemblyModeError(
                f"assembly must be one of {ASSEMBLY_MODES}, got {assembly!r}"
            )
        # -- node ids: deterministic str order --------------------------------
        self._nodes: Tuple[Node, ...] = tuple(sorted(graph.nodes(), key=str))
        self._node_id: Dict[Node, int] = {
            node: index for index, node in enumerate(self._nodes)
        }
        self._lazy_edge_ids: Optional[np.ndarray] = None
        self._pair_ids: Optional[array] = None
        if assembly == "python":
            self._assemble_python(graph)
        else:
            self._assemble_numpy(graph)

    @classmethod
    def _restore(
        cls,
        nodes: Sequence[Node],
        edge_endpoint_ids: np.ndarray,
        indptr: array,
        neighbors: array,
        incident_edges: array,
    ) -> "IndexedGraph":
        """Rebuild an :class:`IndexedGraph` from previously frozen storage.

        This is the deserialisation hook of :mod:`repro.persistence`: the
        caller supplies the node tuple (in id order), the canonical edges as
        a flat ``(2m,)`` endpoint-id array (pairs in edge-id order, each
        pair in canonical tuple order) and the three CSR arrays exactly as
        a built snapshot stored them, and gets back an index whose arrays
        are byte-identical to the one that was saved — no sorting, no CSR
        assembly.  The edge-*object* tables (tuple list + reverse dict) are
        materialised lazily on the first lookup that needs them, keeping
        the snapshot cold-start path free of per-edge Python work.  Inputs
        are trusted to be mutually consistent; the persistence layer
        validates shapes before calling.
        """
        self = cls.__new__(cls)
        self._nodes = tuple(nodes)
        self._node_id = {node: index for index, node in enumerate(self._nodes)}
        self._edges = None
        self._edge_id = None
        # array("l") so element reads in the lazy edge_at yield plain ints
        self._lazy_edge_ids = _as_long_array(
            np.ascontiguousarray(edge_endpoint_ids, dtype=NP_LONG)
        )
        self._pair_ids = self._lazy_edge_ids
        self._indptr = indptr
        self._neighbors = neighbors
        self._incident_edges = incident_edges
        return self

    def _endpoint_id_pairs(self) -> np.ndarray:
        """Return the ``(m, 2)`` endpoint-id pairs, one row per edge id.

        Rows are in edge-id order with each pair in canonical tuple order —
        exactly the layout a snapshot stores.  Every assembly path keeps the
        flat pair array (``_pair_ids``), so this is a zero-copy reshape; the
        slow tuple-table walk remains only for the seed's python assembly,
        which caches its result on first use.
        """
        if self._pair_ids is not None:
            return np.frombuffer(self._pair_ids, dtype=NP_LONG).reshape(-1, 2)
        node_id = self._node_id
        flat = array("l")
        append = flat.append
        for u, v in self._edges:
            append(node_id[u])
            append(node_id[v])
        self._pair_ids = flat
        return np.frombuffer(flat, dtype=NP_LONG).reshape(-1, 2)

    def _apply_edge_delta(
        self,
        deleted_edge_ids: Sequence[int],
        inserted_edges: Sequence[Edge],
    ) -> Tuple["IndexedGraph", np.ndarray, Optional[np.ndarray]]:
        """Splice a batch of edge deletions/insertions into a new snapshot.

        The result is byte-identical to ``IndexedGraph(updated_graph)`` —
        same node order, same edge-id order, same CSR rows — but built by
        merging the existing sorted storage with the (tiny) delta instead
        of re-sorting the world: node ids stay monotone under insertion of
        new labels, so every surviving edge and CSR entry keeps its relative
        order and one ``searchsorted`` merge per array places the new
        entries.

        Parameters
        ----------
        deleted_edge_ids:
            Edge ids (of *this* snapshot) to remove.
        inserted_edges:
            New canonical edge tuples to add; endpoints may be brand-new
            nodes.  Callers guarantee the two sets are disjoint from each
            other and consistent with the current edge set.

        Returns
        -------
        (spliced, edge_id_map, node_id_map)
            The new snapshot; an ``(m,)`` array mapping old edge ids to new
            (``-1`` for deleted edges); and an ``(n,)`` old-to-new node-id
            map, or ``None`` when no new nodes appeared (ids unchanged).
        """
        n = len(self._nodes)
        m = self.number_of_edges()
        pairs = self._endpoint_id_pairs()

        # --- node table: merge brand-new endpoint labels in str order ----
        fresh_labels = sorted(
            {x for edge in inserted_edges for x in edge if x not in self._node_id},
            key=str,
        )
        if fresh_labels:
            new_nodes = tuple(sorted(self._nodes + tuple(fresh_labels), key=str))
            new_node_id = {node: i for i, node in enumerate(new_nodes)}
            node_id_map: Optional[np.ndarray] = np.fromiter(
                (new_node_id[node] for node in self._nodes),
                dtype=NP_LONG,
                count=n,
            )
        else:
            new_nodes = self._nodes
            new_node_id = self._node_id  # immutable after construction: share
            node_id_map = None
        nn = len(new_nodes)
        width = max(nn, 1)

        # --- edge table: drop deleted rows, merge inserted pairs ---------
        keep_edge = np.ones(m, dtype=bool)
        if len(deleted_edge_ids):
            keep_edge[np.asarray(deleted_edge_ids, dtype=NP_LONG)] = False
        surviving = pairs[keep_edge]
        if node_id_map is not None:
            surviving = node_id_map[surviving]
        inserted = np.empty((len(inserted_edges), 2), dtype=NP_LONG)
        for position, (u, v) in enumerate(inserted_edges):
            inserted[position, 0] = new_node_id[u]
            inserted[position, 1] = new_node_id[v]
        # composite (head, tail) keys: pairs are unique, so plain argsort /
        # searchsorted merges are deterministic with no tie-breaking needed
        inserted = inserted[np.argsort(inserted[:, 0] * width + inserted[:, 1])]
        surviving_keys = surviving[:, 0] * width + surviving[:, 1]
        inserted_keys = inserted[:, 0] * width + inserted[:, 1]
        new_pos_surviving = (
            np.arange(len(surviving_keys), dtype=NP_LONG)
            + np.searchsorted(inserted_keys, surviving_keys)
        )
        new_pos_inserted = (
            np.arange(len(inserted_keys), dtype=NP_LONG)
            + np.searchsorted(surviving_keys, inserted_keys)
        )
        edge_id_map = np.full(m, -1, dtype=NP_LONG)
        edge_id_map[keep_edge] = new_pos_surviving
        new_pairs = np.empty((len(surviving) + len(inserted), 2), dtype=NP_LONG)
        new_pairs[new_pos_surviving] = surviving
        new_pairs[new_pos_inserted] = inserted

        # --- CSR rows: one more sorted merge over the directed entries ---
        old_indptr = np.frombuffer(self._indptr, dtype=NP_LONG)
        old_neighbors = np.frombuffer(self._neighbors, dtype=NP_LONG)
        old_incident = np.frombuffer(self._incident_edges, dtype=NP_LONG)
        src = np.repeat(np.arange(n, dtype=NP_LONG), np.diff(old_indptr))
        keep_entry = keep_edge[old_incident]
        kept_src = src[keep_entry]
        kept_dst = old_neighbors[keep_entry]
        kept_eid = edge_id_map[old_incident[keep_entry]]
        if node_id_map is not None:
            kept_src = node_id_map[kept_src]
            kept_dst = node_id_map[kept_dst]
        new_src = np.concatenate((inserted[:, 0], inserted[:, 1]))
        new_dst = np.concatenate((inserted[:, 1], inserted[:, 0]))
        new_eid = np.concatenate((new_pos_inserted, new_pos_inserted))
        entry_order = np.lexsort((new_dst, new_src))
        new_src = new_src[entry_order]
        new_dst = new_dst[entry_order]
        new_eid = new_eid[entry_order]
        kept_keys = kept_src * width + kept_dst
        new_keys = new_src * width + new_dst
        pos_kept = np.arange(len(kept_keys), dtype=NP_LONG) + np.searchsorted(
            new_keys, kept_keys
        )
        pos_new = np.arange(len(new_keys), dtype=NP_LONG) + np.searchsorted(
            kept_keys, new_keys
        )
        total = len(kept_keys) + len(new_keys)
        neighbors = np.empty(total, dtype=NP_LONG)
        incident = np.empty(total, dtype=NP_LONG)
        rows = np.empty(total, dtype=NP_LONG)
        neighbors[pos_kept] = kept_dst
        neighbors[pos_new] = new_dst
        incident[pos_kept] = kept_eid
        incident[pos_new] = new_eid
        rows[pos_kept] = kept_src
        rows[pos_new] = new_src
        indptr = np.zeros(nn + 1, dtype=NP_LONG)
        np.cumsum(np.bincount(rows, minlength=nn), out=indptr[1:])

        spliced = IndexedGraph.__new__(IndexedGraph)
        spliced._nodes = new_nodes
        spliced._node_id = new_node_id
        spliced._edges = None
        spliced._edge_id = None
        spliced._lazy_edge_ids = _as_long_array(new_pairs.reshape(-1))
        spliced._pair_ids = spliced._lazy_edge_ids
        spliced._indptr = _as_long_array(indptr)
        spliced._neighbors = _as_long_array(neighbors)
        spliced._incident_edges = _as_long_array(incident)
        return spliced, edge_id_map, node_id_map

    def _materialise_edges(self) -> None:
        """Build the deferred edge-object tables of a restored snapshot.

        Pairs were stored from already-canonical tuples in tuple order, so
        positional reconstruction reproduces the canonical edges verbatim.
        Only bulk access (the :attr:`edges` property) pays this; the scalar
        lookups answer straight from the pair array / CSR instead.
        """
        nodes = self._nodes
        flat = iter(self._lazy_edge_ids.tolist())
        self._edges = tuple((nodes[a], nodes[b]) for a, b in zip(flat, flat))
        self._edge_id = {edge: index for index, edge in enumerate(self._edges)}
        self._lazy_edge_ids = None

    def _assemble_numpy(self, graph: Graph) -> None:
        """Vectorised edge ordering + CSR assembly.

        Node ids are assigned in ``str`` order, so mapping nodes to ids is
        monotone in ``str`` — comparing ``(str(u), str(v))`` pairs
        (``edge_sort_key``) is equivalent to comparing ``(id(u), id(v))``
        pairs, and one ``np.lexsort`` over the endpoint-id columns yields the
        exact ``edge_sort_key`` edge order.  The CSR rows fall out of a
        second lexsort over the doubled (src, dst) arrays: rows grouped by
        src in id order, neighbors ascending by id (== ``str`` order).
        """
        node_id = self._node_id
        n = len(self._nodes)
        # visit each undirected edge once (from its smaller-id endpoint, so no
        # seen-set) and record the canonical tuple's endpoint ids alongside
        raw_edges = []
        pair_buffer = array("l")
        append_edge = raw_edges.append
        append_id = pair_buffer.append
        for u_id, u in enumerate(self._nodes):
            for v in graph.neighbors(u):
                v_id = node_id[v]
                if v_id > u_id:
                    edge = canonical_edge(u, v)
                    append_edge(edge)
                    if edge[0] is u:
                        append_id(u_id)
                        append_id(v_id)
                    else:
                        append_id(v_id)
                        append_id(u_id)
        m = len(raw_edges)
        endpoint_ids = np.frombuffer(pair_buffer, dtype=NP_LONG).reshape(m, 2)
        order = np.lexsort((endpoint_ids[:, 1], endpoint_ids[:, 0]))
        self._edges = tuple(raw_edges[position] for position in order.tolist())
        self._edge_id = {edge: index for index, edge in enumerate(self._edges)}
        heads = endpoint_ids[order, 0]
        tails = endpoint_ids[order, 1]
        self._pair_ids = _as_long_array(
            np.ascontiguousarray(endpoint_ids[order]).reshape(-1)
        )

        src = np.concatenate((heads, tails))
        dst = np.concatenate((tails, heads))
        eid = np.concatenate((np.arange(m, dtype=NP_LONG),) * 2)
        csr_order = np.lexsort((dst, src))
        indptr = np.zeros(n + 1, dtype=NP_LONG)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        # final storage stays array("l"): the motif enumerators walk these
        # rows with scalar reads, which are faster on array than on ndarray
        self._indptr = _as_long_array(indptr)
        self._neighbors = _as_long_array(dst[csr_order])
        self._incident_edges = _as_long_array(eid[csr_order])

    def _assemble_python(self, graph: Graph) -> None:
        """The seed's element-wise ordering + CSR loops (reference path)."""
        self._edges = tuple(sorted(graph.edges(), key=edge_sort_key))
        self._edge_id = {edge: index for index, edge in enumerate(self._edges)}

        n = len(self._nodes)
        indptr = array("l", [0] * (n + 1))
        for i, node in enumerate(self._nodes):
            indptr[i + 1] = indptr[i] + graph.degree(node)
        neighbors = array("l", [0] * indptr[n])
        incident = array("l", [0] * indptr[n])
        cursor = array("l", indptr[:n])
        for u_id, u in enumerate(self._nodes):
            # neighbors in node-id order keeps the CSR rows deterministic
            for v in sorted(graph.neighbors(u), key=str):
                v_id = self._node_id[v]
                position = cursor[u_id]
                neighbors[position] = v_id
                incident[position] = self._edge_id[canonical_edge(u, v)]
                cursor[u_id] = position + 1
        self._indptr = indptr
        self._neighbors = neighbors
        self._incident_edges = incident

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._nodes)

    def number_of_edges(self) -> int:
        """Return ``|E|``."""
        if self._edges is None:
            return len(self._lazy_edge_ids) // 2
        return len(self._edges)

    # ------------------------------------------------------------------
    # node id mapping
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes, in id order."""
        return self._nodes

    def node_id(self, node: Node) -> int:
        """Return the dense id of ``node``.

        Raises
        ------
        NodeNotFoundError
            If the node was not part of the snapshotted graph.
        """
        try:
            return self._node_id[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def node_at(self, node_id: int) -> Node:
        """Return the node with dense id ``node_id``."""
        return self._nodes[node_id]

    def has_node(self, node: Node) -> bool:
        """Return whether the snapshot contains ``node``."""
        return node in self._node_id

    # ------------------------------------------------------------------
    # edge id mapping
    # ------------------------------------------------------------------
    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All canonical edges, in id (``edge_sort_key``) order."""
        if self._edges is None:
            self._materialise_edges()
        return self._edges

    def edge_id(self, u: Node, v: Node) -> int:
        """Return the dense id of the undirected edge ``(u, v)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge was not part of the snapshotted graph.
        """
        if self._edge_id is None:
            found = self.find_edge_id(u, v)
            if found is None:
                raise EdgeNotFoundError((u, v))
            return found
        try:
            return self._edge_id[canonical_edge(u, v)]
        except KeyError:
            raise EdgeNotFoundError((u, v)) from None

    def find_edge_id(self, u: Node, v: Node) -> Optional[int]:
        """Return the dense id of ``(u, v)``, or ``None`` if absent."""
        if self._edge_id is None:
            # deferred tables: answer from the CSR (O(log deg) bisect)
            # without paying the full per-edge dict build
            u_id = self._node_id.get(u)
            v_id = self._node_id.get(v)
            if u_id is None or v_id is None:
                return None
            return self.edge_id_between(u_id, v_id)
        return self._edge_id.get(canonical_edge(u, v))

    def edge_at(self, edge_id: int) -> Edge:
        """Return the canonical edge with dense id ``edge_id``."""
        if self._edges is None:
            # deferred tables: positional pair lookup reproduces the
            # canonical tuple verbatim (pairs stored in tuple order)
            base = 2 * edge_id
            ids = self._lazy_edge_ids
            return (self._nodes[ids[base]], self._nodes[ids[base + 1]])
        return self._edges[edge_id]

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the snapshot contains the undirected edge ``(u, v)``."""
        return self.find_edge_id(u, v) is not None

    # ------------------------------------------------------------------
    # CSR adjacency
    # ------------------------------------------------------------------
    def degree_of(self, node_id: int) -> int:
        """Return the degree of the node with dense id ``node_id``."""
        return self._indptr[node_id + 1] - self._indptr[node_id]

    def neighbor_ids(self, node_id: int) -> Sequence[int]:
        """Return the neighbor ids of ``node_id`` (a zero-copy CSR row)."""
        return self._neighbors[self._indptr[node_id] : self._indptr[node_id + 1]]

    def incident_edge_ids(self, node_id: int) -> Sequence[int]:
        """Return the incident edge ids of ``node_id``, aligned with
        :meth:`neighbor_ids` (position ``i`` is the edge to neighbor ``i``)."""
        return self._incident_edges[
            self._indptr[node_id] : self._indptr[node_id + 1]
        ]

    def csr(self) -> Tuple[Sequence[int], Sequence[int], Sequence[int]]:
        """Return the raw CSR arrays ``(indptr, neighbors, incident_edges)``.

        Zero-copy access for hot loops (motif enumeration, the coverage
        kernel): row ``u`` spans ``indptr[u]:indptr[u+1]`` of the two flat
        arrays, neighbors sorted ascending by node id (node ids are assigned
        in ``str`` order, so ascending ids is the deterministic row order).
        The arrays are the index's own storage — callers must not mutate.
        """
        return self._indptr, self._neighbors, self._incident_edges

    def common_neighbor_edges(
        self, u_id: int, v_id: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(w_id, edge id of (u, w), edge id of (w, v))`` for every
        common neighbor ``w`` of two node ids, ascending by ``w_id``.

        Two-pointer merge of the sorted CSR rows: O(deg(u) + deg(v)).  This
        is the shared primitive of the triangle-closing motif enumerators.
        """
        indptr, neighbors, incident = self._indptr, self._neighbors, self._incident_edges
        i, i_end = indptr[u_id], indptr[u_id + 1]
        j, j_end = indptr[v_id], indptr[v_id + 1]
        while i < i_end and j < j_end:
            a, b = neighbors[i], neighbors[j]
            if a == b:
                yield a, incident[i], incident[j]
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1

    def edge_id_between(self, u_id: int, v_id: int) -> Optional[int]:
        """Return the edge id joining two node ids, or ``None`` if absent.

        Binary search over the (sorted) shorter CSR row: O(log deg).
        """
        if self.degree_of(u_id) > self.degree_of(v_id):
            u_id, v_id = v_id, u_id
        lo = bisect_left(
            self._neighbors, v_id, self._indptr[u_id], self._indptr[u_id + 1]
        )
        if lo < self._indptr[u_id + 1] and self._neighbors[lo] == v_id:
            return self._incident_edges[lo]
        return None

    # ------------------------------------------------------------------
    # round-trip
    # ------------------------------------------------------------------
    def to_graph(self) -> Graph:
        """Materialise the snapshot back into a mutable :class:`Graph`.

        Builds the adjacency sets straight from the CSR rows (one set per
        node) instead of replaying per-edge insertions — the rows already
        encode a symmetric simple graph, and this path is on the snapshot
        cold-start critical path.
        """
        graph = Graph()
        adj = graph._adj  # same-package fast fill; invariants hold by CSR shape
        indptr, neighbors, nodes = self._indptr, self._neighbors, self._nodes
        start = indptr[0]
        for u_id, u in enumerate(nodes):
            end = indptr[u_id + 1]
            adj[u] = {nodes[v_id] for v_id in neighbors[start:end]}
            start = end
        return graph

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.number_of_nodes()}, "
            f"m={self.number_of_edges()})"
        )
