"""Classic graph algorithms used throughout the library.

These are the building blocks the utility metrics (:mod:`repro.utility`),
motif counting (:mod:`repro.motifs`) and experiment harness rely on:
breadth-first search, shortest path lengths, connected components, k-core
decomposition, triangle counting and local clustering coefficients.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, Node

__all__ = [
    "bfs_distances",
    "shortest_path_length",
    "average_shortest_path_length",
    "connected_components",
    "largest_connected_component",
    "is_connected",
    "core_numbers",
    "triangles_per_node",
    "triangle_count",
    "local_clustering",
    "average_clustering",
    "paths_of_length_two",
    "paths_of_length_three",
]


def bfs_distances(graph: Graph, source: Node) -> Dict[Node, int]:
    """Return BFS hop distances from ``source`` to every reachable node."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        next_distance = distances[node] + 1
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = next_distance
                queue.append(neighbor)
    return distances


def shortest_path_length(graph: Graph, source: Node, target: Node) -> Optional[int]:
    """Return the hop distance from ``source`` to ``target`` or ``None``.

    ``None`` means the two nodes are in different connected components.
    """
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return 0
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        next_distance = distances[node] + 1
        for neighbor in graph.neighbors(node):
            if neighbor == target:
                return next_distance
            if neighbor not in distances:
                distances[neighbor] = next_distance
                queue.append(neighbor)
    return None


def average_shortest_path_length(
    graph: Graph, sample_sources: Optional[Iterable[Node]] = None
) -> float:
    """Return the mean shortest path length over reachable node pairs.

    Pairs in different components are ignored (the paper computes the metric
    on the, essentially connected, giant component of its social graphs).
    ``sample_sources`` restricts the BFS sources, which gives an unbiased
    estimate for large graphs where the exact all-pairs value is too costly.
    """
    sources = list(sample_sources) if sample_sources is not None else list(graph.nodes())
    total = 0
    count = 0
    for source in sources:
        distances = bfs_distances(graph, source)
        for node, distance in distances.items():
            if node != source:
                total += distance
                count += 1
    if count == 0:
        return 0.0
    return total / count


def connected_components(graph: Graph) -> List[Set[Node]]:
    """Return the connected components as a list of node sets."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        component = set(bfs_distances(graph, node))
        seen |= component
        components.append(component)
    return components


def largest_connected_component(graph: Graph) -> Set[Node]:
    """Return the node set of the largest connected component."""
    components = connected_components(graph)
    if not components:
        return set()
    return max(components, key=len)


def is_connected(graph: Graph) -> bool:
    """Return whether the graph is connected (empty graphs count as connected)."""
    n = graph.number_of_nodes()
    if n == 0:
        return True
    first = next(iter(graph.nodes()))
    return len(bfs_distances(graph, first)) == n


def core_numbers(graph: Graph) -> Dict[Node, int]:
    """Return the k-core (k-shell) number of every node.

    Uses the standard peeling algorithm: repeatedly remove the node of
    minimum remaining degree; the core number of a node is the largest k such
    that the node belongs to a subgraph where every node has degree >= k.
    """
    degrees = graph.degrees()
    nodes_by_degree: Dict[int, Set[Node]] = {}
    for node, degree in degrees.items():
        nodes_by_degree.setdefault(degree, set()).add(node)

    core: Dict[Node, int] = {}
    remaining = dict(degrees)
    current_k = 0
    processed: Set[Node] = set()
    total = len(degrees)

    while len(processed) < total:
        degree = min(d for d, bucket in nodes_by_degree.items() if bucket)
        current_k = max(current_k, degree)
        node = nodes_by_degree[degree].pop()
        core[node] = current_k
        processed.add(node)
        for neighbor in graph.neighbors(node):
            if neighbor in processed:
                continue
            old = remaining[neighbor]
            nodes_by_degree[old].discard(neighbor)
            new = old - 1
            remaining[neighbor] = new
            nodes_by_degree.setdefault(new, set()).add(neighbor)
    return core


def triangles_per_node(graph: Graph) -> Dict[Node, int]:
    """Return, for every node, the number of triangles it participates in.

    A triangle ``{u, v, w}`` is attributed to node ``w`` exactly once: when the
    edge ``(u, v)`` opposite to ``w`` is scanned and ``w`` shows up as a common
    neighbor of its endpoints.
    """
    counts: Dict[Node, int] = {node: 0 for node in graph.nodes()}
    for u, v in graph.edges():
        for w in graph.common_neighbors(u, v):
            counts[w] += 1
    return counts


def triangle_count(graph: Graph) -> int:
    """Return the total number of triangles in the graph."""
    return sum(triangles_per_node(graph).values()) // 3


def local_clustering(graph: Graph, node: Node) -> float:
    """Return the local clustering coefficient of ``node``.

    Defined as the number of links among the node's neighbors divided by the
    maximum possible ``d (d - 1) / 2``; 0.0 for degree < 2.
    """
    neighbors = list(graph.neighbors(node))
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = 0
    neighbor_set = graph.neighbors(node)
    for i, u in enumerate(neighbors):
        adjacency = graph.neighbors(u)
        for v in neighbors[i + 1:]:
            if v in adjacency and v in neighbor_set:
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def average_clustering(graph: Graph) -> float:
    """Return the average local clustering coefficient over all nodes."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return sum(local_clustering(graph, node) for node in graph.nodes()) / n


def paths_of_length_two(graph: Graph, u: Node, v: Node) -> Iterator[Tuple[Node]]:
    """Yield the intermediate node of every path ``u - w - v`` (u, v excluded)."""
    for w in graph.common_neighbors(u, v):
        if w != u and w != v:
            yield (w,)


def paths_of_length_three(graph: Graph, u: Node, v: Node) -> Iterator[Tuple[Node, Node]]:
    """Yield intermediate node pairs ``(a, b)`` of every path ``u - a - b - v``.

    The path must be simple: ``a`` and ``b`` are distinct and differ from both
    endpoints, and the direct edge ``(u, v)`` is not required to exist.
    """
    neighbors_v = graph.neighbors(v)
    for a in graph.neighbors(u):
        if a == v:
            continue
        for b in graph.neighbors(a):
            if b == u or b == v or b == a:
                continue
            if b in neighbors_v:
                yield (a, b)
