"""Structural anonymization baselines and the TPP-vs-structural comparison."""

from repro.anonymization.comparison import MechanismOutcome, compare_protection_mechanisms
from repro.anonymization.generation import (
    configuration_model_release,
    degree_preserving_rewire_release,
)
from repro.anonymization.perturbation import (
    AnonymizationResult,
    random_perturbation,
    random_switching,
    randomized_response,
)

__all__ = [
    "AnonymizationResult",
    "random_perturbation",
    "random_switching",
    "randomized_response",
    "configuration_model_release",
    "degree_preserving_rewire_release",
    "MechanismOutcome",
    "compare_protection_mechanisms",
]
