"""Head-to-head comparison of TPP against structural anonymization.

The paper's central argument is qualitative: structural-level mechanisms must
perturb a large fraction of the graph to protect a handful of sensitive
links, while target-level protection achieves the same (or better) target
defence with a tiny, surgical set of deletions and therefore far lower
utility loss.  :func:`compare_protection_mechanisms` turns that argument into
a measurable table:

for each mechanism it records how many edge edits were made, how much target
similarity survives, and how much graph utility was lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.anonymization.perturbation import (
    AnonymizationResult,
    random_perturbation,
    random_switching,
    randomized_response,
)
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.graphs.graph import Edge, Graph
from repro.motifs.similarity import total_similarity
from repro.utility.loss import compare_graphs

__all__ = ["MechanismOutcome", "compare_protection_mechanisms"]


@dataclass(frozen=True)
class MechanismOutcome:
    """One row of the TPP vs structural-anonymization comparison."""

    mechanism: str
    edits: int
    residual_similarity: int
    utility_loss_percent: float

    def as_row(self) -> Tuple[str, int, int, float]:
        """Return the row as a plain tuple for table rendering."""
        return (
            self.mechanism,
            self.edits,
            self.residual_similarity,
            self.utility_loss_percent,
        )


def compare_protection_mechanisms(
    graph: Graph,
    targets: Sequence[Edge],
    motif: str = "triangle",
    tpp_budget: Optional[int] = None,
    structural_edits: Optional[int] = None,
    metrics: Sequence[str] = ("clust", "cn"),
    seed: int = 0,
) -> List[MechanismOutcome]:
    """Compare SGB-Greedy TPP against the structural baselines.

    Parameters
    ----------
    graph:
        The original social graph.
    targets:
        The sensitive links to protect.
    motif:
        The adversary's subgraph pattern.
    tpp_budget:
        Budget for the TPP run; defaults to "enough for full protection".
    structural_edits:
        Edge-edit budget for each structural mechanism; defaults to the
        number of edits the TPP run used (so the comparison is edit-for-edit
        fair) — the paper's point is that at equal edit counts the structural
        mechanisms barely move the target similarity.
    metrics:
        Utility metrics for the loss column.
    seed:
        Random seed for the structural mechanisms.

    Returns
    -------
    list of MechanismOutcome
        One entry for phase-1 only, TPP (SGB-Greedy), random perturbation,
        random switching and randomized response.
    """
    problem = TPPProblem(graph, targets, motif=motif)
    budget = tpp_budget if tpp_budget is not None else problem.initial_similarity() + 1
    tpp_result = sgb_greedy(problem, budget)
    tpp_released = tpp_result.released_graph(problem)

    edits = (
        structural_edits
        if structural_edits is not None
        else max(1, tpp_result.budget_used)
    )

    def residual(released: Graph) -> int:
        return total_similarity(released, problem.targets, problem.motif)

    def loss(released: Graph) -> float:
        return compare_graphs(graph, released, metrics=metrics).average_loss_percent

    outcomes: List[MechanismOutcome] = []

    phase1 = problem.phase1_graph
    outcomes.append(
        MechanismOutcome(
            mechanism="targets-deleted-only",
            edits=len(problem.targets),
            residual_similarity=residual(phase1),
            utility_loss_percent=loss(phase1),
        )
    )
    outcomes.append(
        MechanismOutcome(
            mechanism=f"TPP ({tpp_result.algorithm})",
            edits=len(problem.targets) + tpp_result.budget_used,
            residual_similarity=residual(tpp_released),
            utility_loss_percent=loss(tpp_released),
        )
    )

    structural: Dict[str, AnonymizationResult] = {
        "random-perturbation": random_perturbation(
            phase1, deletions=edits, additions=edits, seed=seed
        ),
        "random-switching": random_switching(phase1, switches=edits, seed=seed),
        "randomized-response": randomized_response(
            phase1, flip_probability=min(1.0, edits / max(phase1.number_of_edges(), 1)),
            seed=seed,
        ),
    }
    for name, result in structural.items():
        outcomes.append(
            MechanismOutcome(
                mechanism=name,
                edits=len(problem.targets) + result.edits,
                residual_similarity=residual(result.graph),
                utility_loss_percent=loss(result.graph),
            )
        )
    return outcomes
