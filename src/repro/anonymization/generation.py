"""Pseudo-graph generation baselines (related-work family 2).

Besides perturbation, the related work protects structure by *releasing a
different graph altogether*: a synthetic graph sampled to match a few
statistics of the original (degree sequence, degree correlations).  Two
classic members of that family are implemented so the comparison experiments
can include them:

* :func:`configuration_model_release` — preserves the exact degree sequence
  (dK-1 style) by random stub matching,
* :func:`degree_preserving_rewire_release` — starts from the original and
  applies many degree-preserving switches, converging to a random graph with
  the same joint degree structure as the number of switches grows.

Target links never appear verbatim in these releases (the edge identities are
re-randomised), but the adversary of the TPP threat model does not need
them: it only needs the released structure to predict, which is exactly why
the paper argues structural release alone is not sufficient for key targets.
"""

from __future__ import annotations

import random
from typing import List, Union

from repro.anonymization.perturbation import AnonymizationResult, random_switching
from repro.exceptions import PerturbationError
from repro.graphs.graph import Edge, Graph, canonical_edge

__all__ = ["configuration_model_release", "degree_preserving_rewire_release"]

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def configuration_model_release(
    graph: Graph, seed: RandomLike = None, max_retries: int = 50
) -> AnonymizationResult:
    """Return a random simple graph with (approximately) the same degree sequence.

    Standard stub-matching configuration model with rejection of self-loops
    and multi-edges; stubs that cannot be placed after ``max_retries``
    shuffles are dropped, so very skewed degree sequences may lose a few
    edges (reported via the ``deleted``/``added`` bookkeeping).
    """
    rng = _rng(seed)
    degrees = graph.degrees()
    stubs: List = []
    for node, degree in sorted(degrees.items(), key=lambda item: str(item[0])):
        stubs.extend([node] * degree)

    released = Graph(nodes=graph.nodes())
    for _ in range(max_retries):
        rng.shuffle(stubs)
        leftovers: List = []
        for i in range(0, len(stubs) - 1, 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or released.has_edge(u, v):
                leftovers.extend((u, v))
            else:
                released.add_edge(u, v)
        if len(stubs) % 2:
            leftovers.append(stubs[-1])
        stubs = leftovers
        if len(stubs) < 2:
            break

    original_edges = graph.edge_set()
    released_edges = released.edge_set()
    return AnonymizationResult(
        graph=released,
        deleted=tuple(sorted(original_edges - released_edges, key=str)),
        added=tuple(sorted(released_edges - original_edges, key=str)),
        mechanism="configuration-model",
    )


def degree_preserving_rewire_release(
    graph: Graph, switches_per_edge: float = 2.0, seed: RandomLike = None
) -> AnonymizationResult:
    """Return a release obtained by many degree-preserving edge switches.

    ``switches_per_edge`` controls how far the release drifts from the
    original: the related work typically uses 1-10 switches per edge, at
    which point local structure (triangles around any particular pair) is
    largely randomised while every node keeps its degree.
    """
    if switches_per_edge < 0:
        raise PerturbationError(
            f"switches_per_edge must be >= 0, got {switches_per_edge}"
        )
    switches = int(switches_per_edge * graph.number_of_edges())
    result = random_switching(graph, switches=switches, seed=seed)
    return AnonymizationResult(
        graph=result.graph,
        deleted=result.deleted,
        added=result.added,
        mechanism="degree-preserving-rewire",
    )
