"""Structural-level anonymization baselines from the related work.

The paper's introduction contrasts TPP (target-level protection) with the
traditional structural-level mechanisms — random perturbation, link
switching and randomized-response style edge flipping — that treat every
link as sensitive.  These are implemented here so the repository can run the
comparison the paper argues qualitatively: structural mechanisms must
perturb far more of the graph (and lose far more utility) to push target
similarity down to the level the targeted greedy algorithms reach with a
handful of deletions.

Every mechanism takes and returns plain graphs, so the resulting releases can
be fed to the same attack simulator and utility-loss analysis as the TPP
releases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.exceptions import PerturbationError
from repro.graphs.graph import Edge, Graph, canonical_edge

__all__ = [
    "AnonymizationResult",
    "random_perturbation",
    "random_switching",
    "randomized_response",
]

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


@dataclass(frozen=True)
class AnonymizationResult:
    """A structurally anonymized release.

    Attributes
    ----------
    graph:
        The perturbed graph.
    deleted / added:
        The edge modifications applied (canonical form, in application order).
    mechanism:
        Human-readable mechanism label.
    """

    graph: Graph
    deleted: Tuple[Edge, ...]
    added: Tuple[Edge, ...]
    mechanism: str

    @property
    def edits(self) -> int:
        """Total number of edge modifications."""
        return len(self.deleted) + len(self.added)


def _sample_non_edges(graph: Graph, count: int, rng: random.Random) -> List[Edge]:
    nodes = sorted(graph.nodes(), key=str)
    chosen: List[Edge] = []
    seen = set()
    attempts = 0
    limit = 200 * max(count, 1)
    while len(chosen) < count and attempts < limit and len(nodes) >= 2:
        attempts += 1
        u, v = rng.sample(nodes, 2)
        edge = canonical_edge(u, v)
        if edge in seen or graph.has_edge(u, v):
            continue
        seen.add(edge)
        chosen.append(edge)
    return chosen


def random_perturbation(
    graph: Graph,
    deletions: int,
    additions: int,
    seed: RandomLike = None,
) -> AnonymizationResult:
    """Delete and add the requested numbers of random links (Ying & Wu style).

    Deletions are sampled uniformly from the existing edges, additions from
    the non-edges of the already-reduced graph.
    """
    rng = _rng(seed)
    edges = sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1])))
    rng.shuffle(edges)
    to_delete = edges[: min(deletions, len(edges))]
    perturbed = graph.without_edges(to_delete)
    to_add = _sample_non_edges(perturbed, additions, rng)
    for edge in to_add:
        perturbed.add_edge(*edge)
    return AnonymizationResult(
        graph=perturbed,
        deleted=tuple(to_delete),
        added=tuple(to_add),
        mechanism="random-perturbation",
    )


def random_switching(graph: Graph, switches: int, seed: RandomLike = None) -> AnonymizationResult:
    """Degree-preserving random edge switching.

    Each switch picks two disjoint edges ``(a, b)`` and ``(c, d)`` and rewires
    them to ``(a, d)`` and ``(c, b)`` when neither new edge exists; this keeps
    every node's degree unchanged, which is the classic utility-preserving
    perturbation of the related work.
    """
    rng = _rng(seed)
    perturbed = graph.copy()
    deleted: List[Edge] = []
    added: List[Edge] = []
    performed = 0
    attempts = 0
    limit = 100 * max(switches, 1)
    while performed < switches and attempts < limit:
        attempts += 1
        edges = sorted(perturbed.edges(), key=lambda e: (str(e[0]), str(e[1])))
        if len(edges) < 2:
            break
        (a, b), (c, d) = rng.sample(edges, 2)
        if len({a, b, c, d}) < 4:
            continue
        if perturbed.has_edge(a, d) or perturbed.has_edge(c, b):
            continue
        perturbed.remove_edge(a, b)
        perturbed.remove_edge(c, d)
        perturbed.add_edge(a, d)
        perturbed.add_edge(c, b)
        deleted.extend((canonical_edge(a, b), canonical_edge(c, d)))
        added.extend((canonical_edge(a, d), canonical_edge(c, b)))
        performed += 1
    return AnonymizationResult(
        graph=perturbed,
        deleted=tuple(deleted),
        added=tuple(added),
        mechanism="random-switching",
    )


def randomized_response(
    graph: Graph,
    flip_probability: float,
    seed: RandomLike = None,
    max_added: int = None,
) -> AnonymizationResult:
    """Randomized-response edge flipping (a local-differential-privacy style baseline).

    Every existing edge is deleted with probability ``flip_probability``;
    roughly the same number of *original* non-edges are added (capped by
    ``max_added``), mimicking the symmetric flip without materialising the
    full O(n^2) non-edge set.
    """
    if not 0.0 <= flip_probability <= 1.0:
        raise PerturbationError(
            f"flip_probability must be in [0, 1], got {flip_probability}"
        )
    rng = _rng(seed)
    deleted = [
        edge
        for edge in sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1])))
        if rng.random() < flip_probability
    ]
    perturbed = graph.without_edges(deleted)
    additions = len(deleted) if max_added is None else min(len(deleted), max_added)
    added = _sample_non_edges(graph, additions, rng)  # non-edges of the ORIGINAL graph
    for edge in added:
        perturbed.add_edge(*edge)
    return AnonymizationResult(
        graph=perturbed,
        deleted=tuple(deleted),
        added=tuple(added),
        mechanism="randomized-response",
    )
