"""`ShardedProtectionService`: scatter-gather serving over K target shards.

Phase 1 of the paper's protection removes *every* sensitive link, and each
target's motif instances are then enumerated independently on that shared
phase-1 graph — so the target set partitions cleanly: shard the targets,
give each shard its own sub-index plus pristine coverage state, and the
whole session's similarity is the sum of the shards'.  That is the entire
semantic content of this module; everything else is routing.

* **Assignment** is ``edge_sort_key``-stable: targets are put in the
  library-wide canonical order first, then dealt round-robin
  (``sorted_targets[i::K]`` is shard ``i``), so the layout is invariant
  under permutation and insertion order of the input target list (pinned
  by the property suite).
* **Construction** filters targets *before* enumeration: every shard is
  built through :meth:`ProtectionService.for_filtered_targets`, so a
  shard never enumerates a non-shard target and its phase-1 graph equals
  the unsharded session's.  All shards share one dissimilarity constant
  ``C`` (by default the combined initial similarity), so per-shard
  dissimilarity traces sum to the whole session's.
* **Routing**: a request whose targets live on one shard is forwarded
  verbatim — its answer is bit-identical to the unsharded session's
  answer for the same subset, for every method, engine and budget
  division (same problem, same arrays; pinned by the differential suite).
* **Scatter-gather**: a cross-shard request is split deterministically —
  an explicit budget division is restricted per shard; otherwise the
  budget is apportioned over the requested targets proportionally to
  their initial similarities (largest-remainder, capped) — and the
  per-shard answers merge deterministically: protectors concatenate in
  shard order with keep-first dedup, and the exact similarity trace is
  recovered by having *every* shard replay the full merged sequence on a
  pristine state copy (:meth:`ProtectionService.evaluate_trace`) and
  summing element-wise.  Any shard failure aborts the whole request with
  a typed :class:`~repro.exceptions.ShardError` — no partial merge.

Typical usage::

    from repro.service import ProtectionRequest, ShardedProtectionService

    service = ShardedProtectionService(graph, targets, motif="triangle",
                                       shards=3)
    result = service.solve(ProtectionRequest("SGB-Greedy", budget=40))
    result.extra["service"]["shards"]  # routing metadata
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.budget import proportional_allocation
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.selection import Stopwatch
from repro.exceptions import (
    BudgetError,
    ConstantError,
    DeltaError,
    ExperimentError,
    ShardError,
    SnapshotMismatchError,
)
from repro.graphs.graph import Edge, Graph, canonical_edge, edge_sort_key
from repro.motifs.base import MotifPattern, coerce_motif
from repro.motifs.enumeration import TargetSubgraphIndex
from repro.service.requests import ProtectionRequest
from repro.service.service import ProtectionService

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.motifs.updates import DeltaOutcome, EdgeDelta

__all__ = [
    "ShardDeltaOutcome",
    "ShardedProtectionService",
    "shard_assignment",
    "shards_from_env",
]

#: Fan-out modes accepted by :meth:`ShardedProtectionService.solve_many`.
_MODES = ("thread", "process")

#: Environment variable read by :func:`shards_from_env`.
_SHARDS_ENV = "REPRO_SHARDS"


def shards_from_env(default: int = 1) -> int:
    """Return the shard count configured via ``REPRO_SHARDS``.

    An unset or empty variable returns ``default``; a non-integer or
    non-positive value raises :class:`~repro.exceptions.ShardError` (a
    typo in deployment config must not silently serve unsharded).  This
    is the default for the :class:`ShardedProtectionService` constructor
    and for ``repro-tpp serve --shards``, which is what lets CI run the
    whole service/server suite sharded by exporting one variable.
    """
    raw = os.environ.get(_SHARDS_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ShardError(
            f"{_SHARDS_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ShardError(f"{_SHARDS_ENV} must be >= 1, got {value}")
    return value


def shard_assignment(
    targets: Sequence[Edge], shards: int
) -> Tuple[Tuple[Edge, ...], ...]:
    """Partition ``targets`` into at most ``shards`` stable shards.

    Targets are canonicalised and put in :func:`edge_sort_key` order, then
    dealt round-robin: shard ``i`` is ``sorted_targets[i::K]`` with
    ``K = min(shards, len(targets))``.  Sorting first makes the layout a
    pure function of the target *set* — permutation- and insertion-order
    invariant — and the round-robin deal keeps shard sizes within one of
    each other.  Duplicate targets and ``shards < 1`` raise
    :class:`~repro.exceptions.ShardError`.
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}")
    ordered = sorted(
        (canonical_edge(*target) for target in targets), key=edge_sort_key
    )
    if len(set(ordered)) != len(ordered):
        raise ShardError(f"targets contain duplicate links: {ordered!r}")
    if not ordered:
        raise ShardError("the target set must not be empty")
    count = min(shards, len(ordered))
    return tuple(tuple(ordered[start::count]) for start in range(count))


def _build_shard_index(
    phase1_graph: Graph,
    shard_targets: Tuple[Edge, ...],
    motif: MotifPattern,
    build_workers: Optional[int],
) -> TargetSubgraphIndex:
    """Enumerate one shard's sub-index on the shared phase-1 graph.

    The single sanctioned direct :class:`TargetSubgraphIndex` construction
    site in the service layer (reprolint R8): building here — on the
    phase-1 graph the constructor computed *once*, with only the shard's
    targets — is what guarantees a shard never enumerates a non-shard
    target and all shards agree on the phase-1 edge set.
    """
    return TargetSubgraphIndex(
        phase1_graph, shard_targets, motif, build_workers=build_workers
    )


@dataclass(frozen=True)
class ShardDeltaOutcome:
    """What a sharded :meth:`~ShardedProtectionService.apply_delta` did.

    Attributes
    ----------
    outcomes:
        One :class:`~repro.motifs.updates.DeltaOutcome` per shard, in
        shard order.  Every shard applies the delta (each shard's phase-1
        graph must splice in the edge changes), but only the touched
        shards pay re-enumeration — the others are a CSR splice.
    touched_shards:
        Indexes of the shards whose target instance sets actually changed
        (the shard-aware hot-reload surfaces these).
    changed_targets:
        Union of the per-shard changed targets, in canonical order.
    constant:
        The (possibly auto-bumped) dissimilarity constant shared by all
        shards after the update.
    """

    outcomes: Tuple["DeltaOutcome", ...]
    touched_shards: Tuple[int, ...]
    changed_targets: Tuple[Edge, ...]
    constant: int


@dataclass
class _Scatter:
    """One cross-shard request's plan: per-shard pieces and budgets."""

    routed: List[int]
    pieces: Dict[int, Tuple[Edge, ...]]
    budgets: Dict[int, int]
    divisions: Dict[int, object] = field(default_factory=dict)


class ShardedProtectionService:
    """K shard sub-sessions behind one `ProtectionService`-shaped front.

    Parameters
    ----------
    graph_or_problem:
        Either a prepared :class:`~repro.core.model.TPPProblem` (its
        graph, targets, motif and constant are adopted) or the original
        social graph, in which case ``targets`` is required.
    targets / motif / constant:
        As in :class:`~repro.service.ProtectionService`; ``constant``
        defaults to the *combined* initial similarity of all shards, so
        dissimilarity starts at zero exactly like an unsharded session.
    shards:
        The shard count ``K``.  ``None`` reads ``REPRO_SHARDS`` (default
        1); the effective count is clamped to ``min(K, len(targets))`` so
        no shard is ever empty.
    max_cached_subsets / build_workers / kernel:
        Forwarded to every shard sub-session.

    A sharded session serves the same :meth:`solve` / :meth:`solve_many`
    / :meth:`apply_delta` surface as the unsharded service; results carry
    the extra routing block ``extra["service"]["shards"]``.
    """

    def __init__(
        self,
        graph_or_problem: Union[Graph, TPPProblem],
        targets: Optional[Sequence[Edge]] = None,
        motif: Union[str, MotifPattern] = "triangle",
        constant: Optional[int] = None,
        shards: Optional[int] = None,
        max_cached_subsets: Optional[int] = 32,
        build_workers: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> None:
        stopwatch = Stopwatch()
        if isinstance(graph_or_problem, TPPProblem):
            problem = graph_or_problem
            graph = problem.graph
            targets = problem.targets
            motif_pattern = problem.motif
            if constant is None:
                constant = problem.constant
        else:
            graph = graph_or_problem
            if targets is None:
                raise ExperimentError(
                    "ShardedProtectionService needs the target links when "
                    "built from a graph"
                )
            motif_pattern = coerce_motif(motif)
        count = shards if shards is not None else shards_from_env()
        assignment = shard_assignment(targets, count)
        all_targets = tuple(
            sorted((target for piece in assignment for target in piece),
                   key=edge_sort_key)
        )
        # the phase-1 graph is computed once and shared by every shard's
        # enumeration — all shards see the identical edge set with *all*
        # targets hidden, which is what makes per-shard similarities sum
        # to the unsharded session's
        phase1_graph = graph.without_edges(all_targets)
        indexes = [
            _build_shard_index(phase1_graph, piece, motif_pattern, build_workers)
            for piece in assignment
        ]
        combined_initial = sum(
            index.initial_total_similarity() for index in indexes
        )
        if constant is None:
            constant = combined_initial
        elif constant < combined_initial:
            raise ConstantError(
                f"constant C={constant} must be >= the combined initial "
                f"similarity {combined_initial}"
            )
        self._kernel_request = kernel
        self._max_cached_subsets = max_cached_subsets
        self._build_workers = build_workers
        shard_services = [
            ProtectionService.for_filtered_targets(
                graph,
                all_targets,
                piece,
                motif=motif_pattern,
                constant=constant,
                index=index,
                max_cached_subsets=max_cached_subsets,
                build_workers=build_workers,
                kernel=kernel,
            )
            for piece, index in zip(assignment, indexes)
        ]
        self._finish(shard_services, "built", stopwatch.elapsed(), 0)

    def _finish(
        self,
        shard_services: Sequence[ProtectionService],
        index_source: str,
        build_seconds: float,
        deltas_applied: int,
    ) -> None:
        """Validate a shard layout and wire up the session state."""
        if not shard_services:
            raise ShardError("a sharded session needs at least one shard")
        motif_name = shard_services[0].problem.motif.name
        constant = shard_services[0].problem.constant
        for position, shard in enumerate(shard_services):
            if shard.problem.motif.name != motif_name:
                raise ShardError(
                    f"shard {position} motif {shard.problem.motif.name!r} "
                    f"differs from shard 0's {motif_name!r}",
                    shard=position,
                )
            if shard.problem.constant != constant:
                raise ShardError(
                    f"shard {position} constant {shard.problem.constant} "
                    f"differs from shard 0's {constant}",
                    shard=position,
                )
        self._shards: Tuple[ProtectionService, ...] = tuple(shard_services)
        self._assignment: Tuple[Tuple[Edge, ...], ...] = tuple(
            shard.targets for shard in self._shards
        )
        self._shard_of: Dict[Edge, int] = {}
        for position, piece in enumerate(self._assignment):
            for target in piece:
                if target in self._shard_of:
                    raise ShardError(
                        f"target {target!r} is assigned to shards "
                        f"{self._shard_of[target]} and {position}",
                        shard=position,
                    )
                self._shard_of[target] = position
        self._targets: Tuple[Edge, ...] = tuple(
            sorted(self._shard_of, key=edge_sort_key)
        )
        self._lock = threading.Lock()
        #: Serialises writers, exactly like the unsharded service: one
        #: delta application at a time across *all* shards.
        self._delta_lock = threading.Lock()
        self._build_seconds = build_seconds
        # taken here (not just declared) because _finish also runs for
        # sessions assembled outside __init__ (bundle restore, workers)
        with self._lock:
            self._queries_served = 0  # reprolint: guarded-by(_lock)
            self._deltas_applied = deltas_applied  # reprolint: guarded-by(_lock)
            self._index_source = index_source  # reprolint: guarded-by(_lock)
            self._content_hash: Optional[str] = None  # reprolint: guarded-by(_lock)

    @classmethod
    def _from_problems(
        cls,
        problems: Sequence[TPPProblem],
        max_cached_subsets: Optional[int] = 32,
        build_workers: Optional[int] = None,
        kernel: Optional[str] = None,
        index_source: str = "built",
        deltas_applied: int = 0,
    ) -> "ShardedProtectionService":
        """Assemble a sharded session from per-shard problems.

        Used by the process-pool fan-out (each worker rebuilds the shards
        from the pickled problems, whose indexes travel along) and by the
        bundle restore path; the problems must already carry built indexes
        or the shards re-enumerate.
        """
        service = cls.__new__(cls)
        service._kernel_request = kernel
        service._max_cached_subsets = max_cached_subsets
        service._build_workers = build_workers
        shard_services = []
        for problem in problems:
            shard = ProtectionService(
                problem,
                max_cached_subsets=max_cached_subsets,
                build_workers=build_workers,
                kernel=kernel,
            )
            shard._index_source = index_source
            shard._deltas_applied = deltas_applied
            shard_services.append(shard)
        service._finish(shard_services, index_source, 0.0, deltas_applied)
        return service

    @classmethod
    def from_session(
        cls,
        path: Union[str, Path],
        allow_pickle: bool = True,
        max_cached_subsets: Optional[int] = 32,
        build_workers: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> "ShardedProtectionService":
        """Cold-start a sharded session from a ``.tppshards`` bundle.

        Delegates to :func:`repro.persistence.load_sharded_session`; the
        restored session reports ``index_source: "snapshot"`` and its
        traces are byte-identical to the saved session's.
        """
        from repro.persistence.shards import load_sharded_session

        service = load_sharded_session(
            path,
            allow_pickle=allow_pickle,
            max_cached_subsets=max_cached_subsets,
            build_workers=build_workers,
            kernel=kernel,
        )
        assert isinstance(service, ShardedProtectionService)
        return service

    def save_session(self, path: Union[str, Path]) -> Path:
        """Write this sharded session as a ``.tppshards`` bundle — one
        snapshot member per shard plus a shard manifest, so a replica can
        cold-start the whole session *or* any single shard (see
        :func:`repro.persistence.save_sharded_session`)."""
        from repro.persistence.shards import save_sharded_session

        return save_sharded_session(path, self)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def shards(self) -> Tuple[ProtectionService, ...]:
        """The per-shard sub-sessions, in shard order."""
        return self._shards

    @property
    def shard_count(self) -> int:
        """The effective shard count ``K`` (after clamping)."""
        return len(self._shards)

    @property
    def assignment(self) -> Tuple[Tuple[Edge, ...], ...]:
        """Each shard's targets, in shard order (each piece sorted)."""
        return self._assignment

    def shard_of(self, target: Edge) -> int:
        """Return the shard index owning ``target``."""
        edge = canonical_edge(*target)
        try:
            return self._shard_of[edge]
        except KeyError:
            raise ShardError(
                f"target {edge!r} is not a target of this session"
            ) from None

    @property
    def targets(self) -> Tuple[Edge, ...]:
        """All targets across shards, in canonical order."""
        return self._targets

    @property
    def motif(self) -> MotifPattern:
        """The motif pattern shared by every shard."""
        return self._shards[0].problem.motif

    @property
    def constant(self) -> int:
        """The dissimilarity constant ``C`` shared by every shard."""
        return self._shards[0].problem.constant

    @property
    def kernel(self) -> str:
        """The resolved coverage-state kernel (same for every shard)."""
        return self._shards[0].kernel

    @property
    def build_seconds(self) -> float:
        """Wall-clock cost of the one-time build across all shards."""
        return self._build_seconds

    @property
    def queries_served(self) -> int:
        """How many :meth:`solve` calls this sharded session answered."""
        return self._queries_served

    @property
    def deltas_applied(self) -> int:
        """How many edge deltas this sharded session has applied."""
        with self._lock:
            return self._deltas_applied

    @property
    def index_source(self) -> str:
        """``"built"``, ``"snapshot"`` or ``"delta"`` — as unsharded."""
        return self._index_source

    def pristine_similarity(self) -> int:
        """Return ``s(∅, T)`` summed over all shards."""
        return sum(shard.pristine_similarity() for shard in self._shards)

    def number_of_instances(self) -> int:
        """Total enumerated motif instances across all shards."""
        return sum(
            shard.index.number_of_instances() for shard in self._shards
        )

    def content_hash(self) -> str:
        """A stable hash of the whole sharded state (per-shard hashes
        chained in shard order).  This is what delta snapshots must name
        as their parent and what the HTTP ``/stats`` endpoint reports."""
        with self._lock:
            cached = self._content_hash
            shards = self._shards
        if cached is not None:
            return cached
        from repro.persistence.shards import combined_content_hash

        fresh = combined_content_hash([shard.index for shard in shards])
        with self._lock:
            if self._shards is shards:
                self._content_hash = fresh
        return fresh

    def released_graph(self, protectors: Sequence[Edge]) -> Graph:
        """The released graph: shared phase-1 graph minus the protectors.

        Every shard's phase-1 graph is the same graph (all targets
        hidden), so shard 0's problem answers for the whole session — a
        released graph can never leak *any* session target, shard-local
        or not.
        """
        return self._shards[0].problem.released_graph(protectors)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, request: ProtectionRequest) -> ProtectionResult:
        """Answer one protection query, routing over the shards.

        Single-shard requests (including every request when ``K == 1``)
        forward verbatim and answer bit-identically to the unsharded
        service.  Cross-shard requests scatter-gather: deterministic
        budget split, per-shard solves, deterministic merge (see the
        module docstring).  A failed request — any shard raising — never
        bumps :attr:`queries_served` and never returns a partial merge.
        """
        request.validate()
        result = self._answer(request)
        with self._lock:
            self._queries_served += 1
        return result

    def _answer(self, request: ProtectionRequest) -> ProtectionResult:
        canonical = self._canonical_request_targets(request.targets)
        by_shard: Dict[int, List[Edge]] = {}
        for target in canonical:
            by_shard.setdefault(self._shard_of[target], []).append(target)
        routed = sorted(by_shard)
        if len(routed) == 1:
            return self._route_single(request, routed[0], by_shard[routed[0]])
        return self._scatter_gather(request, by_shard)

    def _canonical_request_targets(
        self, targets: Optional[Sequence[Edge]]
    ) -> Tuple[Edge, ...]:
        """Validate and canonicalise a request's target list."""
        if targets is None:
            return self._targets
        canonical = tuple(
            sorted(
                (canonical_edge(*target) for target in targets),
                key=edge_sort_key,
            )
        )
        if len(set(canonical)) != len(canonical):
            raise ExperimentError(
                f"request targets contain duplicate links: {canonical!r}"
            )
        unknown = [
            target for target in canonical if target not in self._shard_of
        ]
        if unknown:
            raise ExperimentError(
                f"request targets {unknown!r} are not targets of this session"
            )
        return canonical

    def _route_single(
        self, request: ProtectionRequest, shard_index: int, piece: List[Edge]
    ) -> ProtectionResult:
        """Forward a request owned entirely by one shard."""
        shard = self._shards[shard_index]
        sub_targets = (
            None if len(piece) == len(shard.targets) else tuple(piece)
        )
        result = shard.solve(request.with_overrides(targets=sub_targets))
        metadata = dict(result.extra["service"])
        metadata["request"] = request.to_dict()
        metadata["shards"] = {
            "count": self.shard_count,
            "mode": "single",
            "routed": [shard_index],
        }
        return replace(result, extra={**result.extra, "service": metadata})

    def _split_budget(
        self, request: ProtectionRequest, by_shard: Dict[int, List[Edge]]
    ) -> _Scatter:
        """Plan a cross-shard request's per-shard budgets and divisions.

        An explicit budget division is authoritative: each shard receives
        the mapping restricted to its piece and exactly that much budget.
        Otherwise the request budget is apportioned over the requested
        targets proportionally to their initial similarities (the same
        largest-remainder apportionment TBD uses), capped per target —
        budget beyond the pieces' combined initial similarity cannot
        improve protection and is left unspent.  Either way the split is
        a pure function of the request and the pristine shard state, so
        repeated identical requests split identically.
        """
        routed = sorted(by_shard)
        pieces = {index: tuple(by_shard[index]) for index in routed}
        requested = [target for index in routed for target in pieces[index]]
        requested.sort(key=edge_sort_key)
        plan = _Scatter(routed=routed, pieces=pieces, budgets={})
        mapping = request.division_mapping()
        if isinstance(mapping, Mapping):
            unknown = sorted(
                (target for target in mapping if target not in set(requested)),
                key=edge_sort_key,
            )
            if unknown:
                raise BudgetError(
                    f"budget division names targets {unknown!r} outside the "
                    "requested target set"
                )
            total = sum(mapping.values())
            if total > request.budget:
                raise BudgetError(
                    f"budget division allocates {total} > budget "
                    f"{request.budget}"
                )
            for index in routed:
                restricted = {
                    target: mapping[target]
                    for target in pieces[index]
                    if target in mapping
                }
                plan.budgets[index] = sum(restricted.values())
                plan.divisions[index] = restricted
            return plan
        weights: Dict[Edge, float] = {}
        caps: Dict[Edge, int] = {}
        for target in requested:
            initial = self._shards[self._shard_of[target]].index.initial_similarity(
                target
            )
            weights[target] = float(initial)
            caps[target] = initial
        per_target = proportional_allocation(weights, caps, request.budget)
        for index in routed:
            plan.budgets[index] = sum(
                per_target[target] for target in pieces[index]
            )
            # a strategy name (or None) is forwarded untouched: each shard
            # computes its own division over its piece
            plan.divisions[index] = request.budget_division
        return plan

    def _scatter_gather(
        self, request: ProtectionRequest, by_shard: Dict[int, List[Edge]]
    ) -> ProtectionResult:
        """Split, solve per shard concurrently, merge deterministically."""
        stopwatch = Stopwatch()
        plan = self._split_budget(request, by_shard)
        sub_requests: Dict[int, ProtectionRequest] = {}
        for index in plan.routed:
            piece = plan.pieces[index]
            shard = self._shards[index]
            sub_targets = (
                None if len(piece) == len(shard.targets) else piece
            )
            sub_requests[index] = request.with_overrides(
                targets=sub_targets,
                budget=plan.budgets[index],
                budget_division=plan.divisions[index],
            )
        results: Dict[int, ProtectionResult] = {}
        with ThreadPoolExecutor(max_workers=len(plan.routed)) as executor:
            futures: Dict[int, "Future[ProtectionResult]"] = {
                index: executor.submit(
                    self._shards[index].solve, sub_requests[index]
                )
                for index in plan.routed
            }
            failure: Optional[Tuple[int, BaseException]] = None
            for index in plan.routed:
                try:
                    results[index] = futures[index].result()
                except Exception as error:  # noqa: BLE001 - atomic abort
                    if failure is None:
                        failure = (index, error)
        if failure is not None:
            shard_index, error = failure
            raise ShardError(
                f"shard {shard_index} failed mid scatter-gather: {error}",
                shard=shard_index,
            ) from error
        return self._merge(request, plan, results, stopwatch)

    def _merge(
        self,
        request: ProtectionRequest,
        plan: _Scatter,
        results: Dict[int, ProtectionResult],
        stopwatch: Stopwatch,
    ) -> ProtectionResult:
        """Gather per-shard answers into one deterministic result.

        Protectors concatenate in shard order (shard order *is*
        ``edge_sort_key`` order of each shard's first target) with
        keep-first dedup — edge deletion is idempotent, so an edge picked
        by two shards is deleted once and still serves both targets.  The
        merged similarity trace is exact, not approximate: every shard
        replays the full merged sequence on a pristine state copy, so a
        protector chosen by shard 0 that also breaks shard 1 instances is
        charged at the step it is deleted, and the element-wise sum is
        ``s(P_prefix, T_request)`` step by step.
        """
        merged: List[Edge] = []
        seen = set()
        total_picks = 0
        for index in plan.routed:
            for protector in results[index].protectors:
                total_picks += 1
                if protector not in seen:
                    seen.add(protector)
                    merged.append(protector)
        merged_protectors = tuple(merged)
        traces = []
        for index in plan.routed:
            piece = plan.pieces[index]
            shard = self._shards[index]
            sub_targets = (
                None if len(piece) == len(shard.targets) else piece
            )
            traces.append(
                shard.evaluate_trace(merged_protectors, targets=sub_targets)
            )
        merged_trace = tuple(sum(column) for column in zip(*traces))
        division: Optional[Dict[Edge, int]] = None
        if all(
            results[index].budget_division is not None
            for index in plan.routed
        ):
            combined: Dict[Edge, int] = {}
            for index in plan.routed:
                combined.update(results[index].budget_division or {})
            division = {
                target: combined[target]
                for target in sorted(combined, key=edge_sort_key)
            }
        allocation: Optional[Dict[Edge, Tuple[Edge, ...]]] = None
        if all(
            results[index].allocation is not None for index in plan.routed
        ):
            gathered: Dict[Edge, Tuple[Edge, ...]] = {}
            for index in plan.routed:
                gathered.update(results[index].allocation or {})
            allocation = {
                target: gathered[target]
                for target in sorted(gathered, key=edge_sort_key)
            }
        first = results[plan.routed[0]]
        with self._lock:
            index_source = self._index_source
            deltas_applied = self._deltas_applied
        reused = all(
            bool(results[index].extra["service"]["reused_index"])
            for index in plan.routed
        )
        solve_seconds = stopwatch.elapsed()
        metadata: Dict[str, object] = {
            "request": request.to_dict(),
            "reused_index": reused,
            "index_source": index_source,
            "build_seconds": round(self._build_seconds, 6),
            "solve_seconds": round(solve_seconds, 6),
            "deltas_applied": deltas_applied,
            "kernel": self.kernel,
            "shards": {
                "count": self.shard_count,
                "mode": "scatter-gather",
                "routed": list(plan.routed),
                "budgets": {
                    str(index): plan.budgets[index] for index in plan.routed
                },
                "deduplicated_protectors": total_picks - len(merged),
            },
        }
        if request.label is not None:
            metadata["label"] = request.label
        return ProtectionResult(
            algorithm=first.algorithm,
            motif=first.motif,
            budget=request.budget,
            protectors=merged_protectors,
            similarity_trace=merged_trace,
            initial_similarity=merged_trace[0],
            budget_division=division,
            allocation=allocation,
            runtime_seconds=solve_seconds,
            extra={"service": metadata},
        )

    def solve_many(
        self,
        requests: Sequence[ProtectionRequest],
        workers: Optional[int] = None,
        mode: str = "thread",
    ) -> List[ProtectionResult]:
        """Answer a batch of queries, optionally fanned out over workers.

        Semantics match :meth:`ProtectionService.solve_many`: results come
        back in request order and are byte-identical for every worker
        count and mode.  ``"process"`` pickles every shard's problem (with
        its built index) once per worker; each worker reassembles the full
        sharded session, so cross-shard requests scatter-gather inside
        the worker exactly as they would here.
        """
        if mode not in _MODES:
            raise ExperimentError(f"mode must be one of {_MODES}, got {mode!r}")
        requests = list(requests)
        for request in requests:
            request.validate()
        if workers is None or workers <= 1 or len(requests) <= 1:
            return [self.solve(request) for request in requests]
        if mode == "thread":
            with ThreadPoolExecutor(max_workers=workers) as executor:
                return list(executor.map(self.solve, requests))
        with self._lock:
            index_source = self._index_source
            deltas_applied = self._deltas_applied
        problems = tuple(shard.problem for shard in self._shards)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_sharded_worker_init,
            initargs=(
                problems,
                index_source,
                deltas_applied,
                self._kernel_request,
            ),
        ) as executor:
            return list(executor.map(_sharded_worker_solve, requests))

    def evaluate_trace(
        self,
        protectors: Sequence[Edge],
        targets: Optional[Sequence[Edge]] = None,
    ) -> Tuple[int, ...]:
        """Replay a protector sequence against the sharded session.

        Each owning shard replays the full sequence on its piece and the
        traces sum element-wise — exactly the gather half of
        :meth:`solve`, usable as an independent check of any protector
        sequence (the differential suite and ``bench_sharding`` both
        cross-validate merged traces through this).
        """
        canonical = self._canonical_request_targets(targets)
        by_shard: Dict[int, List[Edge]] = {}
        for target in canonical:
            by_shard.setdefault(self._shard_of[target], []).append(target)
        traces = []
        for index in sorted(by_shard):
            piece = by_shard[index]
            shard = self._shards[index]
            sub_targets = (
                None if len(piece) == len(shard.targets) else tuple(piece)
            )
            traces.append(shard.evaluate_trace(protectors, targets=sub_targets))
        return tuple(sum(column) for column in zip(*traces))

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def apply_delta(
        self, delta: "EdgeDelta", constant: Optional[int] = None
    ) -> ShardDeltaOutcome:
        """Apply a graph update to every shard, atomically.

        The incremental maintenance runs copy-on-write against all shards
        *first* — any failure (inconsistent delta, constant violation)
        leaves every shard serving its pre-delta state — and only then is
        each shard's result installed.  Every shard splices the edge
        changes into its phase-1 graph (they share it semantically), but
        only shards whose targets' instance sets changed pay
        re-enumeration; :attr:`ShardDeltaOutcome.touched_shards` names
        them for the shard-aware hot reload.

        A :class:`~repro.persistence.DeltaSnapshot` is verified against
        this session's *combined* :meth:`content_hash` before anything is
        applied (mismatch raises
        :class:`~repro.exceptions.SnapshotMismatchError`).  ``constant``
        follows the unsharded rule against the combined initial
        similarity: kept, auto-bumped when insertions raise it, explicit
        values below it raise :class:`~repro.exceptions.DeltaError` —
        after which every shard is rebased to the one shared ``C``.
        """
        from repro.motifs.updates import EdgeDelta

        with self._delta_lock:
            if not isinstance(delta, EdgeDelta):
                parent = getattr(delta, "parent_content_hash", None)
                raw = getattr(delta, "delta", None)
                if parent is None or raw is None:
                    raise ExperimentError(
                        "apply_delta expects an EdgeDelta or a DeltaSnapshot, "
                        f"got {type(delta).__name__}"
                    )
                live = self.content_hash()
                if parent != live:
                    raise SnapshotMismatchError(
                        f"delta snapshot parent hash {str(parent)[:12]}… does "
                        f"not match the live sharded session's combined hash "
                        f"{live[:12]}…"
                    )
                delta = raw
            stopwatch = Stopwatch()
            updates = [
                shard.problem.apply_delta(delta) for shard in self._shards
            ]
            combined_initial = sum(
                problem.initial_similarity() for problem, _ in updates
            )
            old_constant = self.constant
            if constant is None:
                new_constant = max(old_constant, combined_initial)
            elif constant < combined_initial:
                raise DeltaError(
                    f"constant C={constant} is below the post-delta combined "
                    f"initial similarity {combined_initial}"
                )
            else:
                new_constant = constant
            build_seconds = stopwatch.elapsed()
            installed = []
            for problem, outcome in updates:
                if problem.constant != new_constant:
                    problem = problem.with_constant(new_constant)
                installed.append((problem, outcome))
            for shard, (problem, outcome) in zip(self._shards, installed):
                shard._install_delta_result(problem, outcome, build_seconds)
            with self._lock:
                self._deltas_applied += 1
                self._index_source = "delta"
                self._content_hash = None
        outcomes = tuple(outcome for _, outcome in installed)
        touched = tuple(
            index
            for index, outcome in enumerate(outcomes)
            if outcome.changed_targets
        )
        changed = tuple(
            sorted(
                {
                    target
                    for outcome in outcomes
                    for target in outcome.changed_targets
                },
                key=edge_sort_key,
            )
        )
        return ShardDeltaOutcome(
            outcomes=outcomes,
            touched_shards=touched,
            changed_targets=changed,
            constant=new_constant,
        )


# ----------------------------------------------------------------------
# process-mode plumbing: one sharded session per worker, reassembled from
# the pickled per-shard problems exactly once per worker process.  Each
# problem pickles with its built flat-array index, so nothing is
# enumerated inside a worker.
# ----------------------------------------------------------------------
_SHARDED_WORKER: Optional[ShardedProtectionService] = None


def _sharded_worker_init(
    problems: Tuple[TPPProblem, ...],
    index_source: str = "built",
    deltas_applied: int = 0,
    kernel: Optional[str] = None,
) -> None:
    global _SHARDED_WORKER
    _SHARDED_WORKER = ShardedProtectionService._from_problems(
        problems,
        kernel=kernel,
        index_source=index_source,
        deltas_applied=deltas_applied,
    )


def _sharded_worker_solve(request: ProtectionRequest) -> ProtectionResult:
    assert _SHARDED_WORKER is not None, "worker initializer did not run"
    return _SHARDED_WORKER.solve(request)
