"""Service layer: the session API for serving many protection queries.

This is the library's primary entry point since the API redesign:
construct a :class:`ProtectionService` once per ``(graph, targets, motif)``
instance, then :meth:`~ProtectionService.solve` /
:meth:`~ProtectionService.solve_many` typed
:class:`ProtectionRequest` queries against the shared index.  The method
vocabulary is extensible through the decorator registry
(:func:`register_method`); the built-in seven methods of the paper's
evaluation are registered on import.
"""

from repro.service import builtin  # noqa: F401  (registers built-in methods)
from repro.service.registry import (
    MethodRunner,
    MethodSpec,
    baseline_method_names,
    get_method,
    greedy_method_names,
    is_greedy_method,
    iter_methods,
    method_names,
    register_method,
    unregister_method,
)
from repro.service.requests import ProtectionRequest
from repro.service.service import ProtectionService
from repro.service.sharding import (
    ShardDeltaOutcome,
    ShardedProtectionService,
    shard_assignment,
    shards_from_env,
)

__all__ = [
    "ProtectionService",
    "ProtectionRequest",
    "ShardedProtectionService",
    "ShardDeltaOutcome",
    "shard_assignment",
    "shards_from_env",
    "MethodSpec",
    "MethodRunner",
    "register_method",
    "unregister_method",
    "get_method",
    "iter_methods",
    "method_names",
    "greedy_method_names",
    "baseline_method_names",
    "is_greedy_method",
]
