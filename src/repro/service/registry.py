"""Decorator-based protection-method registry.

The paper's evaluation speaks a fixed vocabulary of seven method names
(``SGB-Greedy``, ``CT-Greedy:TBD``, ... ``RD``, ``RDT``).  Earlier revisions
hard-coded that vocabulary in two hand-maintained dicts plus a duplicated
ordering tuple in ``repro.experiments.methods``; this module replaces them
with a single registry that downstream users can extend::

    from repro.service import register_method

    @register_method("CT-Greedy:UNIFORM", kind="greedy", order=45)
    def _run_ct_uniform(problem, budget, engine, seed, **options):
        return ct_greedy(problem, budget, budget_division="uniform", engine=engine)

Registered runners all share one signature::

    runner(problem, budget, engine, seed, **options) -> ProtectionResult

where ``engine`` is an engine name *or* an already-constructed
:class:`~repro.core.engines.MarginalGainEngine` (the session API injects
engines built on a copy of its pristine coverage state), and ``options`` are
the free-form per-request options (``budget_division``, ``lazy``, ...) a
:class:`~repro.service.requests.ProtectionRequest` carries.  Runners must
ignore options they do not understand (accept ``**options``).

Ordering: :func:`method_names` sorts by the ``order`` given at registration
(ties by registration sequence), which is how the paper's legend order is
derived instead of being duplicated by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.core.model import ProtectionResult
from repro.exceptions import ExperimentError

__all__ = [
    "MethodRunner",
    "MethodSpec",
    "register_method",
    "unregister_method",
    "get_method",
    "method_names",
    "greedy_method_names",
    "baseline_method_names",
    "is_greedy_method",
    "iter_methods",
]

#: Signature every registered runner implements.
MethodRunner = Callable[..., ProtectionResult]

_KINDS = ("greedy", "baseline")


@dataclass(frozen=True)
class MethodSpec:
    """One registered protection method.

    Attributes
    ----------
    name:
        Registry key, the paper-legend label (e.g. ``"CT-Greedy:TBD"``).
    runner:
        The callable executing the method (see module docstring signature).
    kind:
        ``"greedy"`` (deterministic, engine-sensitive) or ``"baseline"``
        (randomized, seed-sensitive).
    order:
        Legend sort position; :func:`method_names` sorts ascending.
    description:
        One-line human-readable description (shown by CLI errors/docs).
    sequence:
        Registration sequence number (tie-break for equal ``order``).
    """

    name: str
    runner: MethodRunner
    kind: str
    order: int
    description: str = ""
    sequence: int = field(default=0, compare=False)

    @property
    def is_greedy(self) -> bool:
        return self.kind == "greedy"


_REGISTRY: Dict[str, MethodSpec] = {}
_SEQUENCE = 0


def register_method(
    name: str,
    kind: str = "greedy",
    order: Optional[int] = None,
    description: str = "",
    replace: bool = False,
) -> Callable[[MethodRunner], MethodRunner]:
    """Return a decorator registering a protection-method runner under ``name``.

    Parameters
    ----------
    name:
        Registry key.  Registering an existing name raises
        :class:`~repro.exceptions.ExperimentError` unless ``replace=True``.
    kind:
        ``"greedy"`` or ``"baseline"``.
    order:
        Legend sort position; defaults to after every already-registered
        method.
    description:
        One-line description surfaced by CLI validation errors.
    replace:
        Allow overriding an existing registration (used by tests/plugins).
    """
    if kind not in _KINDS:
        raise ExperimentError(f"method kind must be one of {_KINDS}, got {kind!r}")

    def decorator(runner: MethodRunner) -> MethodRunner:
        global _SEQUENCE
        if name in _REGISTRY and not replace:
            raise ExperimentError(
                f"method {name!r} is already registered; pass replace=True to override"
            )
        _SEQUENCE += 1
        position = order if order is not None else _SEQUENCE * 100
        _REGISTRY[name] = MethodSpec(
            name=name,
            runner=runner,
            kind=kind,
            order=position,
            description=description,
            sequence=_SEQUENCE,
        )
        return runner

    return decorator


def unregister_method(name: str) -> None:
    """Remove a registration (primarily for tests and plugin teardown)."""
    _REGISTRY.pop(name, None)


def get_method(name: str) -> MethodSpec:
    """Return the :class:`MethodSpec` registered under ``name``.

    Raises
    ------
    ExperimentError
        With the full list of valid names, when ``name`` is unknown.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ExperimentError(
            f"unknown method {name!r}; registered methods: {', '.join(method_names())}"
        )
    return spec


def iter_methods() -> Iterator[MethodSpec]:
    """Yield every registered spec in legend (``order``) order."""
    yield from sorted(_REGISTRY.values(), key=lambda spec: (spec.order, spec.sequence))


def method_names() -> Tuple[str, ...]:
    """Return every registered method name in legend order."""
    return tuple(spec.name for spec in iter_methods())


def greedy_method_names() -> Tuple[str, ...]:
    """Return the registered greedy method names in legend order."""
    return tuple(spec.name for spec in iter_methods() if spec.is_greedy)


def baseline_method_names() -> Tuple[str, ...]:
    """Return the registered baseline method names in legend order."""
    return tuple(spec.name for spec in iter_methods() if not spec.is_greedy)


def is_greedy_method(name: str) -> bool:
    """Return whether ``name`` is registered as a greedy method."""
    spec = _REGISTRY.get(name)
    return spec is not None and spec.is_greedy
