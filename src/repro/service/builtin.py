"""Built-in protection methods: the seven curves of Figs. 3-6 / Tables III-V.

* ``SGB-Greedy`` — single global budget greedy,
* ``SGB-Greedy+BB`` — the same greedy with a branch-and-bound refinement of
  the final ``depth`` picks (never worse, deterministic; see
  :mod:`repro.core.refine`),
* ``CT-Greedy:TBD`` / ``CT-Greedy:DBD`` — cross-target greedy under the two
  budget divisions,
* ``WT-Greedy:TBD`` / ``WT-Greedy:DBD`` — within-target greedy under the two
  budget divisions,
* ``RD`` and ``RDT`` — the random baselines.

The ``order`` values reproduce the paper's legend order (SGB, CT:DBD,
WT:DBD, CT:TBD, WT:TBD, RD, RDT) — ``method_names()`` derives the ordering
from these registrations instead of a hand-maintained tuple.

Each runner accepts the shared registry signature
``(problem, budget, engine, seed, **options)``; the CT/WT runners honour a
``budget_division`` option (an explicit per-target mapping overrides the
division baked into the method name), SGB honours ``lazy``, and the
baselines extract the prepared coverage state from an injected engine so
session-served runs trace deletions on the shared index.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.core.baselines import random_deletion, random_target_subgraph_deletion
from repro.core.ct import ct_greedy
from repro.core.engines import CoverageEngine, EngineLike
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.refine import sgb_greedy_bb
from repro.core.sgb import sgb_greedy
from repro.core.wt import wt_greedy
from repro.motifs.enumeration import CoverageState, SetCoverageState
from repro.service.registry import register_method

__all__ = []  # registration side effects only


def _prepared_state(
    engine: EngineLike,
) -> Optional[Union[CoverageState, SetCoverageState]]:
    """Return the coverage state of an injected engine (None for names)."""
    if isinstance(engine, CoverageEngine):
        return engine.coverage_state
    return None


@register_method(
    "SGB-Greedy",
    kind="greedy",
    order=10,
    description="single global budget greedy (Algorithm 1)",
)
def _run_sgb(
    problem: TPPProblem, budget: int, engine: EngineLike, seed: int, **options: Any
) -> ProtectionResult:
    return sgb_greedy(problem, budget, engine=engine, lazy=options.get("lazy"))


@register_method(
    "SGB-Greedy+BB",
    kind="greedy",
    order=15,
    description="SGB greedy with branch-and-bound refinement of the final picks",
)
def _run_sgb_bb(
    problem: TPPProblem, budget: int, engine: EngineLike, seed: int, **options: Any
) -> ProtectionResult:
    return sgb_greedy_bb(
        problem,
        budget,
        engine=engine,
        depth=options.get("depth", 3),
        shortlist=options.get("shortlist", 6),
    )


@register_method(
    "CT-Greedy:DBD",
    kind="greedy",
    order=20,
    description="cross-target greedy, degree-product budget division",
)
def _run_ct_dbd(
    problem: TPPProblem, budget: int, engine: EngineLike, seed: int, **options: Any
) -> ProtectionResult:
    division = options.get("budget_division") or "dbd"
    return ct_greedy(problem, budget, budget_division=division, engine=engine)


@register_method(
    "WT-Greedy:DBD",
    kind="greedy",
    order=30,
    description="within-target greedy, degree-product budget division",
)
def _run_wt_dbd(
    problem: TPPProblem, budget: int, engine: EngineLike, seed: int, **options: Any
) -> ProtectionResult:
    division = options.get("budget_division") or "dbd"
    return wt_greedy(problem, budget, budget_division=division, engine=engine)


@register_method(
    "CT-Greedy:TBD",
    kind="greedy",
    order=40,
    description="cross-target greedy, target-subgraph budget division",
)
def _run_ct_tbd(
    problem: TPPProblem, budget: int, engine: EngineLike, seed: int, **options: Any
) -> ProtectionResult:
    division = options.get("budget_division") or "tbd"
    return ct_greedy(problem, budget, budget_division=division, engine=engine)


@register_method(
    "WT-Greedy:TBD",
    kind="greedy",
    order=50,
    description="within-target greedy, target-subgraph budget division",
)
def _run_wt_tbd(
    problem: TPPProblem, budget: int, engine: EngineLike, seed: int, **options: Any
) -> ProtectionResult:
    division = options.get("budget_division") or "tbd"
    return wt_greedy(problem, budget, budget_division=division, engine=engine)


@register_method(
    "RD",
    kind="baseline",
    order=60,
    description="uniform random deletion from the phase-1 edge set",
)
def _run_rd(
    problem: TPPProblem, budget: int, engine: EngineLike, seed: int, **options: Any
) -> ProtectionResult:
    return random_deletion(problem, budget, seed=seed, state=_prepared_state(engine))


@register_method(
    "RDT",
    kind="baseline",
    order=70,
    description="uniform random deletion from target-subgraph edges",
)
def _run_rdt(
    problem: TPPProblem, budget: int, engine: EngineLike, seed: int, **options: Any
) -> ProtectionResult:
    return random_target_subgraph_deletion(
        problem, budget, seed=seed, state=_prepared_state(engine)
    )
