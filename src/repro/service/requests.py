"""Typed protection queries served by :class:`~repro.service.ProtectionService`.

A :class:`ProtectionRequest` is the unit of work of the session API: it names
a registered method, a budget, and the per-query knobs (engine, seed, budget
division, lazy evaluation, target subset).  Requests are plain frozen
dataclasses — hashable, picklable (they cross process boundaries in
``solve_many(workers=..., mode="process")``) and JSON round-trippable via
:meth:`ProtectionRequest.to_dict` / :meth:`ProtectionRequest.from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.engines import ENGINE_NAMES
from repro.exceptions import ExperimentError
from repro.graphs.graph import Edge, canonical_edge
from repro.service.registry import get_method

__all__ = ["ProtectionRequest"]

#: Budget division: a strategy name, an explicit per-target mapping, or None
#: (= the method's default, e.g. TBD for ``CT-Greedy:TBD``).
DivisionLike = Union[str, Mapping[Edge, int], None]


@dataclass(frozen=True)
class ProtectionRequest:
    """One protection query against a session's shared index.

    Attributes
    ----------
    method:
        A registered method name (see :func:`repro.service.method_names`).
    budget:
        Deletion budget ``k``.
    engine:
        ``"coverage"`` (array kernel, default), ``"coverage-set"`` or
        ``"recount"``.  The session serves the coverage engines from a copy
        of its pristine state; ``"recount"`` rebuilds by design (it *is* the
        naive baseline).
    seed:
        Random seed (used by the baselines; ignored by the greedy methods).
    budget_division:
        Optional override of the method's budget division — a strategy name
        or an explicit ``{target: sub-budget}`` mapping.
    lazy:
        Optional override of SGB's lazy (heap) evaluation.
    targets:
        Optional target subset to protect (must be a subset of the session's
        targets); ``None`` protects all of them.  A subset query still hides
        *all* of the session's targets in phase 1 — the non-subset targets
        are removed from the sub-problem's graph, never released — only the
        protector budget is focused on the subset.  Order is not
        significant: permutations of the same subset share one cached
        sub-session and return identical protector traces.
    label:
        Optional caller tag echoed through the result metadata.
    """

    method: str
    budget: int
    engine: str = "coverage"
    seed: int = 0
    budget_division: DivisionLike = None
    lazy: Optional[bool] = None
    targets: Optional[Tuple[Edge, ...]] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.targets is not None:
            object.__setattr__(
                self,
                "targets",
                tuple(canonical_edge(*target) for target in self.targets),
            )
        if isinstance(self.budget_division, Mapping):
            object.__setattr__(
                self,
                "budget_division",
                tuple(
                    (canonical_edge(*target), int(value))
                    for target, value in self.budget_division.items()
                ),
            )

    def validate(self) -> None:
        """Check method and engine against the live registries.

        Raises
        ------
        ExperimentError
            Listing the valid names, so typos are actionable.
        """
        get_method(self.method)  # raises with the registered names listed
        if self.engine not in ENGINE_NAMES:
            raise ExperimentError(
                f"unknown engine {self.engine!r}; valid engines: "
                f"{', '.join(ENGINE_NAMES)}"
            )
        if self.budget < 0:
            raise ExperimentError(f"budget must be >= 0, got {self.budget}")

    def division_mapping(self) -> DivisionLike:
        """Return ``budget_division`` with explicit divisions as a dict."""
        if isinstance(self.budget_division, tuple):
            return {target: value for target, value in self.budget_division}
        return self.budget_division

    def options(self) -> Dict[str, object]:
        """Return the free-form options forwarded to the method runner."""
        options: Dict[str, object] = {}
        division = self.division_mapping()
        if division is not None:
            options["budget_division"] = division
        if self.lazy is not None:
            options["lazy"] = self.lazy
        return options

    def with_overrides(self, **changes: Any) -> "ProtectionRequest":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable dictionary (edge tuples become lists)."""
        payload: Dict[str, object] = {
            "method": self.method,
            "budget": self.budget,
            "engine": self.engine,
            "seed": self.seed,
        }
        if self.budget_division is not None:
            if isinstance(self.budget_division, str):
                payload["budget_division"] = self.budget_division
            else:
                payload["budget_division"] = [
                    [list(target), value] for target, value in self.budget_division
                ]
        if self.lazy is not None:
            payload["lazy"] = self.lazy
        if self.targets is not None:
            payload["targets"] = [list(target) for target in self.targets]
        if self.label is not None:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ProtectionRequest":
        """Rebuild a request from a :meth:`to_dict` payload (or parsed JSON)."""
        division = payload.get("budget_division")
        if isinstance(division, (list, tuple)):
            division = {tuple(target): int(value) for target, value in division}
        targets = payload.get("targets")
        return cls(
            method=payload["method"],
            budget=int(payload["budget"]),
            engine=payload.get("engine", "coverage"),
            seed=int(payload.get("seed", 0)),
            budget_division=division,
            lazy=payload.get("lazy"),
            targets=None
            if targets is None
            else tuple(tuple(target) for target in targets),
            label=payload.get("label"),
        )
