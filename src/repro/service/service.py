"""`ProtectionService`: build the index once, serve many protection queries.

The paper's evaluation (and any production deployment) runs many protector
selections over the *same* ``(graph, targets, motif)`` instance — seven
methods x many budgets x many seeds.  Target-subgraph enumeration is the
expensive part, and it is identical for every one of those queries, so the
session API splits the work:

* **build once** — the service owns the frozen
  :class:`~repro.graphs.indexed.IndexedGraph` +
  :class:`~repro.motifs.enumeration.TargetSubgraphIndex` plus a pristine
  :class:`~repro.motifs.enumeration.CoverageState` prototype, and
* **serve many** — every :meth:`solve` runs on a cheap ``copy()`` of the
  prototype (flat array memcpy), never mutating the session state, so
  repeated identical requests return identical protector sequences and
  queries may run concurrently.

:meth:`solve_many` fans a batch out over threads (zero setup cost, shares
the in-process index) or worker processes (the problem — with its built
flat-array index — is pickled once per worker, then each request travels as
a tiny dataclass), which is what makes budget sweeps and seed sweeps
parallel.

Typical usage::

    from repro.service import ProtectionService, ProtectionRequest

    service = ProtectionService(graph, targets, motif="triangle")
    result = service.solve(ProtectionRequest("SGB-Greedy", budget=40))
    sweep = service.solve_many(
        [ProtectionRequest("CT-Greedy:TBD", budget=k) for k in range(5, 55, 5)],
        workers=4,
    )
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engines import CoverageEngine, MarginalGainEngine
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.selection import Stopwatch
from repro.exceptions import ExperimentError
from repro.graphs.graph import Edge, Graph, canonical_edge, edge_sort_key
from repro.motifs.base import MotifPattern
from repro.motifs.enumeration import CoverageState, SetCoverageState, TargetSubgraphIndex
from repro.service import builtin  # noqa: F401  (registers the built-in methods)
from repro.service.registry import get_method
from repro.service.requests import ProtectionRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.motifs.updates import DeltaOutcome, EdgeDelta

__all__ = ["ProtectionService"]

#: Fan-out modes accepted by :meth:`ProtectionService.solve_many`.
_MODES = ("thread", "process")


class ProtectionService:
    """A protection session: one shared index, many independent queries.

    Parameters
    ----------
    graph_or_problem:
        Either a prepared :class:`~repro.core.model.TPPProblem` or the
        original social graph (targets still present), in which case
        ``targets`` is required.
    targets:
        The sensitive links to hide (ignored when a problem is given).
    motif:
        The adversary's subgraph pattern (ignored when a problem is given).
    constant:
        The dissimilarity constant ``C`` (ignored when a problem is given).
    max_cached_subsets:
        How many target-subset sub-sessions to keep (least-recently-used
        eviction; each caches a full enumerated index).  ``None`` means
        unbounded.
    build_workers:
        ``None``/``0``/``1`` builds the index serially; ``N > 1`` fans the
        per-target enumeration (pass 1) out over ``N`` worker processes —
        bit-identical index for every worker count.  Inherited by subset
        sub-session builds.  Worth it once enumeration dominates the build
        (many targets on a large graph); a small session pays pool spin-up
        for nothing.
    kernel:
        Coverage-state hot-loop implementation: ``"auto"`` (default, =
        ``None``) runs the compiled C kernel when loadable and falls back
        to numpy, ``"native"``/``"numpy"`` force one side (see
        :class:`~repro.motifs.coverage.CoverageState`).  Observably
        bit-identical either way; the resolved kernel is echoed as
        ``kernel`` in every result's ``extra["service"]`` metadata.
        Inherited by subset sub-sessions and delta swaps.

    Notes
    -----
    Construction performs the expensive one-time work — phase-1 graph,
    target-subgraph enumeration into the flat-array index, and the pristine
    coverage-state prototype.  Everything afterwards is cheap and
    side-effect free on the session: a query must never mutate the pristine
    state (pinned by the determinism regression tests).
    """

    def __init__(
        self,
        graph_or_problem: Union[Graph, TPPProblem],
        targets: Optional[Sequence[Edge]] = None,
        motif: Union[str, MotifPattern] = "triangle",
        constant: Optional[int] = None,
        max_cached_subsets: Optional[int] = 32,
        build_workers: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if max_cached_subsets is not None and max_cached_subsets < 1:
            raise ExperimentError(
                f"max_cached_subsets must be >= 1 or None, got {max_cached_subsets}"
            )
        stopwatch = Stopwatch()
        if isinstance(graph_or_problem, TPPProblem):
            problem = graph_or_problem
        else:
            if targets is None:
                raise ExperimentError(
                    "ProtectionService needs the target links when built from a graph"
                )
            problem = TPPProblem(graph_or_problem, targets, motif=motif, constant=constant)
        self._problem = problem  # reprolint: guarded-by(_lock)
        self._build_workers = build_workers
        #: the *requested* kernel selector (may be "auto"); the resolved
        #: choice lives on the prototype state and is surfaced by `kernel`
        self._kernel_request = kernel
        # reprolint: guarded-by(_lock)
        self._index: TargetSubgraphIndex = problem.build_index(
            build_workers=build_workers
        )
        self._prototype = self._index.new_state(kernel=kernel)  # reprolint: guarded-by(_lock)
        self._build_seconds = stopwatch.elapsed()  # reprolint: guarded-by(_lock)
        self._set_prototype: Optional[SetCoverageState] = None  # reprolint: guarded-by(_lock)
        # reprolint: guarded-by(_lock)
        self._subsessions: "OrderedDict[Tuple[Edge, ...], ProtectionService]" = (
            OrderedDict()
        )
        self._subset_builders: Dict[Tuple[Edge, ...], threading.Lock] = {}  # reprolint: guarded-by(_lock)
        self._max_cached_subsets = max_cached_subsets
        self._lock = threading.Lock()
        self._queries_served = 0  # reprolint: guarded-by(_lock)
        #: Serialises writers: one delta application at a time.  Readers
        #: never take it — they capture a consistent state under ``_lock``
        #: and keep serving the pre-delta arrays (copy-on-write swap).
        self._delta_lock = threading.Lock()
        self._deltas_applied = 0  # reprolint: guarded-by(_lock)
        #: Where the session's index came from: "built" (enumerated in this
        #: process) or "snapshot" (restored by :meth:`from_snapshot`).
        self._index_source = "built"  # reprolint: guarded-by(_lock)

    @classmethod
    def from_snapshot(
        cls,
        path: Union[str, Path],
        allow_pickle: bool = True,
        max_cached_subsets: Optional[int] = 32,
        build_workers: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> "ProtectionService":
        """Cold-start a session from a snapshot file — no enumeration.

        Restores the problem and its built index via
        :meth:`TPPProblem.from_snapshot
        <repro.core.model.TPPProblem.from_snapshot>` and opens the session
        on it; the one-time cost drops from motif enumeration to file I/O
        plus array memcpys (the ``bench_snapshot`` benchmark gates this at
        >= 5x faster).  Results served by such a session record
        ``index_source: "snapshot"`` in their ``extra["service"]``
        metadata; traces are byte-identical to a freshly built session's.

        Parameters
        ----------
        path:
            A file written by :meth:`TPPProblem.save_index
            <repro.core.model.TPPProblem.save_index>` or the
            ``repro-tpp build-index`` command.
        allow_pickle:
            Refuse snapshots with pickled sections (custom motifs, exotic
            node labels) when ``False``.
        max_cached_subsets:
            As in the constructor (subset sub-sessions still enumerate —
            they cover a different instance set than the snapshot).
        build_workers:
            As in the constructor; only subset sub-session builds can
            trigger it, the snapshot itself never re-enumerates.
        kernel:
            As in the constructor (the snapshot stores arrays, not a
            kernel choice; the restored session resolves its own).

        Raises
        ------
        repro.exceptions.SnapshotFormatError
            If the file is unreadable, truncated, corrupted or from an
            incompatible format version / platform.
        """
        problem = TPPProblem.from_snapshot(path, allow_pickle=allow_pickle)
        service = cls(
            problem,
            max_cached_subsets=max_cached_subsets,
            build_workers=build_workers,
            kernel=kernel,
        )
        service._index_source = "snapshot"
        return service

    @classmethod
    def from_session(
        cls,
        path: Union[str, Path],
        allow_pickle: bool = True,
        max_cached_subsets: Optional[int] = 32,
        build_workers: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> "ProtectionService":
        """Cold-start a session *bundle* written by :meth:`save_session`.

        Like :meth:`from_snapshot`, but the bundle also carries the subset
        sub-session indexes that were cached when it was saved, so a
        restored replica answers subset queries without re-enumeration
        (their first query reports ``reused_index: true``).  Delegates to
        :func:`repro.persistence.load_session`.
        """
        from repro.persistence.session import load_session

        return load_session(
            path,
            allow_pickle=allow_pickle,
            max_cached_subsets=max_cached_subsets,
            build_workers=build_workers,
            kernel=kernel,
        )

    def save_session(self, path: Union[str, Path]) -> Path:
        """Write this session — parent index plus cached subset sub-session
        indexes — as a ``.tppsess`` bundle (see
        :func:`repro.persistence.save_session`)."""
        from repro.persistence.session import save_session

        return save_session(path, self)

    @classmethod
    def for_filtered_targets(
        cls,
        graph: Graph,
        all_targets: Sequence[Edge],
        kept: Sequence[Edge],
        motif: Union[str, MotifPattern] = "triangle",
        constant: Optional[int] = None,
        index: Optional[TargetSubgraphIndex] = None,
        max_cached_subsets: Optional[int] = 32,
        build_workers: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> "ProtectionService":
        """Open a session on ``kept`` ⊆ ``all_targets`` with phase-1 semantics.

        This is the one place target filtering happens, and it happens
        *before* enumeration: the non-kept targets are removed from the
        graph first, so the session's phase-1 graph equals the phase-1
        graph of the full target set (all of ``T`` stays hidden — the
        paper removes every sensitive link in phase 1) and the session
        never enumerates a non-kept target.  Both target-filtering paths —
        subset sub-sessions (:meth:`solve` with ``request.targets``) and
        the shards of
        :class:`~repro.service.sharding.ShardedProtectionService` — build
        through here, which is what makes them trace-identical on the same
        target set (pinned by the sharding differential suite).

        ``kept`` is put in the library-wide
        :func:`~repro.graphs.graph.edge_sort_key` order (duplicates raise
        :class:`~repro.exceptions.ExperimentError`).  ``constant`` and a
        pre-built ``index`` (already enumerated for exactly the sorted
        kept targets) are forwarded to the
        :class:`~repro.core.model.TPPProblem`; an adopted index means the
        construction does no enumeration at all.
        """
        kept_targets = tuple(
            sorted((canonical_edge(*target) for target in kept), key=edge_sort_key)
        )
        kept_set = set(kept_targets)
        if len(kept_set) != len(kept_targets):
            raise ExperimentError(
                f"kept targets contain duplicate links: {kept_targets!r}"
            )
        rest = [
            edge
            for edge in (canonical_edge(*target) for target in all_targets)
            if edge not in kept_set
        ]
        problem = TPPProblem(
            graph.without_edges(rest),
            kept_targets,
            motif=motif,
            constant=constant,
            index=index,
        )
        return cls(
            problem,
            max_cached_subsets=max_cached_subsets,
            build_workers=build_workers,
            kernel=kernel,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def problem(self) -> TPPProblem:
        """The TPP instance this session serves."""
        return self._problem

    @property
    def index(self) -> TargetSubgraphIndex:
        """The shared immutable target-subgraph index."""
        return self._index

    @property
    def targets(self) -> Tuple[Edge, ...]:
        """The session's target links, in problem order."""
        return self._problem.targets

    @property
    def build_seconds(self) -> float:
        """Wall-clock cost of the one-time build (index + prototype)."""
        return self._build_seconds

    @property
    def build_workers(self) -> Optional[int]:
        """The pass-1 fan-out the session was configured with (None = serial)."""
        return self._build_workers

    @property
    def kernel(self) -> str:
        """The resolved coverage-state kernel: ``"native"`` or ``"numpy"``.

        Resolution happens when the pristine prototype is built (an
        ``"auto"`` request becomes whichever side loaded); the value is
        echoed as ``kernel`` in every result's ``extra["service"]``.
        """
        with self._lock:
            return self._prototype.kernel

    @property
    def queries_served(self) -> int:
        """How many :meth:`solve` calls this session has answered."""
        return self._queries_served

    @property
    def index_source(self) -> str:
        """``"built"`` (enumerated here), ``"snapshot"`` (cold-started) or
        ``"delta"`` (incrementally updated by :meth:`apply_delta`).

        Echoed as ``index_source`` in every result's ``extra["service"]``
        metadata, so downstream consumers can tell a cold-started answer
        from a freshly enumerated one.
        """
        return self._index_source

    def pristine_similarity(self) -> int:
        """Return ``s(∅, T)`` as seen by the untouched prototype state."""
        return self._prototype.total_similarity()

    def pristine_deletions(self) -> Tuple[Edge, ...]:
        """Return the prototype's deletion log (must always be empty)."""
        return self._prototype.deleted_edges

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, request: ProtectionRequest) -> ProtectionResult:
        """Answer one protection query from the shared index.

        The method runner executes on a fresh engine: for the coverage
        engines that engine wraps a ``copy()`` of the session's pristine
        state (no enumeration, no counter rebuild); ``"recount"`` rebuilds
        from the working graph by design — it *is* the paper's naive
        baseline (the random baselines ignore the engine choice and are
        always served from the kernel).  The returned result carries service
        metadata under ``extra["service"]``: the request echo, whether the
        shared index was reused (false for recount queries and for the first
        query on a fresh target subset, which enumerates its sub-session),
        where the answering session's index came from (``index_source``:
        ``"built"`` or ``"snapshot"``), and the build/solve timing split.
        """
        request.validate()
        result = self._answer(request)
        # the single accounting site: every answered query — full-target,
        # subset (which also bumps its sub-session's own counter), any
        # engine — lands here exactly once, and a failed query (exception
        # above) is never counted.  The HTTP stats endpoint reads this.
        with self._lock:
            self._queries_served += 1
        return result

    def _answer(self, request: ProtectionRequest) -> ProtectionResult:
        """Compute one (validated) query's result without touching counters."""
        # one consistent view of the session: a concurrent apply_delta swaps
        # problem/index/prototype together under the same lock, so a query
        # runs either entirely before or entirely after a delta — never on a
        # mixed state
        with self._lock:
            problem = self._problem
            prototype = self._prototype
            index = self._index
            index_source = self._index_source
            build_seconds = self._build_seconds
            deltas_applied = self._deltas_applied
        if request.targets is not None and set(request.targets) != set(
            problem.targets
        ):
            session, was_cached = self._subset_session(request.targets)
            result = session.solve(request.with_overrides(targets=None))
            # the sub-session answered a full-target query; restore the
            # caller's view: echo the original (subset) request and only
            # report index reuse when the sub-session pre-existed
            metadata = dict(result.extra["service"])
            metadata["request"] = request.to_dict()
            metadata["reused_index"] = metadata["reused_index"] and was_cached
            return replace(result, extra={**result.extra, "service": metadata})

        spec = get_method(request.method)
        # the baselines only need a coverage state to trace deletions on;
        # building the (deliberately expensive) recount engine for them
        # would be pure wasted work, so they are served from the kernel
        engine_name = (
            request.engine
            if spec.is_greedy or request.engine != "recount"
            else "coverage"
        )
        stopwatch = Stopwatch()
        # recount queries receive the engine *name* so the runner constructs
        # the RecountEngine inside its own timed region: the initial full
        # motif recount is part of the naive algorithm's cost profile, and
        # result.runtime_seconds must keep charging it (it is what the
        # paper's Fig. 5/6 runtime comparison measures)
        engine = (
            engine_name
            if engine_name == "recount"
            else self._make_engine(engine_name, problem, prototype, index)
        )
        result = spec.runner(
            problem, request.budget, engine, request.seed, **request.options()
        )
        solve_seconds = stopwatch.elapsed()
        metadata = {
            "request": request.to_dict(),
            "reused_index": engine_name != "recount",
            "index_source": index_source,
            "build_seconds": round(build_seconds, 6),
            "solve_seconds": round(solve_seconds, 6),
            "deltas_applied": deltas_applied,
            # the session's resolved hot-loop kernel; only "coverage"
            # queries actually run on it (set/recount engines have their
            # own loops), but the echo is per-session on purpose — it
            # answers "what would this session serve the kernel path with"
            "kernel": prototype.kernel,
        }
        if request.label is not None:
            metadata["label"] = request.label
        return replace(result, extra={**result.extra, "service": metadata})

    def solve_many(
        self,
        requests: Sequence[ProtectionRequest],
        workers: Optional[int] = None,
        mode: str = "thread",
    ) -> List[ProtectionResult]:
        """Answer a batch of queries, optionally fanned out over workers.

        Parameters
        ----------
        requests:
            The queries; results come back in the same order.
        workers:
            ``None``/``0``/``1`` solves serially; ``N > 1`` fans out.
        mode:
            ``"thread"`` shares the in-process index (zero setup, best when
            queries spend time in array/C code or the batch is small);
            ``"process"`` pickles the problem — with its built flat-array
            index — *once per worker* and then streams the tiny request
            dataclasses, sidestepping the GIL for CPU-bound sweeps.  Custom
            methods must be registered at import time of their module to be
            visible inside spawned workers.

        Every request runs on its own state copy, so the fan-out cannot
        change any result: serial, threaded and process execution produce
        byte-identical protector traces (pinned by the regression tests).
        """
        if mode not in _MODES:
            raise ExperimentError(f"mode must be one of {_MODES}, got {mode!r}")
        requests = list(requests)
        for request in requests:
            request.validate()
        if workers is None or workers <= 1 or len(requests) <= 1:
            return [self.solve(request) for request in requests]
        if mode == "thread":
            with ThreadPoolExecutor(max_workers=workers) as executor:
                return list(executor.map(self.solve, requests))
        with self._lock:
            problem = self._problem
            index_source = self._index_source
            deltas_applied = self._deltas_applied
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_process_worker_init,
            initargs=(problem, index_source, deltas_applied, self._kernel_request),
        ) as executor:
            return list(executor.map(_process_worker_solve, requests))

    def evaluate_trace(
        self,
        protectors: Sequence[Edge],
        targets: Optional[Sequence[Edge]] = None,
    ) -> Tuple[int, ...]:
        """Replay a protector sequence; return its exact similarity trace.

        Element ``i`` is ``s(P_i, T)`` — the similarity after deleting the
        first ``i`` protectors — so the tuple is one longer than
        ``protectors`` and element 0 is the initial similarity.  The replay
        runs on a copy of the pristine coverage state: protectors that
        break no instance of these targets (e.g. another shard's picks in
        a scatter-gather merge, or a baseline's useless deletions) are
        legal and leave the running similarity unchanged.

        ``targets`` restricts the trace to a target subset exactly as
        :meth:`solve` does — the replay then runs on that subset's
        sub-session (built through :meth:`for_filtered_targets`, cached in
        the LRU).  This is the gather half of the sharded merge: every
        shard replays the *full* merged protector sequence on its own
        piece, and the element-wise sum of the per-shard traces is the
        whole request's trace.
        """
        if targets is not None:
            canonical = tuple(canonical_edge(*target) for target in targets)
            if set(canonical) != set(self._problem.targets):
                session, _ = self._subset_session(canonical)
                return session.evaluate_trace(protectors)
        with self._lock:
            prototype = self._prototype
        state = prototype.copy()
        trace = [state.total_similarity()]
        for protector in protectors:
            state.delete_edge(canonical_edge(*protector))
            trace.append(state.total_similarity())
        return tuple(trace)

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def apply_delta(
        self, delta: "EdgeDelta", constant: Optional[int] = None
    ) -> "DeltaOutcome":
        """Apply a graph update to the live session without a rebuild.

        ``delta`` is an :class:`~repro.motifs.updates.EdgeDelta` (or a
        :class:`~repro.persistence.DeltaSnapshot`, whose parent content hash
        is verified against the live index first — a mismatch raises
        :class:`~repro.exceptions.SnapshotMismatchError` and leaves the
        session untouched).  The index is maintained incrementally —
        bit-identical to a from-scratch rebuild on the updated graph (see
        :mod:`repro.motifs.updates`) — and swapped in copy-on-write:
        queries already in flight finish on the pre-delta state, queries
        started after this returns see the updated graph, and nothing is
        ever served from a mixed state.  Subset sub-sessions are kept
        unless their targets' instance sets changed (the delta outcome
        names them), so unaffected subset caches survive the update.

        Returns the :class:`~repro.motifs.updates.DeltaOutcome`;
        ``constant`` follows :meth:`TPPProblem.apply_delta
        <repro.core.model.TPPProblem.apply_delta>` (kept, auto-bumped when
        insertions raise the initial similarity above it).

        Thread-safe: concurrent writers serialise on an internal lock;
        concurrent readers never block on a delta application.
        """
        from repro.motifs.updates import EdgeDelta

        with self._delta_lock:
            if not isinstance(delta, EdgeDelta):
                delta_for = getattr(delta, "delta_for", None)
                if delta_for is None:
                    raise ExperimentError(
                        "apply_delta expects an EdgeDelta or a DeltaSnapshot, "
                        f"got {type(delta).__name__}"
                    )
                delta = delta_for(self._index)
            stopwatch = Stopwatch()
            new_problem, outcome = self._problem.apply_delta(
                delta, constant=constant
            )
            self._install_delta_result(new_problem, outcome, stopwatch.elapsed())
        return outcome

    def _install_delta_result(
        self,
        new_problem: TPPProblem,
        outcome: "DeltaOutcome",
        build_seconds: float,
    ) -> None:
        """Swap an already-computed delta result into the live session.

        The copy-on-write half of :meth:`apply_delta`, split out so a
        sharded session can fan the (fallible) incremental maintenance out
        over all shards *first* and only then install every shard's result
        — making a multi-shard delta atomic: either every shard swaps or
        none does.  Subset sub-sessions whose targets' instance sets
        changed are evicted, the rest survive.
        """
        new_prototype = outcome.index.new_state(kernel=self._kernel_request)
        changed = set(outcome.changed_targets)
        with self._lock:
            self._problem = new_problem
            self._index = outcome.index
            self._prototype = new_prototype
            self._set_prototype = None
            self._build_seconds = build_seconds
            self._index_source = "delta"
            self._deltas_applied += 1
            if changed:
                stale = [
                    subset
                    for subset in self._subsessions
                    if changed.intersection(subset)
                ]
                for subset in stale:
                    del self._subsessions[subset]

    @property
    def deltas_applied(self) -> int:
        """How many edge deltas this session has applied (0 = pristine)."""
        with self._lock:
            return self._deltas_applied

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _make_engine(
        self,
        engine: str,
        problem: TPPProblem,
        prototype: Union[CoverageState, SetCoverageState],
        index: TargetSubgraphIndex,
    ) -> MarginalGainEngine:
        if engine == "coverage":
            return CoverageEngine(problem, state=prototype.copy())
        if engine == "coverage-set":
            with self._lock:
                set_prototype = self._set_prototype
                if set_prototype is None:
                    set_prototype = index.new_set_state()
                    # cache only while the session still serves this index: a
                    # delta swap in the meantime cleared the slot for *its*
                    # index, and this (now stale) prototype must not fill it
                    if self._index is index:
                        self._set_prototype = set_prototype
            return CoverageEngine(problem, state=set_prototype.copy())
        # "recount" deliberately has no branch here: solve() passes that
        # engine *name* through so the runner builds the RecountEngine inside
        # its own timed region (the initial full recount must be charged to
        # runtime_seconds — it is part of the naive baseline's cost)
        raise ExperimentError(
            f"unexpected engine {engine!r}: recount engines are built by the "
            "method runner, not the session"
        )

    def _subset_session(
        self, targets: Tuple[Edge, ...]
    ) -> Tuple["ProtectionService", bool]:
        """Return ``(sub-session, was already cached)`` for a subset query.

        A subset changes which instances count, so it needs its own
        enumeration — built on first use, then shared by every later query
        on the same subset.  Two invariants keep subset semantics aligned
        with the session's:

        * The sub-problem is built on the session's graph with the
          *non-subset* targets already removed, so its phase-1 graph equals
          the parent's — all of ``T`` stays hidden (the paper removes every
          sensitive link in phase 1), and a subset query's released graph
          never leaks the targets outside the subset.
        * Because the sub-problem counts a subset of the parent's instances
          on the same phase-1 graph, its initial similarity is <= the
          parent's <= the parent's constant ``C``, so the sub-session can
          always inherit ``C`` and score ``Δ_t^p`` exactly as the session
          was configured to.

        Subset order is not significant: the sub-problem's targets are put
        in the library-wide :func:`edge_sort_key` order, so two requests
        naming the same subset in different orders share one cached
        sub-session and return identical protector traces.

        The cache is bounded (``max_cached_subsets``, LRU eviction), and a
        per-subset build lock ensures concurrent first queries on the same
        subset enumerate it once — the waiters reuse the winner's session.
        """
        subset = tuple(
            sorted((canonical_edge(*target) for target in targets), key=edge_sort_key)
        )
        subset_set = set(subset)
        if len(subset_set) != len(subset):
            raise ExperimentError(
                f"request targets contain duplicate links: {subset!r}"
            )
        known = set(self._problem.targets)
        unknown = [target for target in subset if target not in known]
        if unknown:
            raise ExperimentError(
                f"request targets {unknown!r} are not targets of this session"
            )
        session = self._cached_subsession(subset)
        if session is not None:
            return session, True
        with self._lock:
            builder = self._subset_builders.setdefault(subset, threading.Lock())
        with builder:
            try:
                # a concurrent first query may have finished the enumeration
                # while we waited on the build lock — check again before paying
                session = self._cached_subsession(subset)
                if session is not None:
                    return session, True
                session = ProtectionService.for_filtered_targets(
                    self._problem.graph,
                    self._problem.targets,
                    subset,
                    motif=self._problem.motif,
                    constant=self._problem.constant,
                    max_cached_subsets=self._max_cached_subsets,
                    build_workers=self._build_workers,
                    kernel=self._kernel_request,
                )
                with self._lock:
                    self._subsessions[subset] = session
                    while (
                        self._max_cached_subsets is not None
                        and len(self._subsessions) > self._max_cached_subsets
                    ):
                        self._subsessions.popitem(last=False)
            finally:
                # only remove our own registration: after an LRU eviction a
                # later thread may already be rebuilding this subset under a
                # fresh builder lock, which a stale waiter must not pop
                with self._lock:
                    if self._subset_builders.get(subset) is builder:
                        del self._subset_builders[subset]
        return session, False

    def _cached_subsession(
        self, subset: Tuple[Edge, ...]
    ) -> Optional["ProtectionService"]:
        """Return the cached sub-session for ``subset``, refreshing its LRU slot."""
        with self._lock:
            session = self._subsessions.get(subset)
            if session is not None:
                self._subsessions.move_to_end(subset)
            return session

    def cached_subset_sessions(
        self,
    ) -> "OrderedDict[Tuple[Edge, ...], ProtectionService]":
        """A least-recently-used-first copy of the subset sub-session cache.

        The returned mapping is a point-in-time copy — iterating it does
        not refresh LRU slots or block concurrent queries.  Session bundles
        (:meth:`save_session`) persist these sub-sessions so a restored
        replica serves subset queries without re-enumeration.
        """
        with self._lock:
            return OrderedDict(self._subsessions)

    def _adopt_subsession(self, session: "ProtectionService") -> None:
        """Wire a restored sub-session into the subset cache.

        Used by the session-bundle restore path
        (:func:`repro.persistence.load_session`): the sub-session arrives
        with its index already built (from its snapshot section), so later
        subset queries on its targets reuse it instead of enumerating.  The
        cache key is recomputed with the library-wide ordering and the LRU
        bound is enforced exactly as for a built sub-session.
        """
        subset = tuple(
            sorted(
                (canonical_edge(*target) for target in session.targets),
                key=edge_sort_key,
            )
        )
        known = set(self._problem.targets)
        unknown = [target for target in subset if target not in known]
        if unknown:
            raise ExperimentError(
                f"sub-session targets {unknown!r} are not targets of this session"
            )
        with self._lock:
            self._subsessions[subset] = session
            while (
                self._max_cached_subsets is not None
                and len(self._subsessions) > self._max_cached_subsets
            ):
                self._subsessions.popitem(last=False)


# ----------------------------------------------------------------------
# process-mode plumbing: one session per worker, rebuilt from the problem
# exactly once per worker process.  The problem pickles with its built
# flat-array index, so the worker's build_index() returns the cached arrays
# and the prototype state is a memcpy of the index's pristine counters —
# nothing is enumerated or re-derived inside a worker.
# ----------------------------------------------------------------------
_WORKER_SERVICE: Optional[ProtectionService] = None


def _process_worker_init(
    problem: TPPProblem,
    index_source: str = "built",
    deltas_applied: int = 0,
    kernel: Optional[str] = None,
) -> None:
    global _WORKER_SERVICE
    _WORKER_SERVICE = ProtectionService(problem, kernel=kernel)
    # the worker session serves the parent's (pickled, already-built) index,
    # so results must echo the parent's provenance tags — a snapshot-restored
    # session stays "snapshot" (and a delta-updated one keeps its update
    # count) across the process fan-out
    _WORKER_SERVICE._index_source = index_source
    _WORKER_SERVICE._deltas_applied = deltas_applied


def _process_worker_solve(request: ProtectionRequest) -> ProtectionResult:
    assert _WORKER_SERVICE is not None, "worker initializer did not run"
    return _WORKER_SERVICE.solve(request)
