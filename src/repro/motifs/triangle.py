"""Triangle motif (Fig. 1a of the paper).

A hidden target ``t = (u, v)`` participates in one Triangle instance per
common neighbor ``w`` of its endpoints: re-inserting ``t`` would close the
triangle ``u - w - v``.  The instance's protector edges are ``(u, w)`` and
``(w, v)``; the similarity ``s(t)`` is the common-neighbor count, which is
the basis of every common-neighbor style link prediction.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.graphs.graph import Edge, Graph
from repro.graphs.indexed import IndexedGraph
from repro.motifs.base import MotifInstance, MotifPattern, register_motif

__all__ = ["TriangleMotif"]


@register_motif
class TriangleMotif(MotifPattern):
    """Two-length paths ``u - w - v`` completing the target into a triangle."""

    name = "triangle"

    # the common neighbor w is adjacent to both endpoints of the target
    delta_radius = 1
    needs_graph = False  # enumerate_instance_edge_ids walks the CSR only

    def enumerate_instances(self, graph: Graph, target: Edge) -> Iterator[MotifInstance]:
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        for w in graph.common_neighbors(u, v):
            if w == u or w == v:
                continue
            yield frozenset((self._canonical(u, w), self._canonical(w, v)))

    def enumerate_instance_edge_ids(
        self, indexed: IndexedGraph, graph: Graph, target: Edge
    ) -> Iterator[Sequence[int]]:
        u, v = target
        if not (indexed.has_node(u) and indexed.has_node(v)):
            return
        u_id, v_id = indexed.node_id(u), indexed.node_id(v)
        # the aligned incident-edge ids of each common neighbor are exactly
        # the protector edges (u, w) and (w, v)
        for _, edge_uw, edge_wv in indexed.common_neighbor_edges(u_id, v_id):
            yield (edge_uw, edge_wv)
