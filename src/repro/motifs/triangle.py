"""Triangle motif (Fig. 1a of the paper).

A hidden target ``t = (u, v)`` participates in one Triangle instance per
common neighbor ``w`` of its endpoints: re-inserting ``t`` would close the
triangle ``u - w - v``.  The instance's protector edges are ``(u, w)`` and
``(w, v)``; the similarity ``s(t)`` is the common-neighbor count, which is
the basis of every common-neighbor style link prediction.
"""

from __future__ import annotations

from typing import Iterator

from repro.graphs.graph import Edge, Graph
from repro.motifs.base import MotifInstance, MotifPattern, register_motif

__all__ = ["TriangleMotif"]


@register_motif
class TriangleMotif(MotifPattern):
    """Two-length paths ``u - w - v`` completing the target into a triangle."""

    name = "triangle"

    def enumerate_instances(self, graph: Graph, target: Edge) -> Iterator[MotifInstance]:
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        for w in graph.common_neighbors(u, v):
            if w == u or w == v:
                continue
            yield frozenset((self._canonical(u, w), self._canonical(w, v)))
