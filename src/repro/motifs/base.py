"""Motif (subgraph pattern) abstraction and registry.

The TPP threat model assumes an adversary that predicts a hidden target link
``t = (u, v)`` from the number of *target subgraphs*: occurrences of a motif
(Triangle, Rectangle, RecTri, ...) that would be completed by re-inserting
``t``.  A :class:`MotifPattern` knows how to enumerate those occurrences in a
graph from which the targets have already been removed (phase 1 of TPP).

Each enumerated instance is returned as the frozen set of *protector edges*
that realise it — the edges whose deletion breaks the instance.  The target
link itself is never part of an instance (it is already absent from the
phase-1 graph).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Type, Union

from repro.exceptions import UnknownMotifError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.indexed import IndexedGraph

__all__ = [
    "MotifPattern",
    "MotifInstance",
    "register_motif",
    "get_motif",
    "available_motifs",
    "coerce_motif",
]

#: A motif instance: the frozen set of (canonical) protector edges realising it.
MotifInstance = FrozenSet[Edge]


class MotifPattern(ABC):
    """A subgraph pattern used by the adversary's link prediction.

    Subclasses implement :meth:`enumerate_instances`; everything else
    (counting, candidate edges) derives from it.
    """

    #: Registry key; subclasses must override.
    name: str = "abstract"

    #: Locality bound for incremental delta application (see
    #: :mod:`repro.motifs.updates`): every node of every instance of a
    #: target ``(u, v)`` lies within this many phase-1-graph hops of ``u``
    #: or ``v``.  Edge insertions then only re-enumerate targets with an
    #: endpoint inside the radius ball around the changed edges.  ``None``
    #: (the default) means "unknown": inserts conservatively re-enumerate
    #: every target, while deletions stay incremental either way (destroyed
    #: instances are read off the index, no enumeration at all).
    delta_radius: Optional[int] = None

    #: Whether :meth:`enumerate_instance_edge_ids` reads its ``graph``
    #: argument.  ``True`` (the default, and true of the inherited tuple
    #: fallback) makes the delta path materialise a ``Graph`` view of the
    #: updated snapshot before re-enumerating; the built-in motifs walk the
    #: CSR only and opt out, which keeps small-delta application free of the
    #: O(n + m) adjacency rebuild.
    needs_graph: bool = True

    @abstractmethod
    def enumerate_instances(self, graph: Graph, target: Edge) -> Iterator[MotifInstance]:
        """Yield every instance of the motif around ``target`` in ``graph``.

        Parameters
        ----------
        graph:
            The phase-1 graph (all target links already removed).
        target:
            The hidden link ``(u, v)``; it must not be an edge of ``graph``.

        Yields
        ------
        frozenset of edges
            The protector edges of one motif occurrence, each in canonical
            form (see :func:`repro.graphs.canonical_edge`).
        """

    def enumerate_instance_edge_ids(
        self, indexed: IndexedGraph, graph: Graph, target: Edge
    ) -> Iterator[Sequence[int]]:
        """Yield every instance as a sequence of dense edge ids.

        This is the enumeration entry point of the coverage kernel
        (:class:`~repro.motifs.enumeration.TargetSubgraphIndex`): ``indexed``
        is the frozen snapshot of ``graph`` and the yielded ids refer to its
        edge numbering.  The ids of one instance must be distinct (each edge
        participates once per occurrence).

        The built-in motifs override this with direct walks over the
        :meth:`~repro.graphs.indexed.IndexedGraph.csr` rows — integer merges
        and binary searches instead of hashing node tuples.  The default
        translates :meth:`enumerate_instances` at the boundary, so custom
        motifs only ever need the tuple-based method.
        """
        edge_id = indexed.edge_id
        for instance in self.enumerate_instances(graph, target):
            yield [edge_id(u, v) for u, v in instance]

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    def count(self, graph: Graph, target: Edge) -> int:
        """Return the similarity ``s(t)``: number of instances around ``target``."""
        return sum(1 for _ in self.enumerate_instances(graph, target))

    def instances(self, graph: Graph, target: Edge) -> List[MotifInstance]:
        """Return all instances around ``target`` as a list."""
        return list(self.enumerate_instances(graph, target))

    def protector_edges(self, graph: Graph, target: Edge) -> FrozenSet[Edge]:
        """Return the union of edges participating in any instance of ``target``."""
        edges = set()
        for instance in self.enumerate_instances(graph, target):
            edges |= instance
        return frozenset(edges)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    @staticmethod
    def _canonical(u, v) -> Edge:
        """Shortcut to the canonical edge representation."""
        return canonical_edge(u, v)


_REGISTRY: Dict[str, Type[MotifPattern]] = {}


def register_motif(cls: Type[MotifPattern]) -> Type[MotifPattern]:
    """Class decorator adding a :class:`MotifPattern` subclass to the registry."""
    if not issubclass(cls, MotifPattern):
        raise TypeError(f"{cls!r} is not a MotifPattern subclass")
    _REGISTRY[cls.name.lower()] = cls
    return cls


def available_motifs() -> Tuple[str, ...]:
    """Return the sorted names of all registered motifs."""
    return tuple(sorted(_REGISTRY))


def get_motif(name: str) -> MotifPattern:
    """Return a fresh instance of the motif registered under ``name``.

    Raises
    ------
    UnknownMotifError
        If no motif with that name is registered.
    """
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise UnknownMotifError(name, _REGISTRY.keys()) from None
    return cls()


def coerce_motif(motif: Union[str, MotifPattern]) -> MotifPattern:
    """Return ``motif`` itself if it is a pattern, else look up its name."""
    if isinstance(motif, MotifPattern):
        return motif
    return get_motif(motif)
