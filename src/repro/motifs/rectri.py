"""RecTri motif (Fig. 1c of the paper).

The RecTri pattern combines a 2-length path and a 3-length path between the
endpoints of the hidden target ``t = (u, v)``, where the 3-length path shares
its first intermediate node with the 2-length path.  Concretely an instance
is a pair ``(w, b)`` such that

* ``w`` is a common neighbor of ``u`` and ``v`` (the 2-path ``u - w - v``),
* ``b`` extends it into a 3-path through ``w`` to the *other* endpoint.

Because the target link is undirected, both orientations count: the 3-path
may run ``u - w - b - v`` (``b`` adjacent to ``w`` and ``v``) or
``v - w - b - u`` (``b`` adjacent to ``w`` and ``u``).  The protector edges of
an instance are the union of the two paths' edges (four edges).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.graphs.graph import Edge, Graph
from repro.graphs.indexed import IndexedGraph
from repro.motifs.base import MotifInstance, MotifPattern, register_motif

__all__ = ["RecTriMotif"]


@register_motif
class RecTriMotif(MotifPattern):
    """A triangle-closing 2-path plus a 3-path sharing its intermediate node."""

    name = "rectri"

    # every instance node is a neighbor of one of the target endpoints
    delta_radius = 1
    needs_graph = False  # enumerate_instance_edge_ids walks the CSR only

    def enumerate_instances(self, graph: Graph, target: Edge) -> Iterator[MotifInstance]:
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        neighbors_u = graph.neighbors(u)
        neighbors_v = graph.neighbors(v)
        for w in graph.common_neighbors(u, v):
            if w == u or w == v:
                continue
            edge_uw = self._canonical(u, w)
            edge_wv = self._canonical(w, v)
            for b in graph.neighbors(w):
                if b == u or b == v or b == w:
                    continue
                # orientation u - w - b - v (b adjacent to v)
                if b in neighbors_v:
                    yield frozenset(
                        (edge_uw, edge_wv, self._canonical(w, b), self._canonical(b, v))
                    )
                # orientation v - w - b - u (b adjacent to u)
                if b in neighbors_u:
                    yield frozenset(
                        (edge_uw, edge_wv, self._canonical(w, b), self._canonical(b, u))
                    )

    def enumerate_instance_edge_ids(
        self, indexed: IndexedGraph, graph: Graph, target: Edge
    ) -> Iterator[Sequence[int]]:
        u, v = target
        if not (indexed.has_node(u) and indexed.has_node(v)):
            return
        indptr, neighbors, incident = indexed.csr()
        u_id, v_id = indexed.node_id(u), indexed.node_id(v)
        u_row = {
            neighbors[i]: incident[i]
            for i in range(indptr[u_id], indptr[u_id + 1])
        }
        v_row = {
            neighbors[j]: incident[j]
            for j in range(indptr[v_id], indptr[v_id + 1])
        }
        for w, edge_uw, edge_wv in indexed.common_neighbor_edges(u_id, v_id):
            for k in range(indptr[w], indptr[w + 1]):
                b = neighbors[k]
                if b == u_id or b == v_id:
                    continue
                edge_wb = incident[k]
                # orientation u - w - b - v (b adjacent to v)
                edge_bv = v_row.get(b)
                if edge_bv is not None:
                    yield (edge_uw, edge_wv, edge_wb, edge_bv)
                # orientation v - w - b - u (b adjacent to u)
                edge_bu = u_row.get(b)
                if edge_bu is not None:
                    yield (edge_uw, edge_wv, edge_wb, edge_bu)
