"""The mutable coverage states layered on a :class:`TargetSubgraphIndex`.

Split out of :mod:`repro.motifs.enumeration` so the kernel dispatch is
explicit: :class:`CoverageState` owns the flat live counters (alive
bitmask, per-edge gains, per-(edge, target) counter matrix) and runs its
three hot loops — the kill walk of :meth:`CoverageState.delete_edge`,
the heap validation of :meth:`CoverageState.top_gain_edge`, and the
per-target pair validation behind
:meth:`CoverageState.best_scored_pair` — through one of two kernels:

``numpy``
    The pure numpy/memoryview implementation (the executable reference,
    and the automatic fallback on installs without a C toolchain).
``native``
    The compiled C implementation from :mod:`repro._native`, operating
    in place on the *same* flat buffers.  Observably **bit-identical**
    to the numpy kernel: same protectors, same traces, same
    ``edge_sort_key`` tie-breaks.  Heaps are (key, id) pairs under the
    same total order heapq applies to its tuples, and every pair is
    distinct, so the validated pop sequence depends only on heap
    contents — never on the internal array layout.

The selector is resolved at construction (``kernel="auto"`` prefers
native when loadable; ``REPRO_NATIVE=0`` forces the fallback; an
explicit ``kernel="native"`` raises
:class:`~repro.exceptions.NativeKernelError` when unsatisfiable) and the
differential property tests pin both kernels against each other and
against :class:`SetCoverageState`, the original hash-set formulation.

Native states ``copy()`` and pickle like numpy ones: the ctypes handle,
cached buffer pointers and native heaps are process-local runtime, so
``__getstate__`` drops them and ``__setstate__`` re-resolves — a worker
process without the toolchain transparently degrades to the numpy
kernel (heaps are pure derived caches; rebuilding them lazily yields
the same validated tops).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro._native import load_kernel, resolve_kernel
from repro.graphs.graph import Edge, canonical_edge
from repro.graphs.indexed import NP_LONG

if TYPE_CHECKING:
    from repro.motifs.enumeration import TargetSubgraphIndex

__all__ = [
    "CoverageState",
    "SetCoverageState",
    "InstanceId",
]

#: Opaque identifier of one enumerated target subgraph.
InstanceId = int

#: Instance-row size below which the numpy kill walk stays element-wise —
#: a few memberships cost less to walk than the fixed setup of the numpy
#: gathers.  (The native kill walk is element-wise at every size.)
_SCALAR_KILL_THRESHOLD = 32

#: Process-local attributes of :class:`CoverageState` that never pickle:
#: memoryviews, the ctypes kernel handle, cached buffer pointers,
#: scratch arrays and the native heap arrays.  ``__setstate__`` rebuilds
#: them all via ``_init_runtime``.
_RUNTIME_ATTRS = (
    "_gain_mv",
    "_et_count_mv",
    "_alive_mv",
    "_alive_by_tidx_mv",
    "_native",
    "_nheap",
    "_npair_heaps",
    "_gain_ptr",
    "_et_indptr_ptr",
    "_et_tidx_ptr",
    "_et_count_ptr",
    "_out_scratch",
    "_out_mv",
    "_out_ptr",
    "_broken_scratch",
    "_broken_mv",
    "_touched_scratch",
    "_touched_mv",
    "_tidx_scratch",
    "_tidx_mv",
    "_tidx_ptr",
    "_npair_keys_tab",
    "_npair_ids_tab",
    "_npair_sizes",
    "_npair_sizes_mv",
    "_npair_keys_tab_ptr",
    "_npair_ids_tab_ptr",
    "_npair_sizes_ptr",
    "_pair_build_scratch",
    "_edge_id_memo",
    "_kill_ctx",
    "_kill_ctx_ptr",
    "_pair_ctx",
    "_pair_ctx_ptr",
)


def _flat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Return ``concatenate([arange(s, s + l) for s, l in zip(starts, lengths)])``
    without a Python loop.

    Every ``lengths[i]`` must be >= 1 (the cumsum trick writes one boundary
    marker per range; zero-length ranges would collide on one position —
    callers filter them out first).  Empty inputs return an empty array.
    """
    if not len(starts):
        return np.empty(0, dtype=NP_LONG)
    total = int(lengths.sum())
    out = np.ones(total, dtype=NP_LONG)
    out[0] = starts[0]
    if len(starts) > 1:
        ends = np.cumsum(lengths[:-1])
        out[ends] = starts[1:] - (starts[:-1] + lengths[:-1]) + 1
    return np.cumsum(out, out=out)


class CoverageState:
    """Array-backed mutable view tracking which target subgraphs are alive.

    Deleting an edge kills every alive instance containing it and eagerly
    decrements the live-gain counter of each sibling edge, so marginal-gain
    queries are O(1) counter reads and :meth:`top_gain_edge` pops an exact
    maximum from a lazily-repaired heap (gains are monotone non-increasing,
    which makes stale heap entries safe to re-validate on pop).

    Parameters
    ----------
    index:
        The immutable :class:`TargetSubgraphIndex` to layer on.
    kernel:
        ``"auto"`` (default, = ``None``) runs the compiled C kernel when
        it is loadable and the numpy kernel otherwise; ``"native"`` and
        ``"numpy"`` force one side (``"native"`` raises
        :class:`~repro.exceptions.NativeKernelError` when no compiler or
        prebuilt artifact is available — unless ``REPRO_NATIVE=0``
        globally forces the fallback).  Both kernels are observably
        bit-identical.
    """

    def __init__(self, index: "TargetSubgraphIndex", kernel: Optional[str] = None) -> None:
        self._index = index
        n_instances = index.number_of_instances()
        self._alive = np.ones(n_instances, dtype=np.uint8)
        self._alive_total = n_instances
        self._alive_by_tidx = np.fromiter(
            (end - start for start, end in index._target_ranges),
            dtype=NP_LONG,
            count=len(index._target_ranges),
        )
        # live-gain counters: gain[edge_id] == alive instances containing it
        # (a pure memcpy of the index's precomputed pristine counters)
        self._gain = index._initial_gain.copy()
        # per-(edge, target) live counters: entry s of the index's counter
        # matrix currently counts the alive instances of target _et_tidx[s]
        # containing the row's edge
        self._et_count = index._et_initial_count.copy()
        self._deleted_edges: List[Edge] = []
        # lazy max-heap of (-gain, edge_id); built on first top-gain query
        self._heap: Optional[List[Tuple[int, int]]] = None
        # per-target lazy max-heaps of (-score key, edge_id) for
        # best_scored_pair, built on first use and keyed to one constant C
        self._pair_heaps: Dict[int, List[Tuple[int, int]]] = {}
        self._pair_constant: Optional[int] = None
        self._kernel = resolve_kernel(kernel)
        self._init_runtime()

    def _init_runtime(self) -> None:
        """(Re)build the process-local runtime over the owned buffers.

        Called from ``__init__``, ``copy`` and ``__setstate__``:
        memoryviews over the live counters (scalar reads in the numpy
        heap-validation loops yield plain ints, no numpy boxing), and —
        when the resolved kernel is native — the ctypes handle, the
        scratch arrays and the cached ``ndarray.ctypes.data`` pointers
        (the buffers never reallocate, so the raw addresses are stable
        for the lifetime of this state).
        """
        self._gain_mv = memoryview(self._gain)
        self._et_count_mv = memoryview(self._et_count)
        self._alive_mv = memoryview(self._alive)
        self._alive_by_tidx_mv = memoryview(self._alive_by_tidx)
        # (edge, dense id) of the last validated query result: the greedy
        # loops always delete the edge they just queried, so delete_edge
        # skips the canonicalise + dict lookup on a memo hit (ids are an
        # immutable property of the index — the memo can never go stale)
        self._edge_id_memo: Optional[Tuple[Edge, int]] = None
        # native heap arrays: [keys, ids, keys_ptr, ids_ptr, size]
        self._nheap: Optional[List[object]] = None
        # per-target (keys, ids) array pairs; the raw pointers and live
        # sizes live in the tidx-indexed tables below so one C call can
        # validate many targets
        self._npair_heaps: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        if self._kernel != "native":
            self._native = None
            return
        self._native = load_kernel()
        if self._native is None:
            # only reachable on unpickle in a toolchain-less process (the
            # constructor resolves availability up front): degrade quietly,
            # the numpy kernel is observably identical
            self._kernel = "numpy"
            return
        index = self._index
        n_targets = len(index._targets)
        self._gain_ptr = self._gain.ctypes.data
        self._et_indptr_ptr = index._et_indptr.ctypes.data
        self._et_tidx_ptr = index._et_tidx.ctypes.data
        self._et_count_ptr = self._et_count.ctypes.data
        self._out_scratch = np.zeros(3, dtype=NP_LONG)
        self._out_mv = memoryview(self._out_scratch)
        self._out_ptr = self._out_scratch.ctypes.data
        # kill-walk scratch: `broken` is kept all-zero between calls (the
        # delete path re-zeroes exactly the touched entries); `touched`
        # carries the touched target indices back (slot 0 is the count)
        self._broken_scratch = np.zeros(n_targets, dtype=NP_LONG)
        self._broken_mv = memoryview(self._broken_scratch)
        self._touched_scratch = np.zeros(n_targets + 1, dtype=NP_LONG)
        self._touched_mv = memoryview(self._touched_scratch)
        # query scratch + per-target heap tables for pair_validate_many:
        # raw data pointers stored as integers (long holds a pointer on
        # every platform this loads on), size -1 marks "heap not built"
        self._tidx_scratch = np.zeros(n_targets, dtype=NP_LONG)
        self._tidx_mv = memoryview(self._tidx_scratch)
        self._tidx_ptr = self._tidx_scratch.ctypes.data
        self._npair_keys_tab = np.zeros(n_targets, dtype=NP_LONG)
        self._npair_ids_tab = np.zeros(n_targets, dtype=NP_LONG)
        self._npair_sizes = np.full(n_targets, -1, dtype=NP_LONG)
        self._npair_sizes_mv = memoryview(self._npair_sizes)
        self._npair_keys_tab_ptr = self._npair_keys_tab.ctypes.data
        self._npair_ids_tab_ptr = self._npair_ids_tab.ctypes.data
        self._npair_sizes_ptr = self._npair_sizes.ctypes.data
        # (counts, keys, ids) staging arrays for the C heap builder;
        # allocated on the first build — most states never query pairs
        self._pair_build_scratch = None
        # packed pointer contexts (one ctypes argument per hot call; the
        # layouts are documented next to the C entry points)
        self._kill_ctx = np.array(
            [
                index._edge_indptr.ctypes.data,
                index._edge_inst_ids.ctypes.data,
                index._inst_indptr.ctypes.data,
                index._inst_edge_ids.ctypes.data,
                index._inst_slot.ctypes.data,
                index._inst_target_idx.ctypes.data,
                self._alive.ctypes.data,
                self._gain_ptr,
                self._et_count_ptr,
                self._alive_by_tidx.ctypes.data,
                self._broken_scratch.ctypes.data,
                self._touched_scratch.ctypes.data,
            ],
            dtype=NP_LONG,
        )
        self._kill_ctx_ptr = self._kill_ctx.ctypes.data
        self._pair_ctx = np.array(
            [
                self._npair_keys_tab_ptr,
                self._npair_ids_tab_ptr,
                self._npair_sizes_ptr,
                self._tidx_ptr,
                self._gain_ptr,
                self._et_indptr_ptr,
                self._et_tidx_ptr,
                self._et_count_ptr,
                self._out_ptr,
            ],
            dtype=NP_LONG,
        )
        self._pair_ctx_ptr = self._pair_ctx.ctypes.data

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def index(self) -> "TargetSubgraphIndex":
        """The immutable index this state is layered on."""
        return self._index

    @property
    def kernel(self) -> str:
        """The resolved hot-loop kernel: ``"native"`` or ``"numpy"``."""
        return self._kernel

    @property
    def deleted_edges(self) -> Tuple[Edge, ...]:
        """Edges deleted so far, in deletion order."""
        return tuple(self._deleted_edges)

    def total_similarity(self) -> int:
        """Return the current ``s(P, T)`` (alive instances)."""
        return self._alive_total

    def similarity_of(self, target: Edge) -> int:
        """Return the current ``s(P, t)`` for ``target``."""
        return int(self._alive_by_tidx[self._index._target_position(target)])

    def similarity_by_target(self) -> Dict[Edge, int]:
        """Return the current per-target similarities."""
        by_tidx = self._alive_by_tidx.tolist()
        return {
            target: by_tidx[position]
            for position, target in enumerate(self._index.targets)
        }

    def is_fully_protected(self) -> bool:
        """Return whether every target subgraph has been broken."""
        return self._alive_total == 0

    def gain(self, edge: Edge) -> int:
        """Return how many alive instances deleting ``edge`` would break.

        O(1): reads the incrementally maintained live-gain counter.
        """
        edge_id = self._index._indexed.find_edge_id(*edge)
        if edge_id is None:
            return 0
        return self._gain_mv[edge_id]

    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        """Return per-target counts of alive instances ``edge`` would break.

        O(#targets touching the edge): one row of the per-(edge, target)
        counter matrix, no instance rescan.  Targets are listed in target
        index (problem) order, matching the other engines.
        """
        edge_id = self._index._indexed.find_edge_id(*edge)
        if edge_id is None or self._gain[edge_id] == 0:
            return {}
        index = self._index
        targets = index.targets
        start, stop = index._et_indptr[edge_id], index._et_indptr[edge_id + 1]
        row_tidx = index._et_tidx[start:stop].tolist()
        row_count = self._et_count[start:stop].tolist()
        return {
            targets[tidx]: count
            for tidx, count in zip(row_tidx, row_count)
            if count > 0
        }

    def gain_for_target(self, edge: Edge, target: Edge) -> int:
        """Return alive instances of ``target`` that deleting ``edge`` breaks.

        O(#targets touching the edge): a counter-matrix row scan.
        """
        edge_id = self._index._indexed.find_edge_id(*edge)
        if edge_id is None or self._gain[edge_id] == 0:
            return 0
        return self._own_gain(edge_id, self._index._target_position(target))

    def _own_gain(self, edge_id: int, tidx: int) -> int:
        """Return the live (edge, target) counter; rows are tidx-ascending."""
        index = self._index
        et_tidx = index._et_tidx_l
        indptr = index._et_indptr_l
        for slot in range(indptr[edge_id], indptr[edge_id + 1]):
            entry = et_tidx[slot]
            if entry == tidx:
                return self._et_count_mv[slot]
            if entry > tidx:
                break
        return 0

    def candidate_edges(self) -> Set[Edge]:
        """Return undeleted edges that still break at least one alive instance.

        O(|candidate edges|): a deleted or dead edge has a zero counter, so no
        per-edge instance rescan is needed.
        """
        edge_at = self._index._indexed.edge_at
        return {edge_at(edge_id) for edge_id in self._live_candidate_ids()}

    def candidate_edge_list(self) -> List[Edge]:
        """Return the live candidates in deterministic ``edge_sort_key`` order."""
        edge_at = self._index._indexed.edge_at
        return [edge_at(edge_id) for edge_id in self._live_candidate_ids()]

    def _live_candidate_ids(self) -> List[int]:
        """Candidate edge ids with a positive live gain, ascending (one gather)."""
        index = self._index
        candidates = index._candidate_id_array
        return candidates[self._gain[candidates] > 0].tolist()

    def iter_positive_gains(self) -> Iterator[Tuple[Edge, int]]:
        """Yield ``(edge, live gain)`` for every live candidate, in
        deterministic ``edge_sort_key`` order.

        Mirrors the generic engine sweep exactly: the candidate list is
        snapshotted before the first yield, but each gain is read live and
        candidates that died mid-iteration are skipped — so callers that
        delete edges while iterating observe the same sequence on every
        engine.
        """
        edge_at = self._index._indexed.edge_at
        gain = self._gain_mv
        snapshot = self._live_candidate_ids()
        for edge_id in snapshot:
            value = gain[edge_id]
            if value > 0:
                yield edge_at(edge_id), value

    def gains_for_target(self, target: Edge) -> Dict[Edge, int]:
        """Return ``{edge: alive instances of target it breaks}`` for every
        edge with a positive own-gain for ``target``.

        One pass over the target's alive instances — the within-target greedy
        uses this instead of probing every graph edge.  Keys are emitted in
        deterministic ``edge_sort_key`` order.
        """
        index = self._index
        counts = self._own_gains_by_edge_id(index._target_position(target))
        edge_at = index._indexed.edge_at
        return {edge_at(edge_id): count for edge_id, count in sorted(counts.items())}

    def _own_gains_by_edge_id(self, tidx: int) -> Dict[int, int]:
        """One pass over a target's alive instances: ``{edge id: own gain}``
        with keys ascending (the counting sort yields them sorted)."""
        index = self._index
        start, end = index._target_ranges[tidx]
        live = np.flatnonzero(self._alive[start:end])
        if not len(live):
            return {}
        live += start
        starts = index._inst_indptr[live]
        arities = index._inst_indptr[live + 1] - starts
        positive = arities > 0  # zero-arity instances have no memberships
        positions = _flat_ranges(starts[positive], arities[positive])
        if not len(positions):
            return {}
        edge_ids, counts = np.unique(
            index._inst_edge_ids[positions], return_counts=True
        )
        return dict(zip(edge_ids.tolist(), counts.tolist()))

    def best_scored_pair(
        self, targets: Sequence[Edge], constant: int
    ) -> Optional[Tuple[int, Edge, Edge]]:
        """Return ``(key, target, edge)`` maximising the MLBT score over the
        given targets and the live candidate edges, or ``None`` if no pair
        has a positive own-gain.

        The integer key is ``own * (constant - 1) + total``; dividing by
        ``constant`` gives the paper's ``Δ_t^p = own + (total - own) / C``,
        so maximising the key maximises the score with exact integer
        arithmetic.  Ties break toward the smallest edge id (== smallest
        ``edge_sort_key``) and then toward the earliest target in
        ``targets`` — identical to a deterministic edge-major sweep over
        ``gain_by_target`` rows.

        Amortised sublinear in the candidate count: each queried target
        keeps a lazy max-heap of stale keys over its own-gain edges (sound
        because own-gains and totals only ever decrease, so a stale key is
        an upper bound), and a query validates heap tops only.  Both
        kernels validate through the same algorithm; the native one runs
        it in C over flat (key, id) arrays.
        """
        if constant != self._pair_constant:
            self._pair_heaps = {}
            if self._npair_heaps:
                self._npair_heaps = {}
                self._npair_sizes.fill(-1)
            self._pair_constant = constant
        if self._native is not None:
            return self._best_scored_pair_native(targets, constant - 1)
        index = self._index
        best: Optional[Tuple[int, int, Edge]] = None  # (key, edge_id, target)
        for target in targets:
            tidx = index._target_position(target)
            top = self._pair_heap_top(tidx, constant)
            if top is None:
                continue
            key, edge_id = top
            if best is None or key > best[0] or (key == best[0] and edge_id < best[1]):
                best = (key, edge_id, target)
        if best is None:
            return None
        edge = index._indexed.edge_at(best[1])
        self._edge_id_memo = (edge, best[1])
        return best[0], best[2], edge

    def _pair_heap_top(self, tidx: int, constant: int) -> Optional[Tuple[int, int]]:
        """Return the validated ``(key, edge id)`` top of one target's heap."""
        heap = self._pair_heaps.get(tidx)
        weight = constant - 1
        gain = self._gain
        if heap is None:
            own_gains = self._own_gains_by_edge_id(tidx)  # keys ascending
            if own_gains:
                edge_ids = np.fromiter(
                    own_gains.keys(), dtype=NP_LONG, count=len(own_gains)
                )
                totals = gain[edge_ids].tolist()
            else:
                totals = []
            heap = [
                (-(own * weight + total), edge_id)
                for (edge_id, own), total in zip(own_gains.items(), totals)
            ]
            heapq.heapify(heap)
            self._pair_heaps[tidx] = heap
        gain_mv = self._gain_mv
        while heap:
            negative, edge_id = heap[0]
            own = self._own_gain(edge_id, tidx)
            if own <= 0:
                heapq.heappop(heap)
                continue
            key = own * weight + gain_mv[edge_id]
            if -negative == key:
                return key, edge_id
            heapq.heapreplace(heap, (-key, edge_id))
        return None

    def _best_scored_pair_native(
        self, targets: Sequence[Edge], weight: int
    ) -> Optional[Tuple[int, Edge, Edge]]:
        """Native twin of the pair sweep: every queried heap is validated and
        the cross-target arg-max selected in a single C call."""
        index = self._index
        position = index._target_position
        if len(targets) > len(self._tidx_scratch):  # duplicated query targets
            self._tidx_scratch = np.zeros(len(targets), dtype=NP_LONG)
            self._tidx_mv = memoryview(self._tidx_scratch)
            self._tidx_ptr = self._tidx_scratch.ctypes.data
            self._pair_ctx[3] = self._tidx_ptr
        sizes = self._npair_sizes_mv
        tidx_mv = self._tidx_mv
        n = 0
        for target in targets:
            tidx = position(target)
            if sizes[tidx] < 0:
                self._build_pair_heap_native(tidx, weight)
            tidx_mv[n] = tidx
            n += 1
        self._native.pair_validate_many(self._pair_ctx_ptr, n, weight)
        out = self._out_mv
        if out[2] < 0:
            return None
        edge_id = out[1]
        edge = index._indexed.edge_at(edge_id)
        self._edge_id_memo = (edge, edge_id)
        return out[0], targets[out[2]], edge

    def _build_pair_heap_native(self, tidx: int, weight: int) -> None:
        """Build one target's native pair heap and register it in the
        tidx-indexed pointer/size tables.

        The own-gain counting walk and the heapify both run in C over a
        reused scratch triple (an all-zero per-edge counter plus key/id
        staging arrays); only the used prefix is copied out.  The heap
        holds the same (key, id) multiset the numpy path builds, which is
        all the validated pop order depends on.
        """
        index = self._index
        start, end = index._target_ranges[tidx]
        scratch = self._pair_build_scratch
        if scratch is None:
            n_edges = len(self._gain)
            scratch = (
                np.zeros(n_edges, dtype=NP_LONG),
                np.empty(n_edges, dtype=NP_LONG),
                np.empty(n_edges, dtype=NP_LONG),
            )
            self._pair_build_scratch = scratch
        counts, keys_scratch, ids_scratch = scratch
        size = self._native.pair_heap_build(
            index._inst_indptr.ctypes.data,
            index._inst_edge_ids.ctypes.data,
            self._alive.ctypes.data,
            int(start),
            int(end),
            self._gain_ptr,
            weight,
            counts.ctypes.data,
            keys_scratch.ctypes.data,
            ids_scratch.ctypes.data,
        )
        keys = keys_scratch[:size].copy()
        ids = ids_scratch[:size].copy()
        self._npair_heaps[tidx] = (keys, ids)
        self._npair_keys_tab[tidx] = keys.ctypes.data
        self._npair_ids_tab[tidx] = ids.ctypes.data
        self._npair_sizes[tidx] = size

    def top_gain_edge(self) -> Optional[Tuple[Edge, int]]:
        """Return the ``(edge, gain)`` with maximal live gain, or ``None``.

        Ties break toward the smallest ``edge_sort_key`` (identical to the
        full-scan ``argmax_edge`` the plain greedy uses).  Amortised O(log m):
        the max-heap is repaired lazily, which is sound because live gains
        only ever decrease.
        """
        if self._native is not None:
            return self._top_gain_edge_native()
        heap = self._heap
        if heap is None:
            candidates = self._index._candidate_id_array
            gains = self._gain[candidates]
            mask = gains > 0
            heap = [
                (-value, edge_id)
                for value, edge_id in zip(
                    gains[mask].tolist(), candidates[mask].tolist()
                )
            ]
            heapq.heapify(heap)
            self._heap = heap
        gain = self._gain_mv
        while heap:
            negative, edge_id = heap[0]
            current = gain[edge_id]
            if current <= 0:
                heapq.heappop(heap)
            elif -negative != current:
                heapq.heapreplace(heap, (-current, edge_id))
            else:
                edge = self._index._indexed.edge_at(edge_id)
                self._edge_id_memo = (edge, edge_id)
                return edge, current
        return None

    def _top_gain_edge_native(self) -> Optional[Tuple[Edge, int]]:
        """Native twin of the numpy :meth:`top_gain_edge` validation loop."""
        heap = self._nheap
        native = self._native
        if heap is None:
            candidates = self._index._candidate_id_array
            gains = self._gain[candidates]
            mask = gains > 0
            keys = -gains[mask]
            ids = candidates[mask]
            size = len(ids)
            keys_ptr = keys.ctypes.data
            ids_ptr = ids.ctypes.data
            native.heap_init(keys_ptr, ids_ptr, size)
            heap = [keys, ids, keys_ptr, ids_ptr, size]
            self._nheap = heap
        heap[4] = native.top_validate(
            heap[2], heap[3], heap[4], self._gain_ptr, self._out_ptr
        )
        out = self._out_mv
        if out[0] < 0:
            return None
        edge_id = out[0]
        edge = self._index._indexed.edge_at(edge_id)
        self._edge_id_memo = (edge, edge_id)
        return edge, out[1]

    def top_gain_edges(self, k: int) -> List[Tuple[Edge, int]]:
        """Return up to ``k`` distinct edges with the highest live gains.

        Ordered by descending gain, ties toward the smallest
        ``edge_sort_key``.  Note the gains are *individual* live gains; they
        overlap, so this is a candidate shortlist, not a batch selection.
        """
        if k <= 0:
            return []
        if self._native is not None:
            return self._top_gain_edges_native(k)
        popped: List[Tuple[int, int]] = []
        result: List[Tuple[Edge, int]] = []
        # force heap construction via top_gain_edge, which also repairs the top
        while len(result) < k and self.top_gain_edge() is not None:
            entry = heapq.heappop(self._heap)  # validated by top_gain_edge
            popped.append(entry)
            result.append((self._index._indexed.edge_at(entry[1]), -entry[0]))
        for entry in popped:
            heapq.heappush(self._heap, entry)
        return result

    def _top_gain_edges_native(self, k: int) -> List[Tuple[Edge, int]]:
        """Native twin of :meth:`top_gain_edges`: pop validated tops, push back.

        Pushing back exactly what was popped keeps the heap size within
        its allocated capacity, and preserves the heap contents as a
        multiset — so the next validated pop sequence is unchanged.
        """
        native = self._native
        popped: List[Tuple[int, int]] = []
        result: List[Tuple[Edge, int]] = []
        out = self._out_mv
        while len(result) < k:
            top = self._top_gain_edge_native()  # validates the root
            if top is None:
                break
            edge, value = top
            edge_id = out[0]
            heap = self._nheap
            heap[4] = native.heap_pop(heap[2], heap[3], heap[4])
            popped.append((-value, edge_id))
            result.append((edge, value))
        heap = self._nheap
        if heap is not None:
            for key, edge_id in popped:
                heap[4] = native.heap_push(heap[2], heap[3], heap[4], key, edge_id)
        return result

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def delete_edge(self, edge: Edge) -> Dict[Edge, int]:
        """Delete ``edge`` and return the per-target counts of broken instances.

        Deleting an edge that touches no alive instance is allowed and
        returns an empty mapping (the greedy algorithms stop before doing
        this, but baselines such as RD routinely delete useless edges).

        Cost is proportional to the killed instances times their arity — the
        sibling-edge counters are decremented here (one compiled walk on the
        native kernel; one vectorised gather + scatter-add, or an
        element-wise walk for small rows, on the numpy kernel) so all later
        gain queries stay O(1).
        """
        index = self._index
        memo = self._edge_id_memo
        if memo is not None and memo[0] == edge:
            edge_id: Optional[int] = memo[1]  # memo edges are canonical
        else:
            edge = canonical_edge(*edge)
            edge_id = index._indexed.find_edge_id(*edge)
        self._deleted_edges.append(edge)
        if edge_id is None or self._gain_mv[edge_id] == 0:
            return {}
        if self._native is not None:
            return self._delete_edge_native(edge_id)
        start = index._edge_indptr[edge_id]
        stop = index._edge_indptr[edge_id + 1]
        if stop - start <= _SCALAR_KILL_THRESHOLD:
            return self._delete_scalar(edge_id, start, stop)
        alive = self._alive
        row = index._edge_inst_ids[start:stop]
        killed = row[alive[row] != 0]
        if not len(killed):
            return {}
        alive[killed] = 0
        self._alive_total -= len(killed)
        broken = np.bincount(
            index._inst_target_idx[killed], minlength=len(index._targets)
        )
        self._alive_by_tidx -= broken
        # decrement every sibling edge of every killed instance (including
        # the deleted edge itself, whose counters reach exactly zero): both
        # the per-edge total and the (edge, target) matrix entry
        starts = index._inst_indptr[killed]
        arities = index._inst_indptr[killed + 1] - starts
        positions = _flat_ranges(starts, arities)
        np.subtract.at(self._gain, index._inst_edge_ids[positions], 1)
        np.subtract.at(self._et_count, index._inst_slot[positions], 1)
        targets = index.targets
        return {
            targets[tidx]: int(broken[tidx])
            for tidx in np.flatnonzero(broken).tolist()
        }

    def _delete_edge_native(self, edge_id: int) -> Dict[Edge, int]:
        """Compiled kill walk: one C call over the cached buffer pointers.

        The per-target broken counts come back through the scratch array
        and the list of touched target indices (ascending, so the mapping
        matches both numpy paths); the touched entries are re-zeroed on
        the way out, which is the all-zero invariant the C walk relies on
        instead of clearing ``n_targets`` slots per call.
        """
        killed = self._native.kill_instances(self._kill_ctx_ptr, edge_id)
        if not killed:
            return {}
        self._alive_total -= killed
        broken = self._broken_mv
        touched = self._touched_mv
        targets = self._index.targets
        result: Dict[Edge, int] = {}
        for i in range(1, touched[0] + 1):
            tidx = touched[i]
            result[targets[tidx]] = broken[tidx]
            broken[tidx] = 0
        return result

    def _delete_scalar(self, edge_id: int, start: int, stop: int) -> Dict[Edge, int]:
        """Element-wise kill walk for edges in few instances.

        Identical bookkeeping to the vectorised path; for a handful of
        memberships the fixed cost of the numpy gathers outweighs the loop,
        and the greedy endgame (and CT's per-target deletions) is dominated
        by exactly such small kills.
        """
        index = self._index
        alive = self._alive_mv
        gain = self._gain_mv
        et_count = self._et_count_mv
        alive_by_tidx = self._alive_by_tidx_mv
        inst_ids = index._edge_inst_ids[start:stop].tolist()
        inst_indptr = index._inst_indptr
        broken_by_tidx: Dict[int, int] = {}
        for instance_id in inst_ids:
            if not alive[instance_id]:
                continue
            alive[instance_id] = 0
            tidx = int(index._inst_target_idx[instance_id])
            broken_by_tidx[tidx] = broken_by_tidx.get(tidx, 0) + 1
            alive_by_tidx[tidx] -= 1
            self._alive_total -= 1
            lo = inst_indptr[instance_id]
            hi = inst_indptr[instance_id + 1]
            for sibling in index._inst_edge_ids[lo:hi].tolist():
                gain[sibling] -= 1
            for slot in index._inst_slot[lo:hi].tolist():
                et_count[slot] -= 1
        targets = index.targets
        return {
            targets[tidx]: count for tidx, count in sorted(broken_by_tidx.items())
        }

    def delete_edges(self, edges: Iterable[Edge]) -> Dict[Edge, int]:
        """Delete several edges; return aggregated per-target broken counts."""
        total: Dict[Edge, int] = {}
        for edge in edges:
            for target, count in self.delete_edge(edge).items():
                total[target] = total.get(target, 0) + count
        return total

    def copy(self) -> "CoverageState":
        """Return an independent copy of this state (same underlying index)."""
        clone = CoverageState.__new__(CoverageState)
        clone._index = self._index
        clone._alive = self._alive.copy()
        clone._alive_total = self._alive_total
        clone._alive_by_tidx = self._alive_by_tidx.copy()
        clone._gain = self._gain.copy()
        clone._et_count = self._et_count.copy()
        clone._deleted_edges = list(self._deleted_edges)
        # stale entries are safe: gains only decrease, pops re-validate
        clone._heap = list(self._heap) if self._heap is not None else None
        clone._pair_heaps = {
            tidx: list(heap) for tidx, heap in self._pair_heaps.items()
        }
        clone._pair_constant = self._pair_constant
        clone._kernel = self._kernel
        clone._init_runtime()
        if clone._native is not None:
            if self._nheap is not None:
                clone._nheap = _copy_native_heap(self._nheap)
            for tidx, (keys, ids) in self._npair_heaps.items():
                keys = keys.copy()
                ids = ids.copy()
                clone._npair_heaps[tidx] = (keys, ids)
                clone._npair_keys_tab[tidx] = keys.ctypes.data
                clone._npair_ids_tab[tidx] = ids.ctypes.data
                clone._npair_sizes[tidx] = self._npair_sizes[tidx]
        return clone

    # the process-local runtime (memoryviews, ctypes handle, cached buffer
    # pointers, native heaps) does not pickle; __setstate__ rebuilds it.
    # Native heaps are pure derived caches — the states on the other side
    # lazily rebuild them to the same validated tops.
    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        for attr in _RUNTIME_ATTRS:
            state.pop(attr, None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        # a native-backed state may land in a process without a compiler or
        # prebuilt artifact; _init_runtime degrades it to the numpy kernel
        self._init_runtime()


def _copy_native_heap(heap: List[object]) -> List[object]:
    """Deep-copy one native heap (fresh arrays, recomputed pointers)."""
    keys = heap[0].copy()
    ids = heap[1].copy()
    return [keys, ids, keys.ctypes.data, ids.ctypes.data, heap[4]]


class SetCoverageState:
    """Hash-set reference implementation of the coverage state.

    This is the original (pre-kernel) formulation: alive instances in a set,
    gains recomputed by scanning the inverted index on every query.  It is
    retained as the executable specification for differential tests and the
    old-vs-new micro-benchmark (``benchmarks/bench_engine_kernel.py``); use
    :meth:`TargetSubgraphIndex.new_state` for real workloads.
    """

    def __init__(self, index: "TargetSubgraphIndex") -> None:
        self._index = index
        self._alive: Set[InstanceId] = set(range(index.number_of_instances()))
        self._alive_by_target: Dict[Edge, int] = {
            target: index.initial_similarity(target) for target in index.targets
        }
        self._deleted_edges: List[Edge] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def index(self) -> "TargetSubgraphIndex":
        """The immutable index this state is layered on."""
        return self._index

    @property
    def deleted_edges(self) -> Tuple[Edge, ...]:
        """Edges deleted so far, in deletion order."""
        return tuple(self._deleted_edges)

    def total_similarity(self) -> int:
        """Return the current ``s(P, T)`` (alive instances)."""
        return len(self._alive)

    def similarity_of(self, target: Edge) -> int:
        """Return the current ``s(P, t)`` for ``target``."""
        return self._alive_by_target[canonical_edge(*target)]

    def similarity_by_target(self) -> Dict[Edge, int]:
        """Return the current per-target similarities."""
        return dict(self._alive_by_target)

    def is_fully_protected(self) -> bool:
        """Return whether every target subgraph has been broken."""
        return not self._alive

    def gain(self, edge: Edge) -> int:
        """Return how many alive instances deleting ``edge`` would break."""
        instances = self._index.instances_containing(edge)
        if not instances:
            return 0
        return sum(1 for instance_id in instances if instance_id in self._alive)

    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        """Return per-target counts of alive instances ``edge`` would break.

        Instance ids are visited in sorted order; because ids are contiguous
        per target in target-input order, the resulting dict lists targets in
        the same order as the array kernel and the recount engine — CT's
        strict tie-breaking depends on that shared iteration order.
        """
        gains: Dict[Edge, int] = {}
        for instance_id in sorted(self._index.instances_containing(edge)):
            if instance_id in self._alive:
                target = self._index.target_of_instance(instance_id)
                gains[target] = gains.get(target, 0) + 1
        return gains

    def gain_for_target(self, edge: Edge, target: Edge) -> int:
        """Return alive instances of ``target`` that deleting ``edge`` breaks."""
        target = canonical_edge(*target)
        count = 0
        for instance_id in self._index.instances_containing(edge):
            if instance_id in self._alive and self._index.target_of_instance(
                instance_id
            ) == target:
                count += 1
        return count

    def candidate_edges(self) -> Set[Edge]:
        """Return undeleted edges that still break at least one alive instance."""
        candidates: Set[Edge] = set()
        deleted = set(self._deleted_edges)
        # reprolint: disable=R1-set-iteration(loop only accumulates into the candidates set; set construction is order-insensitive)
        for edge in self._index.candidate_edges():
            if edge not in deleted and self.gain(edge) > 0:
                candidates.add(edge)
        return candidates

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def delete_edge(self, edge: Edge) -> Dict[Edge, int]:
        """Delete ``edge`` and return the per-target counts of broken instances."""
        edge = canonical_edge(*edge)
        broken: Dict[Edge, int] = {}
        for instance_id in self._index.instances_containing(edge):
            if instance_id in self._alive:
                self._alive.discard(instance_id)
                target = self._index.target_of_instance(instance_id)
                broken[target] = broken.get(target, 0) + 1
                self._alive_by_target[target] -= 1
        self._deleted_edges.append(edge)
        return broken

    def delete_edges(self, edges: Iterable[Edge]) -> Dict[Edge, int]:
        """Delete several edges; return aggregated per-target broken counts."""
        total: Dict[Edge, int] = {}
        for edge in edges:
            for target, count in self.delete_edge(edge).items():
                total[target] = total.get(target, 0) + count
        return total

    def copy(self) -> "SetCoverageState":
        """Return an independent copy of this state (same underlying index)."""
        clone = SetCoverageState(self._index)
        clone._alive = set(self._alive)
        clone._alive_by_target = dict(self._alive_by_target)
        clone._deleted_edges = list(self._deleted_edges)
        return clone
