"""Additional motif patterns beyond the three used in the paper's evaluation.

The paper states that "it is general to use any motif as link prediction
basis in TPP"; these patterns make that claim concrete and are used by the
ablation benchmarks:

* :class:`PathMotif` — the target is completed by a simple path of a chosen
  length between its endpoints (length 2 reduces to the Triangle pattern,
  length 3 to the Rectangle pattern).
* :class:`CliqueMotif` — the target is completed by a clique of a chosen
  size containing both endpoints (size 3 reduces to the Triangle pattern);
  captures tightly-knit group inference such as co-authorship cliques.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import combinations
from typing import Iterator, List, Sequence

from repro.exceptions import MotifDefinitionError
from repro.graphs.graph import Edge, Graph
from repro.graphs.indexed import IndexedGraph
from repro.motifs.base import MotifInstance, MotifPattern, register_motif

__all__ = ["PathMotif", "CliqueMotif", "Path4Motif", "Clique4Motif"]


class PathMotif(MotifPattern):
    """Simple paths of a fixed length between the target's endpoints.

    ``length`` counts edges on the path (excluding the target link itself):
    length 2 is the Triangle basis, length 3 the Rectangle basis, length 4
    adds one more hop of indirection.
    """

    name = "path"

    needs_graph = False  # enumerate_instance_edge_ids walks the CSR only

    def __init__(self, length: int = 4) -> None:
        if length < 2:
            raise MotifDefinitionError(f"path length must be >= 2, got {length}")
        self.length = length
        # node i hops along the path is length - i hops from the far end,
        # so every path node is within length // 2 hops of some endpoint
        self.delta_radius = length // 2

    def enumerate_instances(self, graph: Graph, target: Edge) -> Iterator[MotifInstance]:
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        yield from self._extend(graph, [u], v, self.length, {u, v})

    def _extend(
        self, graph: Graph, prefix: List, v, remaining: int, forbidden
    ) -> Iterator[MotifInstance]:
        """Depth-first enumeration of simple paths of exactly the right length."""
        last = prefix[-1]
        if remaining == 1:
            if v in graph.neighbors(last):
                edges = [
                    self._canonical(prefix[i], prefix[i + 1])
                    for i in range(len(prefix) - 1)
                ]
                edges.append(self._canonical(last, v))
                yield frozenset(edges)
            return
        for neighbor in graph.neighbors(last):
            if neighbor in forbidden:
                continue
            yield from self._extend(
                graph, prefix + [neighbor], v, remaining - 1, forbidden | {neighbor}
            )

    def enumerate_instance_edge_ids(
        self, indexed: IndexedGraph, graph: Graph, target: Edge
    ) -> Iterator[Sequence[int]]:
        u, v = target
        if not (indexed.has_node(u) and indexed.has_node(v)):
            return
        u_id, v_id = indexed.node_id(u), indexed.node_id(v)
        yield from self._extend_ids(
            indexed, u_id, v_id, self.length, {u_id, v_id}, []
        )

    def _extend_ids(
        self,
        indexed: IndexedGraph,
        last_id: int,
        v_id: int,
        remaining: int,
        forbidden,
        edge_ids: List[int],
    ) -> Iterator[Sequence[int]]:
        """Depth-first simple-path enumeration over the CSR rows."""
        indptr, neighbors, incident = indexed.csr()
        lo, hi = indptr[last_id], indptr[last_id + 1]
        if remaining == 1:
            position = bisect_left(neighbors, v_id, lo, hi)
            if position < hi and neighbors[position] == v_id:
                yield edge_ids + [incident[position]]
            return
        for position in range(lo, hi):
            neighbor = neighbors[position]
            if neighbor in forbidden:
                continue
            yield from self._extend_ids(
                indexed,
                neighbor,
                v_id,
                remaining - 1,
                forbidden | {neighbor},
                edge_ids + [incident[position]],
            )


class CliqueMotif(MotifPattern):
    """Cliques of a fixed size that the target link would complete.

    An instance is a set of ``size - 2`` nodes that, together with the
    target's endpoints, forms a clique once the target is re-inserted.  The
    protector edges are every edge of that clique except the target itself.
    Size 3 reduces to the Triangle pattern.
    """

    name = "clique"

    # every clique node is a common neighbor of both target endpoints
    delta_radius = 1
    needs_graph = False  # enumerate_instance_edge_ids walks the CSR only

    def __init__(self, size: int = 4) -> None:
        if size < 3:
            raise MotifDefinitionError(f"clique size must be >= 3, got {size}")
        self.size = size

    def enumerate_instances(self, graph: Graph, target: Edge) -> Iterator[MotifInstance]:
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        common = sorted(graph.common_neighbors(u, v), key=str)
        needed = self.size - 2
        for group in combinations(common, needed):
            if self._is_clique(graph, group):
                edges = set()
                for w in group:
                    edges.add(self._canonical(u, w))
                    edges.add(self._canonical(v, w))
                for a, b in combinations(group, 2):
                    edges.add(self._canonical(a, b))
                yield frozenset(edges)

    @staticmethod
    def _is_clique(graph: Graph, nodes) -> bool:
        return all(graph.has_edge(a, b) for a, b in combinations(nodes, 2))

    def enumerate_instance_edge_ids(
        self, indexed: IndexedGraph, graph: Graph, target: Edge
    ) -> Iterator[Sequence[int]]:
        u, v = target
        if not (indexed.has_node(u) and indexed.has_node(v)):
            return
        u_id, v_id = indexed.node_id(u), indexed.node_id(v)
        # common neighbors (id-ascending == the tuple path's str order) with
        # the aligned edge ids to both endpoints
        common = list(indexed.common_neighbor_edges(u_id, v_id))
        needed = self.size - 2
        for group in combinations(common, needed):
            edge_ids: List[int] = []
            for a_entry, b_entry in combinations(group, 2):
                within = indexed.edge_id_between(a_entry[0], b_entry[0])
                if within is None:
                    edge_ids = []
                    break
                edge_ids.append(within)
            else:
                for _, edge_uw, edge_wv in group:
                    edge_ids.append(edge_uw)
                    edge_ids.append(edge_wv)
                yield edge_ids


@register_motif
class Path4Motif(PathMotif):
    """Registered convenience: simple 4-length paths (one hop beyond Rectangle)."""

    name = "path4"

    def __init__(self) -> None:
        super().__init__(length=4)


@register_motif
class Clique4Motif(CliqueMotif):
    """Registered convenience: 4-cliques completed by the target link."""

    name = "clique4"

    def __init__(self) -> None:
        super().__init__(size=4)
