"""Additional motif patterns beyond the three used in the paper's evaluation.

The paper states that "it is general to use any motif as link prediction
basis in TPP"; these patterns make that claim concrete and are used by the
ablation benchmarks:

* :class:`PathMotif` — the target is completed by a simple path of a chosen
  length between its endpoints (length 2 reduces to the Triangle pattern,
  length 3 to the Rectangle pattern).
* :class:`CliqueMotif` — the target is completed by a clique of a chosen
  size containing both endpoints (size 3 reduces to the Triangle pattern);
  captures tightly-knit group inference such as co-authorship cliques.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List

from repro.graphs.graph import Edge, Graph
from repro.motifs.base import MotifInstance, MotifPattern, register_motif

__all__ = ["PathMotif", "CliqueMotif", "Path4Motif", "Clique4Motif"]


class PathMotif(MotifPattern):
    """Simple paths of a fixed length between the target's endpoints.

    ``length`` counts edges on the path (excluding the target link itself):
    length 2 is the Triangle basis, length 3 the Rectangle basis, length 4
    adds one more hop of indirection.
    """

    name = "path"

    def __init__(self, length: int = 4) -> None:
        if length < 2:
            raise ValueError(f"path length must be >= 2, got {length}")
        self.length = length

    def enumerate_instances(self, graph: Graph, target: Edge) -> Iterator[MotifInstance]:
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        yield from self._extend(graph, [u], v, self.length, {u, v})

    def _extend(
        self, graph: Graph, prefix: List, v, remaining: int, forbidden
    ) -> Iterator[MotifInstance]:
        """Depth-first enumeration of simple paths of exactly the right length."""
        last = prefix[-1]
        if remaining == 1:
            if v in graph.neighbors(last):
                edges = [
                    self._canonical(prefix[i], prefix[i + 1])
                    for i in range(len(prefix) - 1)
                ]
                edges.append(self._canonical(last, v))
                yield frozenset(edges)
            return
        for neighbor in graph.neighbors(last):
            if neighbor in forbidden:
                continue
            yield from self._extend(
                graph, prefix + [neighbor], v, remaining - 1, forbidden | {neighbor}
            )


class CliqueMotif(MotifPattern):
    """Cliques of a fixed size that the target link would complete.

    An instance is a set of ``size - 2`` nodes that, together with the
    target's endpoints, forms a clique once the target is re-inserted.  The
    protector edges are every edge of that clique except the target itself.
    Size 3 reduces to the Triangle pattern.
    """

    name = "clique"

    def __init__(self, size: int = 4) -> None:
        if size < 3:
            raise ValueError(f"clique size must be >= 3, got {size}")
        self.size = size

    def enumerate_instances(self, graph: Graph, target: Edge) -> Iterator[MotifInstance]:
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        common = sorted(graph.common_neighbors(u, v), key=str)
        needed = self.size - 2
        for group in combinations(common, needed):
            if self._is_clique(graph, group):
                edges = set()
                for w in group:
                    edges.add(self._canonical(u, w))
                    edges.add(self._canonical(v, w))
                for a, b in combinations(group, 2):
                    edges.add(self._canonical(a, b))
                yield frozenset(edges)

    @staticmethod
    def _is_clique(graph: Graph, nodes) -> bool:
        return all(graph.has_edge(a, b) for a, b in combinations(nodes, 2))


@register_motif
class Path4Motif(PathMotif):
    """Registered convenience: simple 4-length paths (one hop beyond Rectangle)."""

    name = "path4"

    def __init__(self) -> None:
        super().__init__(length=4)


@register_motif
class Clique4Motif(CliqueMotif):
    """Registered convenience: 4-cliques completed by the target link."""

    name = "clique4"

    def __init__(self) -> None:
        super().__init__(size=4)
