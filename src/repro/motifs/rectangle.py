"""Rectangle motif (Fig. 1b of the paper).

A hidden target ``t = (u, v)`` participates in one Rectangle instance per
simple 3-length path ``u - a - b - v``: re-inserting ``t`` would close a
4-cycle.  The instance's protector edges are ``(u, a)``, ``(a, b)`` and
``(b, v)``.  The similarity is the number of such paths, capturing the
"friends of the two users are strongly connected" inference from the paper's
introduction.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.graphs.graph import Edge, Graph
from repro.graphs.indexed import IndexedGraph
from repro.motifs.base import MotifInstance, MotifPattern, register_motif

__all__ = ["RectangleMotif"]


@register_motif
class RectangleMotif(MotifPattern):
    """Three-length simple paths ``u - a - b - v`` completing a 4-cycle."""

    name = "rectangle"

    # path u-a-b-v: a is adjacent to u and b is adjacent to v
    delta_radius = 1
    needs_graph = False  # enumerate_instance_edge_ids walks the CSR only

    def enumerate_instances(self, graph: Graph, target: Edge) -> Iterator[MotifInstance]:
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        neighbors_v = graph.neighbors(v)
        for a in graph.neighbors(u):
            if a == v or a == u:
                continue
            for b in graph.neighbors(a):
                if b == u or b == v or b == a:
                    continue
                if b in neighbors_v:
                    yield frozenset(
                        (
                            self._canonical(u, a),
                            self._canonical(a, b),
                            self._canonical(b, v),
                        )
                    )

    def enumerate_instance_edge_ids(
        self, indexed: IndexedGraph, graph: Graph, target: Edge
    ) -> Iterator[Sequence[int]]:
        u, v = target
        if not (indexed.has_node(u) and indexed.has_node(v)):
            return
        indptr, neighbors, incident = indexed.csr()
        u_id, v_id = indexed.node_id(u), indexed.node_id(v)
        # one dict per target: neighbor id of v -> edge id of (b, v)
        v_row = {
            neighbors[j]: incident[j]
            for j in range(indptr[v_id], indptr[v_id + 1])
        }
        for i in range(indptr[u_id], indptr[u_id + 1]):
            a = neighbors[i]
            if a == v_id:
                continue
            edge_ua = incident[i]
            for j in range(indptr[a], indptr[a + 1]):
                b = neighbors[j]
                if b == u_id or b == v_id:
                    continue
                edge_bv = v_row.get(b)
                if edge_bv is not None:
                    yield (edge_ua, incident[j], edge_bv)
