"""Incremental index maintenance: apply edge deltas in O(touched motifs).

The protection pipeline assumes a frozen phase-1 graph — but real graphs
move.  Rebuilding a :class:`~repro.motifs.enumeration.TargetSubgraphIndex`
from scratch for a handful of changed edges re-enumerates every target,
which is exactly the cost the index exists to amortise.  This module
applies an ordered batch of edge insertions/deletions (:class:`EdgeDelta`)
to a built index and produces a **new index that is bit-identical to a
from-scratch rebuild on the updated graph** — same
:data:`~repro.motifs.enumeration.INDEX_ARRAY_FIELDS` bytes, same CSR, same
greedy traces — while enumerating only the motif instances that can have
changed.

How a delta is applied
----------------------

1. **Validate + net effect.**  Operations are replayed in order against the
   current edge set (inserting an existing edge, deleting an absent one, a
   self-loop or inserting a hidden target link raise
   :class:`~repro.exceptions.DeltaError`).  Only the *net* effect matters
   for the result — an insert-then-delete round trip is a no-op.
2. **Graph splice.**  The :class:`~repro.graphs.indexed.IndexedGraph` CSR
   is spliced, not rebuilt: node ids stay monotone when new labels merge
   into the ``str``-sorted table and edge ids stay monotone across
   deletions/insertions, so sorted merges (``searchsorted``) place every
   row without a global re-sort.  The splice returns the old-to-new edge-id
   map that drives the index splice.
3. **Destroyed instances** are read straight off the inverse
   ``edge -> instances`` CSR of the deleted edge ids — no enumeration.
4. **Created instances** can only contain an inserted edge.  Every node of
   an instance of target ``(u, v)`` lies within the motif's
   :attr:`~repro.motifs.base.MotifPattern.delta_radius` hops of ``u`` or
   ``v``, so only targets with an endpoint inside the radius ball around
   the inserted edges can gain instances — those targets are re-enumerated
   through the same per-motif CSR walk
   (:meth:`~repro.motifs.base.MotifPattern.enumerate_instance_edge_ids`)
   the build uses, with the same canonicalised tuple fallback for custom
   motifs.  A motif without a declared radius falls back to re-enumerating
   every target on inserts (deletions stay incremental regardless).
5. **Splice + reassemble.**  Surviving instance rows keep their relative
   order (the edge-id remap is monotone, and both the built-in CSR walks
   and the canonical custom order are order-preserving under monotone id
   maps), so each target's block is either a remapped slice of the old
   membership buffer or a freshly enumerated one.  The concatenated
   buffers feed the exact vectorised assembly passes of a fresh build,
   which is what makes bit-identity hold by construction rather than by
   luck.

The differential tests (``tests/property/test_index_update_equivalence.py``)
pin every delta path byte-identical against a from-scratch rebuild, across
the built-in motifs and a custom tuple-only motif, with the naive
``RecountEngine`` kept in the loop as the executable reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import DeltaError
from repro.graphs.graph import Edge, canonical_edge
from repro.graphs.indexed import NP_LONG, IndexedGraph
from repro.motifs.enumeration import (
    TargetSubgraphIndex,
    _enumerate_buffers,
    _flat_ranges,
)

__all__ = ["EdgeDelta", "DeltaOutcome", "apply_delta"]

#: Recognised operation verbs, in the order they read in a delta file.
DELTA_OPS = ("insert", "delete")


@dataclass(frozen=True)
class EdgeDelta:
    """An ordered batch of edge insertions and deletions.

    Operations are ``("insert" | "delete", edge)`` pairs, applied in order:
    a later operation sees the effect of every earlier one, so inserting an
    edge and deleting it again inside one batch is legal (and a net no-op).
    Edges are canonicalised on construction; self-loops are rejected.
    """

    operations: Tuple[Tuple[str, Edge], ...]

    def __post_init__(self) -> None:
        canonical_ops: List[Tuple[str, Edge]] = []
        for item in self.operations:
            try:
                op, (u, v) = item
            except (TypeError, ValueError):
                raise DeltaError(
                    f"malformed delta operation {item!r}: expected "
                    "(op, (u, v)) pairs"
                ) from None
            if op not in DELTA_OPS:
                raise DeltaError(
                    f"unknown delta operation {op!r}; expected one of {DELTA_OPS}"
                )
            if u == v:
                raise DeltaError(f"delta contains the self-loop ({u!r}, {v!r})")
            canonical_ops.append((op, canonical_edge(u, v)))
        object.__setattr__(self, "operations", tuple(canonical_ops))

    @classmethod
    def inserting(cls, *edges: Edge) -> "EdgeDelta":
        """Return a delta inserting ``edges``, in the given order."""
        return cls(tuple(("insert", edge) for edge in edges))

    @classmethod
    def deleting(cls, *edges: Edge) -> "EdgeDelta":
        """Return a delta deleting ``edges``, in the given order."""
        return cls(tuple(("delete", edge) for edge in edges))

    @classmethod
    def from_edges(
        cls, insert: Iterable[Edge] = (), delete: Iterable[Edge] = ()
    ) -> "EdgeDelta":
        """Return a delta applying the deletions first, then the insertions.

        Deletions-first makes rewiring batches (replace edge A by edge B)
        express naturally; pass explicit ``operations`` for full control of
        the interleaving.
        """
        return cls(
            tuple(("delete", edge) for edge in delete)
            + tuple(("insert", edge) for edge in insert)
        )

    @property
    def inserted(self) -> Tuple[Edge, ...]:
        """The edges of the insert operations, in operation order."""
        return tuple(edge for op, edge in self.operations if op == "insert")

    @property
    def deleted(self) -> Tuple[Edge, ...]:
        """The edges of the delete operations, in operation order."""
        return tuple(edge for op, edge in self.operations if op == "delete")

    def __len__(self) -> int:
        return len(self.operations)

    def __add__(self, other: "EdgeDelta") -> "EdgeDelta":
        if not isinstance(other, EdgeDelta):
            return NotImplemented
        return EdgeDelta(self.operations + other.operations)


@dataclass(frozen=True)
class DeltaOutcome:
    """The result of applying one :class:`EdgeDelta` to a built index.

    Attributes
    ----------
    index:
        The **new** :class:`TargetSubgraphIndex` over the updated phase-1
        graph — bit-identical to a from-scratch rebuild.  The index the
        delta was applied to is untouched (copy-on-write: in-flight readers
        keep serving the pre-delta state).
    changed_targets:
        The targets whose instance set actually changed (gained or lost
        instances), in problem order.  This is what the service uses to
        invalidate only the affected subset sub-sessions.
    instances_removed / instances_added:
        How many motif instances the delta destroyed / created.
    edges_deleted / edges_inserted:
        The *net* edge-set change (an insert-then-delete round trip counts
        zero).
    targets_reenumerated:
        How many targets the insert walk re-enumerated (diagnostics: the
        incremental cost driver, 0 for pure deletions).
    """

    index: TargetSubgraphIndex
    changed_targets: Tuple[Edge, ...]
    instances_removed: int
    instances_added: int
    edges_deleted: int
    edges_inserted: int
    targets_reenumerated: int


def _net_effect(
    index: TargetSubgraphIndex, delta: EdgeDelta
) -> Tuple[List[int], List[Edge]]:
    """Replay the operations in order; return the net (deleted ids, inserts).

    Raises :class:`DeltaError` on any operation inconsistent with the state
    it applies to (insert of an existing edge or of a hidden target link,
    delete of an absent edge).
    """
    indexed = index.indexed_graph
    target_set = set(index.targets)
    overlay: Dict[Edge, bool] = {}
    for op, edge in delta.operations:
        present = overlay.get(edge)
        if present is None:
            present = indexed.find_edge_id(*edge) is not None
        if op == "insert":
            if edge in target_set:
                raise DeltaError(
                    f"cannot insert {edge!r}: it is a hidden target link — "
                    "targets stay removed (phase 1) while the index serves"
                )
            if present:
                raise DeltaError(
                    f"cannot insert {edge!r}: it is already an edge of the "
                    "phase-1 graph"
                )
            overlay[edge] = True
        else:
            if not present:
                raise DeltaError(
                    f"cannot delete {edge!r}: it is not an edge of the "
                    "phase-1 graph"
                )
            overlay[edge] = False
    deleted_ids: List[int] = []
    inserted: List[Edge] = []
    for edge, present in overlay.items():
        edge_id = indexed.find_edge_id(*edge)
        if present and edge_id is None:
            inserted.append(edge)
        elif not present and edge_id is not None:
            deleted_ids.append(edge_id)
    return deleted_ids, inserted


def _radius_ball(
    indexed: IndexedGraph, seeds: Iterable[int], radius: int
) -> Set[int]:
    """Node ids within ``radius`` hops of any seed (BFS over the CSR rows)."""
    indptr, neighbors, _ = indexed.csr()
    ball = set(seeds)
    frontier = set(ball)
    for _ in range(radius):
        reached: Set[int] = set()
        # reprolint: disable=R1-set-iteration(BFS frontier only unions neighbor ranges into a set; the union is order-insensitive)
        for node in frontier:
            reached.update(neighbors[indptr[node] : indptr[node + 1]])
        frontier = reached - ball
        if not frontier:
            break
        ball |= frontier
    return ball


def _targets_to_reenumerate(
    index: TargetSubgraphIndex,
    new_indexed: IndexedGraph,
    inserted: Sequence[Edge],
) -> Set[int]:
    """Target positions that may *gain* instances from the inserted edges.

    An inserted edge that lands in an instance of target ``(u, v)`` has
    *both* endpoints among the instance's nodes, and every node of an
    instance sits within the motif's ``delta_radius`` hops of ``u`` or ``v``
    along instance edges — all of which exist in the updated graph.  So the
    target can gain an instance only if **each** endpoint of some inserted
    edge has ``u`` or ``v`` inside its own radius ball (one BFS per
    inserted-edge endpoint, over the updated CSR).  Requiring both
    endpoints — not just one — is what keeps a random far-apart insertion
    from touching any target at all.  The test still overshoots (being near
    does not force a new instance), which costs a re-enumeration that
    reproduces the old block, never correctness.  Motifs without a declared
    radius re-enumerate every target.
    """
    if not inserted:
        return set()
    radius = getattr(index.motif, "delta_radius", None)
    if radius is None:
        return set(range(len(index.targets)))
    balls: Dict[int, Set[int]] = {}
    for edge in inserted:
        for x in edge:
            seed = new_indexed.node_id(x)
            if seed not in balls:
                balls[seed] = _radius_ball(new_indexed, (seed,), radius)
    node_id = new_indexed._node_id
    positions: Set[int] = set()
    for position, (u, v) in enumerate(index.targets):
        u_id = node_id.get(u)
        v_id = node_id.get(v)
        for a, b in inserted:
            ball_a = balls[node_id[a]]
            ball_b = balls[node_id[b]]
            if (u_id in ball_a or v_id in ball_a) and (
                u_id in ball_b or v_id in ball_b
            ):
                positions.add(position)
                break
    return positions


def apply_delta(index: TargetSubgraphIndex, delta: EdgeDelta) -> DeltaOutcome:
    """Apply ``delta`` to ``index``; return the outcome with the new index.

    The returned index is bit-identical — all
    :data:`~repro.motifs.enumeration.INDEX_ARRAY_FIELDS`, the counter
    matrix, the graph CSR — to ``TargetSubgraphIndex(updated_phase1_graph,
    targets, motif)``, at a cost of the array splices plus re-enumerating
    only the targets near the inserted edges.  See the module docstring for
    the algorithm.
    """
    if not isinstance(delta, EdgeDelta):
        delta = EdgeDelta(tuple(delta))
    deleted_ids, inserted = _net_effect(index, delta)
    if not deleted_ids and not inserted:
        return DeltaOutcome(
            index=index,
            changed_targets=(),
            instances_removed=0,
            instances_added=0,
            edges_deleted=0,
            edges_inserted=0,
            targets_reenumerated=0,
        )

    new_indexed, edge_id_map, _node_id_map = index.indexed_graph._apply_edge_delta(
        deleted_ids, inserted
    )

    # destroyed instances: one gather per deleted edge off the inverse CSR
    destroyed = np.zeros(index.number_of_instances(), dtype=bool)
    edge_indptr = index._edge_indptr
    edge_inst_ids = index._edge_inst_ids
    for edge_id in deleted_ids:
        destroyed[edge_inst_ids[edge_indptr[edge_id] : edge_indptr[edge_id + 1]]] = True

    reenumerate = _targets_to_reenumerate(index, new_indexed, inserted)
    # the tuple fallback (and any custom id-space walk) receives a real
    # Graph view of the updated phase-1 graph, same as a fresh build would;
    # the built-in CSR walks declare needs_graph = False, sparing small
    # deltas the O(n + m) adjacency materialisation
    needs_graph = getattr(index.motif, "needs_graph", True)
    new_graph = new_indexed.to_graph() if (reenumerate and needs_graph) else None

    old_members = index._inst_edge_ids
    remapped = edge_id_map[old_members] if len(old_members) else old_members
    old_indptr = index._inst_indptr
    old_arities = np.diff(old_indptr)

    edge_parts: List[np.ndarray] = []
    arity_parts: List[np.ndarray] = []
    counts: List[int] = []
    changed: List[Edge] = []
    instances_added = 0
    motif = index.motif
    targets = index.targets
    for position, (start, end) in enumerate(index._target_ranges):
        block_destroyed = destroyed[start:end]
        n_destroyed = int(block_destroyed.sum())
        if position in reenumerate:
            edge_buffer, arity_buffer, block_counts = _enumerate_buffers(
                new_indexed, new_graph, motif, (targets[position],)
            )
            fresh_count = int(block_counts[0])
            if len(edge_buffer):
                edge_parts.append(np.frombuffer(edge_buffer, dtype=NP_LONG))
            if len(arity_buffer):
                arity_parts.append(np.frombuffer(arity_buffer, dtype=NP_LONG))
            counts.append(fresh_count)
            surviving = (end - start) - n_destroyed
            instances_added += fresh_count - surviving
            if n_destroyed or fresh_count != surviving:
                changed.append(targets[position])
            continue
        if not n_destroyed:
            # untouched target: its whole block survives as one remapped slice
            edge_parts.append(remapped[old_indptr[start] : old_indptr[end]])
            arity_parts.append(old_arities[start:end])
            counts.append(end - start)
            continue
        kept = np.flatnonzero(~block_destroyed) + start
        kept_arities = old_arities[kept]
        positive = kept_arities > 0
        if positive.any():
            positions = _flat_ranges(
                old_indptr[kept[positive]], kept_arities[positive]
            )
            edge_parts.append(remapped[positions])
        arity_parts.append(kept_arities)
        counts.append(len(kept))
        changed.append(targets[position])

    edge_buffer = (
        np.concatenate(edge_parts) if edge_parts else np.empty(0, dtype=NP_LONG)
    )
    arity_buffer = (
        np.concatenate(arity_parts) if arity_parts else np.empty(0, dtype=NP_LONG)
    )
    new_index = TargetSubgraphIndex._from_buffers(
        new_indexed, targets, motif, edge_buffer, arity_buffer, counts
    )
    return DeltaOutcome(
        index=new_index,
        changed_targets=tuple(changed),
        instances_removed=int(destroyed.sum()),
        instances_added=instances_added,
        edges_deleted=len(deleted_ids),
        edges_inserted=len(inserted),
        targets_reenumerated=len(reenumerate),
    )
