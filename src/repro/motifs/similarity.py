"""Similarity and dissimilarity scores computed directly from a graph.

These functions recount motif instances from scratch on every call.  They are
the reference ("recount") implementation used by the paper's non-scalable
greedy algorithms and by the test suite to cross-check the incremental
coverage engine in :mod:`repro.motifs.enumeration`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Union

from repro.exceptions import ConstantError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.motifs.base import MotifPattern, coerce_motif

__all__ = [
    "similarity",
    "total_similarity",
    "similarity_by_target",
    "dissimilarity",
    "default_constant",
]


def similarity(graph: Graph, target: Edge, motif: Union[str, MotifPattern]) -> int:
    """Return ``s(t)``: the number of target subgraphs of ``target`` in ``graph``."""
    pattern = coerce_motif(motif)
    return pattern.count(graph, target)


def similarity_by_target(
    graph: Graph, targets: Iterable[Edge], motif: Union[str, MotifPattern]
) -> Dict[Edge, int]:
    """Return a mapping target -> ``s(t)`` for every target."""
    pattern = coerce_motif(motif)
    return {
        canonical_edge(*target): pattern.count(graph, target) for target in targets
    }


def total_similarity(
    graph: Graph, targets: Iterable[Edge], motif: Union[str, MotifPattern]
) -> int:
    """Return ``s(P, T) = sum_t s(P, t)`` on the given (already perturbed) graph."""
    pattern = coerce_motif(motif)
    return sum(pattern.count(graph, target) for target in targets)


def default_constant(graph: Graph, targets: Sequence[Edge], motif: Union[str, MotifPattern]) -> int:
    """Return the paper's constant ``C``: the initial total similarity ``s(∅, T)``.

    Any ``C >= s(∅, T)`` keeps the dissimilarity non-negative; using exactly
    the initial similarity makes ``f(∅, T) = 0`` and turns the dissimilarity
    into "number of target subgraphs broken so far", which is the quantity
    the paper's figures track (inverted).
    """
    return total_similarity(graph, targets, motif)


def dissimilarity(
    graph: Graph,
    targets: Sequence[Edge],
    motif: Union[str, MotifPattern],
    constant: int,
) -> int:
    """Return ``f(P, T) = C - s(P, T)`` evaluated on ``graph``.

    Raises
    ------
    ValueError
        If ``constant`` is smaller than the current total similarity, which
        would make the dissimilarity negative (the paper requires
        ``C >= s(∅, T)``).
    """
    current = total_similarity(graph, targets, motif)
    if constant < current:
        raise ConstantError(
            f"constant C={constant} is smaller than the total similarity {current}"
        )
    return constant - current
