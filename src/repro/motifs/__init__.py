"""Motif patterns, target-subgraph enumeration and similarity scores."""

from repro.motifs.base import (
    MotifInstance,
    MotifPattern,
    available_motifs,
    coerce_motif,
    get_motif,
    register_motif,
)
from repro.motifs.enumeration import (
    CoverageState,
    InstanceId,
    SetCoverageState,
    TargetSubgraphIndex,
)
from repro.motifs.extra import Clique4Motif, CliqueMotif, Path4Motif, PathMotif
from repro.motifs.rectangle import RectangleMotif
from repro.motifs.rectri import RecTriMotif
from repro.motifs.similarity import (
    default_constant,
    dissimilarity,
    similarity,
    similarity_by_target,
    total_similarity,
)
from repro.motifs.triangle import TriangleMotif
from repro.motifs.updates import DeltaOutcome, EdgeDelta, apply_delta

__all__ = [
    "EdgeDelta",
    "DeltaOutcome",
    "apply_delta",
    "MotifPattern",
    "MotifInstance",
    "register_motif",
    "get_motif",
    "available_motifs",
    "coerce_motif",
    "TriangleMotif",
    "RectangleMotif",
    "RecTriMotif",
    "PathMotif",
    "CliqueMotif",
    "Path4Motif",
    "Clique4Motif",
    "TargetSubgraphIndex",
    "CoverageState",
    "SetCoverageState",
    "InstanceId",
    "similarity",
    "similarity_by_target",
    "total_similarity",
    "dissimilarity",
    "default_constant",
]
