"""Target-subgraph enumeration and the incremental coverage kernel.

The scalable implementations of the paper (SGB/CT/WT-Greedy-R, Lemma 5) rest
on two observations about the phase-1 graph (targets already deleted):

1. deleting protectors can only *destroy* motif instances, never create new
   ones, so the set ``W`` of target subgraphs can be enumerated once, and
2. only edges that participate in some target subgraph can ever have a
   positive marginal gain.

:class:`TargetSubgraphIndex` materialises ``W`` once over an
:class:`~repro.graphs.indexed.IndexedGraph` snapshot of the phase-1 graph, so
every instance and every edge is addressed by a dense integer id:

* ``instance -> edge ids`` as a flat CSR array (``_inst_indptr`` /
  ``_inst_edge_ids``),
* ``edge id -> instances`` as the inverse CSR (``_edge_indptr`` /
  ``_edge_inst_ids``), and
* ``instance -> target index`` as a flat array.

:class:`CoverageState` layers the mutable greedy bookkeeping on top: an alive
bitmask over instances and — the heart of the kernel — **live-gain counters
maintained incrementally**, both per edge and per (edge, target).  The
per-(edge, target) counter matrix is a CSR over the same edge ids (row of an
edge lists the targets it touches, ``_et_indptr`` / ``_et_tidx``); deleting an
edge walks the instances it kills exactly once and decrements the total *and*
the matrix entry of every sibling edge, so

* :meth:`CoverageState.gain` is O(1) (a counter read),
* :meth:`CoverageState.gain_by_target` is O(#targets touching the edge)
  (one matrix row, no instance rescan),
* :meth:`CoverageState.candidate_edges` is O(|candidate edges|) with no
  per-edge rescan,
* :meth:`CoverageState.top_gain_edge` is amortised O(log) via a lazy max-heap
  (valid because gains only ever decrease), and
* :meth:`CoverageState.best_scored_pair` — the cross-target greedy's argmax
  over ``(target, edge)`` pairs scored ``own + (total - own) / C`` — is
  amortised sublinear in the candidate count via per-target lazy max-heaps
  (valid because own-gains and totals only ever decrease).

Enumeration itself (pass 1) runs over the :class:`IndexedGraph` CSR rows via
:meth:`~repro.motifs.base.MotifPattern.enumerate_instance_edge_ids`, so the
built-in motifs intersect integer adjacency rows instead of hashing node
tuples; custom motifs fall back to the tuple-based
``enumerate_instances`` transparently.

:class:`SetCoverageState` preserves the previous hash-set implementation as an
executable reference: the differential tests in
``tests/property/test_kernel_differential.py`` assert that the kernel, the set
state and a from-scratch recount agree on every trace.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import MotifError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.indexed import IndexedGraph
from repro.motifs.base import MotifInstance, MotifPattern, coerce_motif

__all__ = [
    "TargetSubgraphIndex",
    "CoverageState",
    "SetCoverageState",
    "InstanceId",
]

#: Opaque identifier of one enumerated target subgraph.
InstanceId = int


class TargetSubgraphIndex:
    """Immutable enumeration of all target subgraphs ``W`` for a target set.

    Parameters
    ----------
    graph:
        The phase-1 graph (all targets already removed).
    targets:
        The hidden target links.
    motif:
        The subgraph pattern (name or :class:`MotifPattern`).

    Notes
    -----
    Every instance is assigned an integer id; instances of one target occupy a
    contiguous id range (the paper's ``W_t ∩ W_t' = ∅`` property for the
    *target* attribution; a protector edge, on the other hand, may participate
    in instances of many targets).  Edges are addressed by the dense edge ids
    of the underlying :class:`~repro.graphs.indexed.IndexedGraph`, whose order
    matches the library-wide ``edge_sort_key`` tie-breaking.
    """

    def __init__(
        self,
        graph: Graph,
        targets: Sequence[Edge],
        motif: Union[str, MotifPattern],
    ) -> None:
        self._motif = coerce_motif(motif)
        self._targets: Tuple[Edge, ...] = tuple(
            canonical_edge(*target) for target in targets
        )
        for target in self._targets:
            if graph.has_edge(*target):
                raise MotifError(
                    f"target {target!r} is still an edge of the graph; "
                    "remove all targets (phase 1) before building the index"
                )

        indexed = IndexedGraph(graph)
        self._indexed = indexed
        self._target_index: Dict[Edge, int] = {
            target: position for position, target in enumerate(self._targets)
        }

        # ------------------------------------------------------------------
        # pass 1: enumerate instances directly in edge-id space — the
        # built-in motifs walk the IndexedGraph CSR rows (integer merges and
        # lookups), custom motifs fall back to tuple enumeration translated
        # once at this boundary (the kernel never hashes tuples afterwards)
        # ------------------------------------------------------------------
        inst_indptr: List[int] = [0]
        inst_edge_ids: List[int] = []
        inst_target_idx: List[int] = []
        target_ranges: List[Tuple[int, int]] = []
        for position, target in enumerate(self._targets):
            start = len(inst_target_idx)
            for edge_ids in self._motif.enumerate_instance_edge_ids(
                indexed, graph, target
            ):
                inst_edge_ids.extend(edge_ids)
                inst_indptr.append(len(inst_edge_ids))
                inst_target_idx.append(position)
            target_ranges.append((start, len(inst_target_idx)))

        self._inst_indptr = array("l", inst_indptr)
        self._inst_edge_ids = array("l", inst_edge_ids)
        self._inst_target_idx = array("l", inst_target_idx)
        self._target_ranges: Tuple[Tuple[int, int], ...] = tuple(target_ranges)

        # ------------------------------------------------------------------
        # pass 2: invert into the edge id -> instances CSR
        # ------------------------------------------------------------------
        m = indexed.number_of_edges()
        counts = array("l", [0] * (m + 1))
        for edge_id in self._inst_edge_ids:
            counts[edge_id + 1] += 1
        for edge_id in range(m):
            counts[edge_id + 1] += counts[edge_id]
        edge_indptr = counts  # now the CSR offsets
        edge_inst_ids = array("l", [0] * len(self._inst_edge_ids))
        cursor = array("l", edge_indptr[:m])
        number_of_instances = len(self._inst_target_idx)
        for instance_id in range(number_of_instances):
            for position in range(
                self._inst_indptr[instance_id], self._inst_indptr[instance_id + 1]
            ):
                edge_id = self._inst_edge_ids[position]
                edge_inst_ids[cursor[edge_id]] = instance_id
                cursor[edge_id] += 1
        self._edge_indptr = edge_indptr
        self._edge_inst_ids = edge_inst_ids

        # ------------------------------------------------------------------
        # pass 3: per-(edge, target) counter matrix, CSR over edge ids.
        # The row of an edge lists the targets whose instances contain it
        # (tidx ascending: each edge's instance list is ascending and
        # instance ids are contiguous per target) with the initial counts.
        # ------------------------------------------------------------------
        et_indptr = array("l", [0] * (m + 1))
        et_tidx: List[int] = []
        et_count: List[int] = []
        slot_of: Dict[Tuple[int, int], int] = {}
        inst_target = self._inst_target_idx
        for edge_id in range(m):
            previous_tidx = -1
            for position in range(edge_indptr[edge_id], edge_indptr[edge_id + 1]):
                tidx = inst_target[edge_inst_ids[position]]
                if tidx != previous_tidx:
                    slot_of[(edge_id, tidx)] = len(et_tidx)
                    et_tidx.append(tidx)
                    et_count.append(0)
                    previous_tidx = tidx
                et_count[-1] += 1
            et_indptr[edge_id + 1] = len(et_tidx)
        self._et_indptr = et_indptr
        self._et_tidx = array("l", et_tidx)
        self._et_initial_count = array("l", et_count)
        # membership position -> matrix slot of (sibling edge, instance's
        # target), so the kill walk decrements the matrix entry with one
        # array read instead of a hash lookup
        inst_slot = array("l", [0] * len(self._inst_edge_ids))
        for instance_id in range(number_of_instances):
            tidx = inst_target[instance_id]
            for position in range(
                self._inst_indptr[instance_id], self._inst_indptr[instance_id + 1]
            ):
                inst_slot[position] = slot_of[(self._inst_edge_ids[position], tidx)]
        self._inst_slot = inst_slot

        #: Candidate edge ids (edges in >= 1 instance), ascending == sorted
        #: by ``edge_sort_key`` thanks to the IndexedGraph id order.
        self._candidate_ids: Tuple[int, ...] = tuple(
            edge_id
            for edge_id in range(m)
            if edge_indptr[edge_id + 1] > edge_indptr[edge_id]
        )

        # edge -> frozenset(instance ids), materialised lazily on first use:
        # only the tuple-level accessors and SetCoverageState need it (the
        # kernel reads the CSR directly), but once built it must be O(1) per
        # lookup so the set state keeps the seed implementation's cost profile
        self._edge_to_instances: Optional[Dict[Edge, FrozenSet[InstanceId]]] = None

    # ------------------------------------------------------------------
    # read-only accessors
    # ------------------------------------------------------------------
    @property
    def motif(self) -> MotifPattern:
        """The motif pattern the index was built for."""
        return self._motif

    @property
    def targets(self) -> Tuple[Edge, ...]:
        """The canonical target links, in input order."""
        return self._targets

    @property
    def indexed_graph(self) -> IndexedGraph:
        """The dense-id snapshot of the phase-1 graph the kernel runs on."""
        return self._indexed

    def number_of_instances(self) -> int:
        """Return ``|W|``, the total number of target subgraphs."""
        return len(self._inst_target_idx)

    def number_of_candidate_edges(self) -> int:
        """Return how many distinct edges participate in target subgraphs."""
        return len(self._candidate_ids)

    def instances_of(self, target: Edge) -> Tuple[InstanceId, ...]:
        """Return the instance ids belonging to ``target`` (``W_t``)."""
        start, end = self._target_ranges[self._target_position(target)]
        return tuple(range(start, end))

    def initial_similarity(self, target: Edge) -> int:
        """Return ``s(∅, t) = |W_t|`` for ``target``."""
        start, end = self._target_ranges[self._target_position(target)]
        return end - start

    def initial_total_similarity(self) -> int:
        """Return ``s(∅, T) = |W|``."""
        return len(self._inst_target_idx)

    def edges_of_instance(self, instance_id: InstanceId) -> MotifInstance:
        """Return the protector edges of one instance."""
        edge_at = self._indexed.edge_at
        return frozenset(
            edge_at(self._inst_edge_ids[position])
            for position in range(
                self._inst_indptr[instance_id], self._inst_indptr[instance_id + 1]
            )
        )

    def target_of_instance(self, instance_id: InstanceId) -> Edge:
        """Return the target an instance belongs to."""
        return self._targets[self._inst_target_idx[instance_id]]

    def instances_containing(self, edge: Edge) -> FrozenSet[InstanceId]:
        """Return all instance ids that contain ``edge`` (empty if none)."""
        if self._edge_to_instances is None:
            edge_at = self._indexed.edge_at
            indptr = self._edge_indptr
            inst_ids = self._edge_inst_ids
            self._edge_to_instances = {
                edge_at(edge_id): frozenset(
                    inst_ids[indptr[edge_id] : indptr[edge_id + 1]]
                )
                for edge_id in self._candidate_ids
            }
        return self._edge_to_instances.get(canonical_edge(*edge), frozenset())

    def candidate_edges(self) -> Set[Edge]:
        """Return every edge participating in at least one target subgraph.

        By Lemma 5 of the paper these are the only edges worth considering as
        protectors; the scalable ``-R`` algorithms restrict their search to
        this set.
        """
        edge_at = self._indexed.edge_at
        return {edge_at(edge_id) for edge_id in self._candidate_ids}

    def candidate_edge_list(self) -> List[Edge]:
        """Return the candidate edges in deterministic ``edge_sort_key`` order.

        Unlike :meth:`candidate_edges` (a set, for membership tests) the list
        form has a stable iteration order across processes and hash seeds,
        which the baselines and greedy loops rely on for reproducibility.
        """
        edge_at = self._indexed.edge_at
        return [edge_at(edge_id) for edge_id in self._candidate_ids]

    def candidate_edges_of(self, target: Edge) -> Set[Edge]:
        """Return the edges participating in some instance of ``target``."""
        start, end = self._target_ranges[self._target_position(target)]
        edge_at = self._indexed.edge_at
        return {
            edge_at(self._inst_edge_ids[position])
            for instance_id in range(start, end)
            for position in range(
                self._inst_indptr[instance_id], self._inst_indptr[instance_id + 1]
            )
        }

    def new_state(self) -> "CoverageState":
        """Return a fresh mutable array-backed :class:`CoverageState`."""
        return CoverageState(self)

    def new_set_state(self) -> "SetCoverageState":
        """Return the hash-set reference implementation of the state.

        Slower than :meth:`new_state`; kept as the executable specification
        the kernel is differentially tested against.
        """
        return SetCoverageState(self)

    # ------------------------------------------------------------------
    # internal helpers shared with the states
    # ------------------------------------------------------------------
    def _target_position(self, target: Edge) -> int:
        return self._target_index[canonical_edge(*target)]


class CoverageState:
    """Array-backed mutable view tracking which target subgraphs are alive.

    Deleting an edge kills every alive instance containing it and eagerly
    decrements the live-gain counter of each sibling edge, so marginal-gain
    queries are O(1) counter reads and :meth:`top_gain_edge` pops an exact
    maximum from a lazily-repaired heap (gains are monotone non-increasing,
    which makes stale heap entries safe to re-validate on pop).
    """

    def __init__(self, index: TargetSubgraphIndex) -> None:
        self._index = index
        n_instances = index.number_of_instances()
        self._alive = bytearray(b"\x01") * n_instances
        self._alive_total = n_instances
        self._alive_by_tidx = array(
            "l", (end - start for start, end in index._target_ranges)
        )
        # live-gain counters: gain[edge_id] == alive instances containing it
        self._gain = array(
            "l",
            (
                index._edge_indptr[edge_id + 1] - index._edge_indptr[edge_id]
                for edge_id in range(index.indexed_graph.number_of_edges())
            ),
        )
        # per-(edge, target) live counters: entry s of the index's counter
        # matrix currently counts the alive instances of target _et_tidx[s]
        # containing the row's edge
        self._et_count = array("l", index._et_initial_count)
        self._deleted_edges: List[Edge] = []
        # lazy max-heap of (-gain, edge_id); built on first top-gain query
        self._heap: Optional[List[Tuple[int, int]]] = None
        # per-target lazy max-heaps of (-score key, edge_id) for
        # best_scored_pair, built on first use and keyed to one constant C
        self._pair_heaps: Dict[int, List[Tuple[int, int]]] = {}
        self._pair_constant: Optional[int] = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def index(self) -> TargetSubgraphIndex:
        """The immutable index this state is layered on."""
        return self._index

    @property
    def deleted_edges(self) -> Tuple[Edge, ...]:
        """Edges deleted so far, in deletion order."""
        return tuple(self._deleted_edges)

    def total_similarity(self) -> int:
        """Return the current ``s(P, T)`` (alive instances)."""
        return self._alive_total

    def similarity_of(self, target: Edge) -> int:
        """Return the current ``s(P, t)`` for ``target``."""
        return self._alive_by_tidx[self._index._target_position(target)]

    def similarity_by_target(self) -> Dict[Edge, int]:
        """Return the current per-target similarities."""
        return {
            target: self._alive_by_tidx[position]
            for position, target in enumerate(self._index.targets)
        }

    def is_fully_protected(self) -> bool:
        """Return whether every target subgraph has been broken."""
        return self._alive_total == 0

    def gain(self, edge: Edge) -> int:
        """Return how many alive instances deleting ``edge`` would break.

        O(1): reads the incrementally maintained live-gain counter.
        """
        edge_id = self._index._indexed.find_edge_id(*edge)
        if edge_id is None:
            return 0
        return self._gain[edge_id]

    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        """Return per-target counts of alive instances ``edge`` would break.

        O(#targets touching the edge): one row of the per-(edge, target)
        counter matrix, no instance rescan.  Targets are listed in target
        index (problem) order, matching the other engines.
        """
        edge_id = self._index._indexed.find_edge_id(*edge)
        if edge_id is None or self._gain[edge_id] == 0:
            return {}
        index = self._index
        targets = index.targets
        et_tidx = index._et_tidx
        et_count = self._et_count
        return {
            targets[et_tidx[slot]]: et_count[slot]
            for slot in range(
                index._et_indptr[edge_id], index._et_indptr[edge_id + 1]
            )
            if et_count[slot] > 0
        }

    def gain_for_target(self, edge: Edge, target: Edge) -> int:
        """Return alive instances of ``target`` that deleting ``edge`` breaks.

        O(#targets touching the edge): a counter-matrix row scan.
        """
        edge_id = self._index._indexed.find_edge_id(*edge)
        if edge_id is None or self._gain[edge_id] == 0:
            return 0
        return self._own_gain(edge_id, self._index._target_position(target))

    def _own_gain(self, edge_id: int, tidx: int) -> int:
        """Return the live (edge, target) counter; rows are tidx-ascending."""
        index = self._index
        et_tidx = index._et_tidx
        for slot in range(index._et_indptr[edge_id], index._et_indptr[edge_id + 1]):
            entry = et_tidx[slot]
            if entry == tidx:
                return self._et_count[slot]
            if entry > tidx:
                break
        return 0

    def candidate_edges(self) -> Set[Edge]:
        """Return undeleted edges that still break at least one alive instance.

        O(|candidate edges|): a deleted or dead edge has a zero counter, so no
        per-edge instance rescan is needed.
        """
        edge_at = self._index._indexed.edge_at
        gain = self._gain
        return {
            edge_at(edge_id)
            for edge_id in self._index._candidate_ids
            if gain[edge_id] > 0
        }

    def candidate_edge_list(self) -> List[Edge]:
        """Return the live candidates in deterministic ``edge_sort_key`` order."""
        edge_at = self._index._indexed.edge_at
        gain = self._gain
        return [
            edge_at(edge_id)
            for edge_id in self._index._candidate_ids
            if gain[edge_id] > 0
        ]

    def iter_positive_gains(self) -> Iterator[Tuple[Edge, int]]:
        """Yield ``(edge, live gain)`` for every live candidate, in
        deterministic ``edge_sort_key`` order.

        Mirrors the generic engine sweep exactly: the candidate list is
        snapshotted before the first yield, but each gain is read live and
        candidates that died mid-iteration are skipped — so callers that
        delete edges while iterating observe the same sequence on every
        engine.
        """
        edge_at = self._index._indexed.edge_at
        gain = self._gain
        snapshot = [
            edge_id
            for edge_id in self._index._candidate_ids
            if gain[edge_id] > 0
        ]
        for edge_id in snapshot:
            value = gain[edge_id]
            if value > 0:
                yield edge_at(edge_id), value

    def gains_for_target(self, target: Edge) -> Dict[Edge, int]:
        """Return ``{edge: alive instances of target it breaks}`` for every
        edge with a positive own-gain for ``target``.

        One pass over the target's alive instances — the within-target greedy
        uses this instead of probing every graph edge.  Keys are emitted in
        deterministic ``edge_sort_key`` order.
        """
        index = self._index
        counts = self._own_gains_by_edge_id(index._target_position(target))
        edge_at = index._indexed.edge_at
        return {edge_at(edge_id): count for edge_id, count in sorted(counts.items())}

    def _own_gains_by_edge_id(self, tidx: int) -> Dict[int, int]:
        """One pass over a target's alive instances: ``{edge id: own gain}``."""
        index = self._index
        start, end = index._target_ranges[tidx]
        counts: Dict[int, int] = {}
        for instance_id in range(start, end):
            if self._alive[instance_id]:
                for position in range(
                    index._inst_indptr[instance_id],
                    index._inst_indptr[instance_id + 1],
                ):
                    edge_id = index._inst_edge_ids[position]
                    counts[edge_id] = counts.get(edge_id, 0) + 1
        return counts

    def best_scored_pair(
        self, targets: Sequence[Edge], constant: int
    ) -> Optional[Tuple[int, Edge, Edge]]:
        """Return ``(key, target, edge)`` maximising the MLBT score over the
        given targets and the live candidate edges, or ``None`` if no pair
        has a positive own-gain.

        The integer key is ``own * (constant - 1) + total``; dividing by
        ``constant`` gives the paper's ``Δ_t^p = own + (total - own) / C``,
        so maximising the key maximises the score with exact integer
        arithmetic.  Ties break toward the smallest edge id (== smallest
        ``edge_sort_key``) and then toward the earliest target in
        ``targets`` — identical to a deterministic edge-major sweep over
        ``gain_by_target`` rows.

        Amortised sublinear in the candidate count: each queried target
        keeps a lazy max-heap of stale keys over its own-gain edges (sound
        because own-gains and totals only ever decrease, so a stale key is
        an upper bound), and a query validates heap tops only.
        """
        if constant != self._pair_constant:
            self._pair_heaps = {}
            self._pair_constant = constant
        index = self._index
        best: Optional[Tuple[int, int, Edge]] = None  # (key, edge_id, target)
        for target in targets:
            top = self._pair_heap_top(index._target_position(target), constant)
            if top is None:
                continue
            key, edge_id = top
            if best is None or key > best[0] or (key == best[0] and edge_id < best[1]):
                best = (key, edge_id, target)
        if best is None:
            return None
        return best[0], best[2], index._indexed.edge_at(best[1])

    def _pair_heap_top(self, tidx: int, constant: int) -> Optional[Tuple[int, int]]:
        """Return the validated ``(key, edge id)`` top of one target's heap."""
        heap = self._pair_heaps.get(tidx)
        weight = constant - 1
        gain = self._gain
        if heap is None:
            heap = [
                (-(own * weight + gain[edge_id]), edge_id)
                for edge_id, own in sorted(self._own_gains_by_edge_id(tidx).items())
            ]
            heapq.heapify(heap)
            self._pair_heaps[tidx] = heap
        while heap:
            negative, edge_id = heap[0]
            own = self._own_gain(edge_id, tidx)
            if own <= 0:
                heapq.heappop(heap)
                continue
            key = own * weight + gain[edge_id]
            if -negative == key:
                return key, edge_id
            heapq.heapreplace(heap, (-key, edge_id))
        return None

    def top_gain_edge(self) -> Optional[Tuple[Edge, int]]:
        """Return the ``(edge, gain)`` with maximal live gain, or ``None``.

        Ties break toward the smallest ``edge_sort_key`` (identical to the
        full-scan ``argmax_edge`` the plain greedy uses).  Amortised O(log m):
        the max-heap is repaired lazily, which is sound because live gains
        only ever decrease.
        """
        heap = self._heap
        if heap is None:
            gain = self._gain
            heap = [
                (-gain[edge_id], edge_id)
                for edge_id in self._index._candidate_ids
                if gain[edge_id] > 0
            ]
            heapq.heapify(heap)
            self._heap = heap
        gain = self._gain
        while heap:
            negative, edge_id = heap[0]
            current = gain[edge_id]
            if current <= 0:
                heapq.heappop(heap)
            elif -negative != current:
                heapq.heapreplace(heap, (-current, edge_id))
            else:
                return self._index._indexed.edge_at(edge_id), current
        return None

    def top_gain_edges(self, k: int) -> List[Tuple[Edge, int]]:
        """Return up to ``k`` distinct edges with the highest live gains.

        Ordered by descending gain, ties toward the smallest
        ``edge_sort_key``.  Note the gains are *individual* live gains; they
        overlap, so this is a candidate shortlist, not a batch selection.
        """
        if k <= 0:
            return []
        popped: List[Tuple[int, int]] = []
        result: List[Tuple[Edge, int]] = []
        # force heap construction via top_gain_edge, which also repairs the top
        while len(result) < k and self.top_gain_edge() is not None:
            entry = heapq.heappop(self._heap)  # validated by top_gain_edge
            popped.append(entry)
            result.append((self._index._indexed.edge_at(entry[1]), -entry[0]))
        for entry in popped:
            heapq.heappush(self._heap, entry)
        return result

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def delete_edge(self, edge: Edge) -> Dict[Edge, int]:
        """Delete ``edge`` and return the per-target counts of broken instances.

        Deleting an edge that touches no alive instance is allowed and
        returns an empty mapping (the greedy algorithms stop before doing
        this, but baselines such as RD routinely delete useless edges).

        Cost is proportional to the killed instances times their arity — the
        sibling-edge counters are decremented here so all later gain queries
        stay O(1).
        """
        edge = canonical_edge(*edge)
        self._deleted_edges.append(edge)
        index = self._index
        edge_id = index._indexed.find_edge_id(*edge)
        if edge_id is None or self._gain[edge_id] == 0:
            return {}
        alive = self._alive
        gain = self._gain
        et_count = self._et_count
        inst_slot = index._inst_slot
        broken_by_tidx: Dict[int, int] = {}
        for position in range(
            index._edge_indptr[edge_id], index._edge_indptr[edge_id + 1]
        ):
            instance_id = index._edge_inst_ids[position]
            if not alive[instance_id]:
                continue
            alive[instance_id] = 0
            tidx = index._inst_target_idx[instance_id]
            broken_by_tidx[tidx] = broken_by_tidx.get(tidx, 0) + 1
            self._alive_by_tidx[tidx] -= 1
            self._alive_total -= 1
            # decrement every sibling edge of the killed instance (including
            # the deleted edge itself, whose counters reach exactly zero):
            # both the per-edge total and the (edge, target) matrix entry
            for sibling_position in range(
                index._inst_indptr[instance_id], index._inst_indptr[instance_id + 1]
            ):
                gain[index._inst_edge_ids[sibling_position]] -= 1
                et_count[inst_slot[sibling_position]] -= 1
        targets = index.targets
        return {
            targets[tidx]: count for tidx, count in sorted(broken_by_tidx.items())
        }

    def delete_edges(self, edges: Iterable[Edge]) -> Dict[Edge, int]:
        """Delete several edges; return aggregated per-target broken counts."""
        total: Dict[Edge, int] = {}
        for edge in edges:
            for target, count in self.delete_edge(edge).items():
                total[target] = total.get(target, 0) + count
        return total

    def copy(self) -> "CoverageState":
        """Return an independent copy of this state (same underlying index)."""
        clone = CoverageState.__new__(CoverageState)
        clone._index = self._index
        clone._alive = bytearray(self._alive)
        clone._alive_total = self._alive_total
        clone._alive_by_tidx = array("l", self._alive_by_tidx)
        clone._gain = array("l", self._gain)
        clone._et_count = array("l", self._et_count)
        clone._deleted_edges = list(self._deleted_edges)
        # stale entries are safe: gains only decrease, pops re-validate
        clone._heap = list(self._heap) if self._heap is not None else None
        clone._pair_heaps = {
            tidx: list(heap) for tidx, heap in self._pair_heaps.items()
        }
        clone._pair_constant = self._pair_constant
        return clone


class SetCoverageState:
    """Hash-set reference implementation of the coverage state.

    This is the original (pre-kernel) formulation: alive instances in a set,
    gains recomputed by scanning the inverted index on every query.  It is
    retained as the executable specification for differential tests and the
    old-vs-new micro-benchmark (``benchmarks/bench_engine_kernel.py``); use
    :meth:`TargetSubgraphIndex.new_state` for real workloads.
    """

    def __init__(self, index: TargetSubgraphIndex) -> None:
        self._index = index
        self._alive: Set[InstanceId] = set(range(index.number_of_instances()))
        self._alive_by_target: Dict[Edge, int] = {
            target: index.initial_similarity(target) for target in index.targets
        }
        self._deleted_edges: List[Edge] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def index(self) -> TargetSubgraphIndex:
        """The immutable index this state is layered on."""
        return self._index

    @property
    def deleted_edges(self) -> Tuple[Edge, ...]:
        """Edges deleted so far, in deletion order."""
        return tuple(self._deleted_edges)

    def total_similarity(self) -> int:
        """Return the current ``s(P, T)`` (alive instances)."""
        return len(self._alive)

    def similarity_of(self, target: Edge) -> int:
        """Return the current ``s(P, t)`` for ``target``."""
        return self._alive_by_target[canonical_edge(*target)]

    def similarity_by_target(self) -> Dict[Edge, int]:
        """Return the current per-target similarities."""
        return dict(self._alive_by_target)

    def is_fully_protected(self) -> bool:
        """Return whether every target subgraph has been broken."""
        return not self._alive

    def gain(self, edge: Edge) -> int:
        """Return how many alive instances deleting ``edge`` would break."""
        instances = self._index.instances_containing(edge)
        if not instances:
            return 0
        return sum(1 for instance_id in instances if instance_id in self._alive)

    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        """Return per-target counts of alive instances ``edge`` would break.

        Instance ids are visited in sorted order; because ids are contiguous
        per target in target-input order, the resulting dict lists targets in
        the same order as the array kernel and the recount engine — CT's
        strict tie-breaking depends on that shared iteration order.
        """
        gains: Dict[Edge, int] = {}
        for instance_id in sorted(self._index.instances_containing(edge)):
            if instance_id in self._alive:
                target = self._index.target_of_instance(instance_id)
                gains[target] = gains.get(target, 0) + 1
        return gains

    def gain_for_target(self, edge: Edge, target: Edge) -> int:
        """Return alive instances of ``target`` that deleting ``edge`` breaks."""
        target = canonical_edge(*target)
        count = 0
        for instance_id in self._index.instances_containing(edge):
            if instance_id in self._alive and self._index.target_of_instance(
                instance_id
            ) == target:
                count += 1
        return count

    def candidate_edges(self) -> Set[Edge]:
        """Return undeleted edges that still break at least one alive instance."""
        candidates: Set[Edge] = set()
        deleted = set(self._deleted_edges)
        for edge in self._index.candidate_edges():
            if edge not in deleted and self.gain(edge) > 0:
                candidates.add(edge)
        return candidates

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def delete_edge(self, edge: Edge) -> Dict[Edge, int]:
        """Delete ``edge`` and return the per-target counts of broken instances."""
        edge = canonical_edge(*edge)
        broken: Dict[Edge, int] = {}
        for instance_id in self._index.instances_containing(edge):
            if instance_id in self._alive:
                self._alive.discard(instance_id)
                target = self._index.target_of_instance(instance_id)
                broken[target] = broken.get(target, 0) + 1
                self._alive_by_target[target] -= 1
        self._deleted_edges.append(edge)
        return broken

    def delete_edges(self, edges: Iterable[Edge]) -> Dict[Edge, int]:
        """Delete several edges; return aggregated per-target broken counts."""
        total: Dict[Edge, int] = {}
        for edge in edges:
            for target, count in self.delete_edge(edge).items():
                total[target] = total.get(target, 0) + count
        return total

    def copy(self) -> "SetCoverageState":
        """Return an independent copy of this state (same underlying index)."""
        clone = SetCoverageState(self._index)
        clone._alive = set(self._alive)
        clone._alive_by_target = dict(self._alive_by_target)
        clone._deleted_edges = list(self._deleted_edges)
        return clone
