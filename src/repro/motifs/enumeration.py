"""Target-subgraph enumeration and the incremental coverage index.

The scalable implementations of the paper (SGB/CT/WT-Greedy-R, Lemma 5) rest
on two observations about the phase-1 graph (targets already deleted):

1. deleting protectors can only *destroy* motif instances, never create new
   ones, so the set ``W`` of target subgraphs can be enumerated once, and
2. only edges that participate in some target subgraph can ever have a
   positive marginal gain.

:class:`TargetSubgraphIndex` materialises ``W`` with an inverted
``edge -> instances`` index; :class:`CoverageState` layers a mutable "which
instances are still alive" view on top of it so greedy algorithms can query
marginal gains and commit deletions in time proportional to the instances
touched.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple, Union

from repro.exceptions import MotifError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.motifs.base import MotifInstance, MotifPattern, coerce_motif

__all__ = ["TargetSubgraphIndex", "CoverageState", "InstanceId"]

#: Opaque identifier of one enumerated target subgraph.
InstanceId = int


class TargetSubgraphIndex:
    """Immutable enumeration of all target subgraphs ``W`` for a target set.

    Parameters
    ----------
    graph:
        The phase-1 graph (all targets already removed).
    targets:
        The hidden target links.
    motif:
        The subgraph pattern (name or :class:`MotifPattern`).

    Notes
    -----
    Every instance is assigned an integer id.  Because phase 1 removed all
    targets, each instance belongs to exactly one target (the paper's
    ``W_t ∩ W_t' = ∅`` property for the *target* attribution; a protector
    edge, on the other hand, may participate in instances of many targets).
    """

    def __init__(
        self,
        graph: Graph,
        targets: Sequence[Edge],
        motif: Union[str, MotifPattern],
    ) -> None:
        self._motif = coerce_motif(motif)
        self._targets: Tuple[Edge, ...] = tuple(
            canonical_edge(*target) for target in targets
        )
        for target in self._targets:
            if graph.has_edge(*target):
                raise MotifError(
                    f"target {target!r} is still an edge of the graph; "
                    "remove all targets (phase 1) before building the index"
                )

        instance_edges: List[MotifInstance] = []
        instance_target: List[Edge] = []
        instances_by_target: Dict[Edge, List[InstanceId]] = {
            target: [] for target in self._targets
        }
        edge_to_instances: Dict[Edge, Set[InstanceId]] = {}

        for target in self._targets:
            for edges in self._motif.enumerate_instances(graph, target):
                instance_id = len(instance_edges)
                instance_edges.append(edges)
                instance_target.append(target)
                instances_by_target[target].append(instance_id)
                for edge in edges:
                    edge_to_instances.setdefault(edge, set()).add(instance_id)

        self._instance_edges: Tuple[MotifInstance, ...] = tuple(instance_edges)
        self._instance_target: Tuple[Edge, ...] = tuple(instance_target)
        self._instances_by_target = {
            target: tuple(ids) for target, ids in instances_by_target.items()
        }
        self._edge_to_instances = {
            edge: frozenset(ids) for edge, ids in edge_to_instances.items()
        }

    # ------------------------------------------------------------------
    # read-only accessors
    # ------------------------------------------------------------------
    @property
    def motif(self) -> MotifPattern:
        """The motif pattern the index was built for."""
        return self._motif

    @property
    def targets(self) -> Tuple[Edge, ...]:
        """The canonical target links, in input order."""
        return self._targets

    def number_of_instances(self) -> int:
        """Return ``|W|``, the total number of target subgraphs."""
        return len(self._instance_edges)

    def instances_of(self, target: Edge) -> Tuple[InstanceId, ...]:
        """Return the instance ids belonging to ``target`` (``W_t``)."""
        return self._instances_by_target[canonical_edge(*target)]

    def initial_similarity(self, target: Edge) -> int:
        """Return ``s(∅, t) = |W_t|`` for ``target``."""
        return len(self.instances_of(target))

    def initial_total_similarity(self) -> int:
        """Return ``s(∅, T) = |W|``."""
        return len(self._instance_edges)

    def edges_of_instance(self, instance_id: InstanceId) -> MotifInstance:
        """Return the protector edges of one instance."""
        return self._instance_edges[instance_id]

    def target_of_instance(self, instance_id: InstanceId) -> Edge:
        """Return the target an instance belongs to."""
        return self._instance_target[instance_id]

    def instances_containing(self, edge: Edge) -> FrozenSet[InstanceId]:
        """Return all instance ids that contain ``edge`` (empty if none)."""
        return self._edge_to_instances.get(canonical_edge(*edge), frozenset())

    def candidate_edges(self) -> Set[Edge]:
        """Return every edge participating in at least one target subgraph.

        By Lemma 5 of the paper these are the only edges worth considering as
        protectors; the scalable ``-R`` algorithms restrict their search to
        this set.
        """
        return set(self._edge_to_instances)

    def candidate_edges_of(self, target: Edge) -> Set[Edge]:
        """Return the edges participating in some instance of ``target``."""
        edges: Set[Edge] = set()
        for instance_id in self.instances_of(target):
            edges |= self._instance_edges[instance_id]
        return edges

    def new_state(self) -> "CoverageState":
        """Return a fresh mutable :class:`CoverageState` over this index."""
        return CoverageState(self)


class CoverageState:
    """Mutable view tracking which target subgraphs are still alive.

    Deleting an edge kills every alive instance containing it.  The state
    answers marginal-gain queries (total and per target) in time proportional
    to the number of instances the edge touches, which is what makes the
    greedy algorithms scale.
    """

    def __init__(self, index: TargetSubgraphIndex) -> None:
        self._index = index
        self._alive: Set[InstanceId] = set(range(index.number_of_instances()))
        self._alive_by_target: Dict[Edge, int] = {
            target: index.initial_similarity(target) for target in index.targets
        }
        self._deleted_edges: List[Edge] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def index(self) -> TargetSubgraphIndex:
        """The immutable index this state is layered on."""
        return self._index

    @property
    def deleted_edges(self) -> Tuple[Edge, ...]:
        """Edges deleted so far, in deletion order."""
        return tuple(self._deleted_edges)

    def total_similarity(self) -> int:
        """Return the current ``s(P, T)`` (alive instances)."""
        return len(self._alive)

    def similarity_of(self, target: Edge) -> int:
        """Return the current ``s(P, t)`` for ``target``."""
        return self._alive_by_target[canonical_edge(*target)]

    def similarity_by_target(self) -> Dict[Edge, int]:
        """Return the current per-target similarities."""
        return dict(self._alive_by_target)

    def is_fully_protected(self) -> bool:
        """Return whether every target subgraph has been broken."""
        return not self._alive

    def gain(self, edge: Edge) -> int:
        """Return how many alive instances deleting ``edge`` would break."""
        instances = self._index.instances_containing(edge)
        if not instances:
            return 0
        return sum(1 for instance_id in instances if instance_id in self._alive)

    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        """Return per-target counts of alive instances ``edge`` would break."""
        gains: Dict[Edge, int] = {}
        for instance_id in self._index.instances_containing(edge):
            if instance_id in self._alive:
                target = self._index.target_of_instance(instance_id)
                gains[target] = gains.get(target, 0) + 1
        return gains

    def gain_for_target(self, edge: Edge, target: Edge) -> int:
        """Return alive instances of ``target`` that deleting ``edge`` breaks."""
        target = canonical_edge(*target)
        count = 0
        for instance_id in self._index.instances_containing(edge):
            if instance_id in self._alive and self._index.target_of_instance(
                instance_id
            ) == target:
                count += 1
        return count

    def candidate_edges(self) -> Set[Edge]:
        """Return undeleted edges that still break at least one alive instance."""
        candidates: Set[Edge] = set()
        deleted = set(self._deleted_edges)
        for edge in self._index.candidate_edges():
            if edge not in deleted and self.gain(edge) > 0:
                candidates.add(edge)
        return candidates

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def delete_edge(self, edge: Edge) -> Dict[Edge, int]:
        """Delete ``edge`` and return the per-target counts of broken instances.

        Deleting an edge that touches no alive instance is allowed and
        returns an empty mapping (the greedy algorithms stop before doing
        this, but baselines such as RD routinely delete useless edges).
        """
        edge = canonical_edge(*edge)
        broken: Dict[Edge, int] = {}
        for instance_id in self._index.instances_containing(edge):
            if instance_id in self._alive:
                self._alive.discard(instance_id)
                target = self._index.target_of_instance(instance_id)
                broken[target] = broken.get(target, 0) + 1
                self._alive_by_target[target] -= 1
        self._deleted_edges.append(edge)
        return broken

    def delete_edges(self, edges: Iterable[Edge]) -> Dict[Edge, int]:
        """Delete several edges; return aggregated per-target broken counts."""
        total: Dict[Edge, int] = {}
        for edge in edges:
            for target, count in self.delete_edge(edge).items():
                total[target] = total.get(target, 0) + count
        return total

    def copy(self) -> "CoverageState":
        """Return an independent copy of this state (same underlying index)."""
        clone = CoverageState(self._index)
        clone._alive = set(self._alive)
        clone._alive_by_target = dict(self._alive_by_target)
        clone._deleted_edges = list(self._deleted_edges)
        return clone
