"""Target-subgraph enumeration and the incremental coverage kernel.

The scalable implementations of the paper (SGB/CT/WT-Greedy-R, Lemma 5) rest
on two observations about the phase-1 graph (targets already deleted):

1. deleting protectors can only *destroy* motif instances, never create new
   ones, so the set ``W`` of target subgraphs can be enumerated once, and
2. only edges that participate in some target subgraph can ever have a
   positive marginal gain.

:class:`TargetSubgraphIndex` materialises ``W`` once over an
:class:`~repro.graphs.indexed.IndexedGraph` snapshot of the phase-1 graph, so
every instance and every edge is addressed by a dense integer id:

* ``instance -> edge ids`` as a flat CSR array (``_inst_indptr`` /
  ``_inst_edge_ids``),
* ``edge id -> instances`` as the inverse CSR (``_edge_indptr`` /
  ``_edge_inst_ids``), and
* ``instance -> target index`` as a flat array.

:class:`CoverageState` layers the mutable greedy bookkeeping on top: an alive
bitmask over instances and — the heart of the kernel — **live-gain counters
maintained incrementally**, both per edge and per (edge, target).  The
per-(edge, target) counter matrix is a CSR over the same edge ids (row of an
edge lists the targets it touches, ``_et_indptr`` / ``_et_tidx``); deleting an
edge walks the instances it kills exactly once and decrements the total *and*
the matrix entry of every sibling edge, so

* :meth:`CoverageState.gain` is O(1) (a counter read),
* :meth:`CoverageState.gain_by_target` is O(#targets touching the edge)
  (one matrix row, no instance rescan),
* :meth:`CoverageState.candidate_edges` is O(|candidate edges|) with no
  per-edge rescan,
* :meth:`CoverageState.top_gain_edge` is amortised O(log) via a lazy max-heap
  (valid because gains only ever decrease), and
* :meth:`CoverageState.best_scored_pair` — the cross-target greedy's argmax
  over ``(target, edge)`` pairs scored ``own + (total - own) / C`` — is
  amortised sublinear in the candidate count via per-target lazy max-heaps
  (valid because own-gains and totals only ever decrease).

Enumeration itself (pass 1) runs over the :class:`IndexedGraph` CSR rows via
:meth:`~repro.motifs.base.MotifPattern.enumerate_instance_edge_ids`, so the
built-in motifs intersect integer adjacency rows instead of hashing node
tuples; custom motifs fall back to the tuple-based
``enumerate_instances`` transparently.

Construction is built for speed on two axes:

* **Vectorised assembly** — pass 1 only collects flat buffers (membership
  edge ids, per-instance arities, per-target instance counts); the inverse
  CSR, the per-(edge, target) counter matrix and the slot table are then
  assembled with numpy counting sorts (``np.argsort``/``np.bincount``/
  ``np.cumsum``) instead of element-wise Python loops.  The seed's loops are
  retained behind ``assembly="python"`` as the executable reference — both
  paths produce byte-identical arrays (pinned by
  ``tests/property/test_index_build_equivalence.py``).
* **Parallel pass 1** — ``build_workers=N`` fans the per-target enumeration
  (embarrassingly parallel: every target's instances are independent) out
  over a process pool.  The frozen ``(IndexedGraph, graph, motif)`` triple is
  pickled once per worker, each worker enumerates a contiguous chunk of
  targets through the same dispatcher (so custom tuple-only motifs take the
  same fallback as the serial path), and the chunk buffers are merged in
  target order — the resulting index is bit-identical for every worker
  count.

:class:`SetCoverageState` preserves the previous hash-set implementation as an
executable reference: the differential tests in
``tests/property/test_kernel_differential.py`` assert that the kernel, the set
state and a from-scratch recount agree on every trace.

The mutable states themselves live in :mod:`repro.motifs.coverage` (split
out so the native-vs-numpy kernel dispatch is explicit); they are
re-exported here for backwards compatibility.
"""

from __future__ import annotations

import multiprocessing
from array import array
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.exceptions import MotifError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.indexed import ASSEMBLY_MODES, NP_LONG, IndexedGraph
from repro.motifs.base import MotifInstance, MotifPattern, coerce_motif
from repro.motifs.coverage import (  # noqa: F401  (re-exported API)
    _SCALAR_KILL_THRESHOLD,
    CoverageState,
    InstanceId,
    SetCoverageState,
    _flat_ranges,
)

__all__ = [
    "TargetSubgraphIndex",
    "CoverageState",
    "SetCoverageState",
    "InstanceId",
    "INDEX_ARRAY_FIELDS",
]

#: The flat arrays whose bytes define an index "bit-identically": the build
#: benchmark and the equivalence tests both fingerprint exactly this list, so
#: a new array added to :class:`TargetSubgraphIndex` only needs to be
#: registered here to be covered by every bit-identity gate.
INDEX_ARRAY_FIELDS = (
    "_inst_indptr",
    "_inst_edge_ids",
    "_inst_target_idx",
    "_edge_indptr",
    "_edge_inst_ids",
    "_et_indptr",
    "_et_tidx",
    "_et_initial_count",
    "_inst_slot",
    "_initial_gain",
)


# ----------------------------------------------------------------------
# pass 1: per-target enumeration into flat buffers (serial + process pool)
# ----------------------------------------------------------------------
def _enumerate_buffers(
    indexed: IndexedGraph,
    graph: Graph,
    motif: MotifPattern,
    targets: Sequence[Edge],
) -> Tuple[array, array, List[int]]:
    """Enumerate ``targets`` into ``(edge ids, arities, per-target counts)``.

    This is the single enumeration dispatcher both the serial and the
    parallel build go through: built-in motifs walk the CSR rows via
    ``enumerate_instance_edge_ids`` (a deterministic id-order walk), custom
    motifs take the tuple-enumeration fallback inherited from
    :class:`~repro.motifs.base.MotifPattern`.

    The fallback's generation order follows ``Graph`` adjacency-*set*
    iteration, which is not stable across hash seeds or a pickle round trip
    (a build worker unpickles the graph) — so for motifs that did not
    override the id-space enumeration, each target's instances are put in
    canonical order (ids sorted within an instance, instances sorted within
    the target).  That makes the built index a pure function of the graph
    for custom motifs too, and therefore bit-identical for every
    ``build_workers`` count and start method.
    """
    edge_buffer = array("l")
    arity_buffer = array("l")
    counts: List[int] = []
    extend = edge_buffer.extend
    append_arity = arity_buffer.append
    canonicalize = (
        type(motif).enumerate_instance_edge_ids
        is MotifPattern.enumerate_instance_edge_ids
    )
    for target in targets:
        before = len(arity_buffer)
        instances: Iterable[Sequence[int]] = motif.enumerate_instance_edge_ids(
            indexed, graph, target
        )
        if canonicalize:
            instances = sorted(sorted(edge_ids) for edge_ids in instances)
        for edge_ids in instances:
            extend(edge_ids)
            append_arity(len(edge_ids))
        counts.append(len(arity_buffer) - before)
    return edge_buffer, arity_buffer, counts


#: Per-process enumeration context installed by the pool initializer, so the
#: (IndexedGraph, graph, motif, targets) payload is pickled once per worker
#: instead of once per chunk.
_BUILD_CONTEXT: Optional[Tuple[IndexedGraph, Graph, MotifPattern, Tuple[Edge, ...]]] = None


def _build_worker_init(
    indexed: IndexedGraph,
    graph: Graph,
    motif: MotifPattern,
    targets: Tuple[Edge, ...],
) -> None:
    global _BUILD_CONTEXT
    _BUILD_CONTEXT = (indexed, graph, motif, targets)


def _build_worker_chunk(span: Tuple[int, int]) -> Tuple[bytes, bytes, List[int]]:
    assert _BUILD_CONTEXT is not None, "build worker initializer did not run"
    indexed, graph, motif, targets = _BUILD_CONTEXT
    start, stop = span
    edge_buffer, arity_buffer, counts = _enumerate_buffers(
        indexed, graph, motif, targets[start:stop]
    )
    return edge_buffer.tobytes(), arity_buffer.tobytes(), counts


def _chunk_spans(n_targets: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(n_targets)`` into balanced contiguous spans.

    More chunks than workers (4x) keeps the pool busy when per-target costs
    are skewed; merging in span order keeps the result order-deterministic.
    """
    n_chunks = max(1, min(n_targets, workers * 4))
    base, remainder = divmod(n_targets, n_chunks)
    spans = []
    start = 0
    for chunk in range(n_chunks):
        stop = start + base + (1 if chunk < remainder else 0)
        spans.append((start, stop))
        start = stop
    return spans


def _pool_context():
    """Return the multiprocessing context for the build pool.

    ``forkserver`` (falling back to ``spawn`` where unavailable): the build
    can be triggered lazily from a thread that is concurrently serving
    queries — a subset sub-session enumerating inside ``solve_many`` — and
    plain ``fork`` from a multi-threaded process can clone a held allocator
    lock into the child and deadlock.  The worker payload already travels by
    pickle (``initargs``), so nothing relies on fork's memory inheritance.
    """
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # platform without forkserver (e.g. Windows)
        return multiprocessing.get_context("spawn")


def _enumerate_buffers_parallel(
    indexed: IndexedGraph,
    graph: Graph,
    motif: MotifPattern,
    targets: Tuple[Edge, ...],
    workers: int,
) -> Tuple[array, array, List[int]]:
    """Fan pass 1 out over a process pool; merge chunk buffers in target order."""
    spans = _chunk_spans(len(targets), workers)
    edge_buffer = array("l")
    arity_buffer = array("l")
    counts: List[int] = []
    with ProcessPoolExecutor(
        max_workers=min(workers, len(spans)),
        mp_context=_pool_context(),
        initializer=_build_worker_init,
        initargs=(indexed, graph, motif, targets),
    ) as executor:
        for edge_bytes, arity_bytes, chunk_counts in executor.map(
            _build_worker_chunk, spans
        ):
            edge_buffer.frombytes(edge_bytes)
            arity_buffer.frombytes(arity_bytes)
            counts.extend(chunk_counts)
    return edge_buffer, arity_buffer, counts


class TargetSubgraphIndex:
    """Immutable enumeration of all target subgraphs ``W`` for a target set.

    Parameters
    ----------
    graph:
        The phase-1 graph (all targets already removed).
    targets:
        The hidden target links.
    motif:
        The subgraph pattern (name or :class:`MotifPattern`).
    build_workers:
        ``None``/``0``/``1`` enumerates serially; ``N > 1`` fans the
        per-target enumeration (pass 1) out over ``N`` worker processes.
        The result is bit-identical for every worker count.  Parallelism
        pays once the enumeration itself (roughly ``|T| x`` the motif cost
        per target) outweighs pickling the graph snapshot to each worker —
        as a rule of thumb, tens of targets on a >= 10k-edge graph.
    assembly:
        ``"numpy"`` (default) assembles the flat arrays with vectorised
        counting sorts; ``"python"`` runs the seed's element-wise loops.
        Byte-identical outputs; the flag exists for the build benchmark and
        the differential tests.

    Notes
    -----
    Every instance is assigned an integer id; instances of one target occupy a
    contiguous id range (the paper's ``W_t ∩ W_t' = ∅`` property for the
    *target* attribution; a protector edge, on the other hand, may participate
    in instances of many targets).  Edges are addressed by the dense edge ids
    of the underlying :class:`~repro.graphs.indexed.IndexedGraph`, whose order
    matches the library-wide ``edge_sort_key`` tie-breaking.
    """

    def __init__(
        self,
        graph: Graph,
        targets: Sequence[Edge],
        motif: Union[str, MotifPattern],
        build_workers: Optional[int] = None,
        assembly: str = "numpy",
    ) -> None:
        if assembly not in ASSEMBLY_MODES:
            raise MotifError(
                f"assembly must be one of {ASSEMBLY_MODES}, got {assembly!r}"
            )
        self._motif = coerce_motif(motif)
        self._targets: Tuple[Edge, ...] = tuple(
            canonical_edge(*target) for target in targets
        )
        for target in self._targets:
            if graph.has_edge(*target):
                raise MotifError(
                    f"target {target!r} is still an edge of the graph; "
                    "remove all targets (phase 1) before building the index"
                )

        indexed = IndexedGraph(graph, assembly=assembly)
        self._indexed = indexed
        self._target_index: Dict[Edge, int] = {
            target: position for position, target in enumerate(self._targets)
        }

        # ------------------------------------------------------------------
        # pass 1: enumerate instances directly in edge-id space — the
        # built-in motifs walk the IndexedGraph CSR rows (integer merges and
        # lookups), custom motifs fall back to tuple enumeration translated
        # once at this boundary (the kernel never hashes tuples afterwards).
        # Only flat buffers are collected (membership edge ids, per-instance
        # arities, per-target counts); with build_workers > 1 the per-target
        # work fans out over a process pool and the chunk buffers are merged
        # in target order, so the buffers are identical to a serial run.
        # ------------------------------------------------------------------
        workers = int(build_workers) if build_workers else 0
        if workers > 1 and len(self._targets) > 1:
            edge_buffer, arity_buffer, counts = _enumerate_buffers_parallel(
                indexed, graph, self._motif, self._targets, workers
            )
        else:
            edge_buffer, arity_buffer, counts = _enumerate_buffers(
                indexed, graph, self._motif, self._targets
            )

        # per-target contiguous instance-id ranges (python ints, API-facing)
        ranges: List[Tuple[int, int]] = []
        cursor = 0
        for count in counts:
            ranges.append((cursor, cursor + count))
            cursor += count
        self._target_ranges: Tuple[Tuple[int, int], ...] = tuple(ranges)

        if assembly == "python":
            self._assemble_python(edge_buffer, arity_buffer, counts)
        else:
            self._assemble_numpy(edge_buffer, arity_buffer, counts)
        self._finalize_derived()

    def _finalize_derived(self) -> None:
        """Derive the query-side helpers from the assembled flat arrays.

        Shared tail of a fresh build and a snapshot restore: everything set
        here is a pure function of the :data:`INDEX_ARRAY_FIELDS` arrays, so
        the two paths cannot drift apart.
        """
        #: Candidate edge ids (edges in >= 1 instance), ascending == sorted
        #: by ``edge_sort_key`` thanks to the IndexedGraph id order.  Held
        #: both as python ints (heap building iterates them) and as an array
        #: (vector gathers index with it).
        self._candidate_id_array = np.flatnonzero(self._initial_gain)
        self._candidate_ids: Tuple[int, ...] = tuple(
            self._candidate_id_array.tolist()
        )

        # array("l") mirrors of the counter-matrix row structure: the heap
        # validation loops read these element-wise, and scalar reads from an
        # array yield plain ints without numpy boxing
        self._et_indptr_l = array("l")
        self._et_indptr_l.frombytes(self._et_indptr.tobytes())
        self._et_tidx_l = array("l")
        self._et_tidx_l.frombytes(self._et_tidx.tobytes())

        # edge -> frozenset(instance ids), materialised lazily on first use:
        # only the tuple-level accessors and SetCoverageState need it (the
        # kernel reads the CSR directly), but once built it must be O(1) per
        # lookup so the set state keeps the seed implementation's cost profile
        self._edge_to_instances: Optional[Dict[Edge, FrozenSet[InstanceId]]] = None

    @classmethod
    def _from_buffers(
        cls,
        indexed: IndexedGraph,
        targets: Sequence[Edge],
        motif: MotifPattern,
        edge_buffer,
        arity_buffer,
        counts: List[int],
    ) -> "TargetSubgraphIndex":
        """Assemble an index from pre-collected pass-1 buffers.

        This is the splice hook of :mod:`repro.motifs.updates`: the caller
        supplies buffers exactly equal to what ``_enumerate_buffers`` would
        produce for ``(indexed, targets, motif)`` — e.g. surviving instance
        rows spliced together with freshly re-enumerated ones — and the
        assembled arrays are then bit-identical to a from-scratch build by
        construction (same vectorised passes 2-3, same inputs).  Targets
        must already be canonical.
        """
        self = cls.__new__(cls)
        self._motif = motif
        self._targets = tuple(targets)
        self._target_index = {
            target: position for position, target in enumerate(self._targets)
        }
        self._indexed = indexed
        ranges: List[Tuple[int, int]] = []
        cursor = 0
        for count in counts:
            ranges.append((cursor, cursor + count))
            cursor += count
        self._target_ranges = tuple(ranges)
        self._assemble_numpy(edge_buffer, arity_buffer, counts)
        self._finalize_derived()
        return self

    def apply_delta(self, delta) -> "repro.motifs.updates.DeltaOutcome":
        """Apply an :class:`~repro.motifs.updates.EdgeDelta` incrementally.

        Returns a :class:`~repro.motifs.updates.DeltaOutcome` whose
        ``index`` is a **new** :class:`TargetSubgraphIndex` over the updated
        phase-1 graph, bit-identical to a from-scratch rebuild — this index
        is immutable and keeps serving untouched.  Cost is proportional to
        the motif instances touching the changed edges (plus array
        splices), not to a full re-enumeration; see
        :mod:`repro.motifs.updates` for the algorithm and its invariants.
        """
        from repro.motifs.updates import apply_delta

        return apply_delta(self, delta)

    @classmethod
    def _restore(
        cls,
        indexed: IndexedGraph,
        targets: Sequence[Edge],
        motif: Union[str, MotifPattern],
        arrays: Dict[str, np.ndarray],
    ) -> "TargetSubgraphIndex":
        """Rebuild an index from previously frozen flat arrays.

        This is the deserialisation hook of :mod:`repro.persistence`:
        ``arrays`` maps every name in :data:`INDEX_ARRAY_FIELDS` to the
        stored buffer, and the restored index is bit-identical to the one
        that was saved — enumeration (pass 1) never runs.  The per-target
        instance ranges are re-derived from ``_inst_target_idx`` (instance
        ids are contiguous per target) and everything else derived comes out
        of :meth:`_finalize_derived`, so a restored index answers every
        query exactly like the freshly built original.  Inputs are trusted
        to be mutually consistent; the persistence layer validates shapes
        before calling.
        """
        self = cls.__new__(cls)
        self._motif = coerce_motif(motif)
        self._targets = tuple(canonical_edge(*target) for target in targets)
        self._target_index = {
            target: position for position, target in enumerate(self._targets)
        }
        self._indexed = indexed
        for name in INDEX_ARRAY_FIELDS:
            setattr(self, name, arrays[name])
        counts = np.bincount(
            self._inst_target_idx, minlength=len(self._targets)
        ).tolist()
        ranges: List[Tuple[int, int]] = []
        cursor = 0
        for count in counts:
            ranges.append((cursor, cursor + count))
            cursor += count
        self._target_ranges = tuple(ranges)
        self._finalize_derived()
        return self

    def _assemble_numpy(
        self, edge_buffer: array, arity_buffer: array, counts: List[int]
    ) -> None:
        """Vectorised passes 2-3: counting sorts over the flat buffers.

        The inverse CSR is one stable argsort of the membership edge ids
        (stable = within an edge, instances stay ascending, exactly like the
        seed's cursor walk).  The per-(edge, target) matrix falls out of
        run-length encoding the (edge, target) key sequence along that same
        sorted order — sound because instance ids are contiguous per target,
        so the key sequence is non-decreasing — and the slot table is the
        inverse scatter of the run ids back to instance-major positions.
        """
        m = self._indexed.number_of_edges()
        n_targets = len(self._targets)
        memberships = np.array(edge_buffer, dtype=NP_LONG)
        arities = np.array(arity_buffer, dtype=NP_LONG)
        target_counts = np.asarray(counts, dtype=NP_LONG)
        n_instances = len(arities)

        inst_indptr = np.zeros(n_instances + 1, dtype=NP_LONG)
        np.cumsum(arities, out=inst_indptr[1:])
        self._inst_indptr = inst_indptr
        self._inst_edge_ids = memberships
        self._inst_target_idx = np.repeat(
            np.arange(n_targets, dtype=NP_LONG), target_counts
        )

        # pass 2: invert into the edge id -> instances CSR
        per_edge = np.bincount(memberships, minlength=m).astype(NP_LONG, copy=False)
        edge_indptr = np.zeros(m + 1, dtype=NP_LONG)
        np.cumsum(per_edge, out=edge_indptr[1:])
        order = np.argsort(memberships, kind="stable")
        inst_of_membership = np.repeat(
            np.arange(n_instances, dtype=NP_LONG), arities
        )
        self._edge_indptr = edge_indptr
        self._edge_inst_ids = inst_of_membership[order]
        self._initial_gain = per_edge

        # pass 3: per-(edge, target) counter matrix + slot table
        edge_sorted = memberships[order]
        tidx_sorted = self._inst_target_idx[self._edge_inst_ids]
        n_memberships = len(memberships)
        new_run = np.empty(n_memberships, dtype=bool)
        if n_memberships:
            new_run[0] = True
            np.logical_or(
                edge_sorted[1:] != edge_sorted[:-1],
                tidx_sorted[1:] != tidx_sorted[:-1],
                out=new_run[1:],
            )
        slots = np.cumsum(new_run, dtype=NP_LONG) - 1
        self._et_tidx = tidx_sorted[new_run]
        self._et_initial_count = np.bincount(slots, minlength=0).astype(
            NP_LONG, copy=False
        )
        et_indptr = np.zeros(m + 1, dtype=NP_LONG)
        np.cumsum(
            np.bincount(edge_sorted[new_run], minlength=m), out=et_indptr[1:]
        )
        self._et_indptr = et_indptr
        inst_slot = np.empty(n_memberships, dtype=NP_LONG)
        inst_slot[order] = slots
        self._inst_slot = inst_slot

    def _assemble_python(
        self, edge_buffer: array, arity_buffer: array, counts: List[int]
    ) -> None:
        """The seed's element-wise passes 2-3 (reference path).

        Same buffers in, byte-identical arrays out — kept executable for the
        old-vs-new build benchmark and the assembly differential tests.
        """
        m = self._indexed.number_of_edges()
        inst_indptr: List[int] = [0]
        for arity in arity_buffer:
            inst_indptr.append(inst_indptr[-1] + arity)
        inst_target_idx: List[int] = []
        for position, count in enumerate(counts):
            inst_target_idx.extend([position] * count)
        self._inst_indptr = np.asarray(inst_indptr, dtype=NP_LONG)
        self._inst_edge_ids = np.array(edge_buffer, dtype=NP_LONG)
        self._inst_target_idx = np.asarray(inst_target_idx, dtype=NP_LONG)

        # pass 2: invert into the edge id -> instances CSR
        csr_counts = array("l", [0] * (m + 1))
        for edge_id in edge_buffer:
            csr_counts[edge_id + 1] += 1
        for edge_id in range(m):
            csr_counts[edge_id + 1] += csr_counts[edge_id]
        edge_indptr = csr_counts  # now the CSR offsets
        edge_inst_ids = array("l", [0] * len(edge_buffer))
        cursor = array("l", edge_indptr[:m])
        number_of_instances = len(inst_target_idx)
        for instance_id in range(number_of_instances):
            for position in range(inst_indptr[instance_id], inst_indptr[instance_id + 1]):
                edge_id = edge_buffer[position]
                edge_inst_ids[cursor[edge_id]] = instance_id
                cursor[edge_id] += 1
        self._edge_indptr = np.array(edge_indptr, dtype=NP_LONG)
        self._edge_inst_ids = np.array(edge_inst_ids, dtype=NP_LONG)
        self._initial_gain = np.diff(self._edge_indptr)

        # pass 3: per-(edge, target) counter matrix, CSR over edge ids.
        # The row of an edge lists the targets whose instances contain it
        # (tidx ascending: each edge's instance list is ascending and
        # instance ids are contiguous per target) with the initial counts.
        et_indptr = array("l", [0] * (m + 1))
        et_tidx: List[int] = []
        et_count: List[int] = []
        slot_of: Dict[Tuple[int, int], int] = {}
        for edge_id in range(m):
            previous_tidx = -1
            for position in range(edge_indptr[edge_id], edge_indptr[edge_id + 1]):
                tidx = inst_target_idx[edge_inst_ids[position]]
                if tidx != previous_tidx:
                    slot_of[(edge_id, tidx)] = len(et_tidx)
                    et_tidx.append(tidx)
                    et_count.append(0)
                    previous_tidx = tidx
                et_count[-1] += 1
            et_indptr[edge_id + 1] = len(et_tidx)
        self._et_indptr = np.array(et_indptr, dtype=NP_LONG)
        self._et_tidx = np.asarray(et_tidx, dtype=NP_LONG)
        self._et_initial_count = np.asarray(et_count, dtype=NP_LONG)
        # membership position -> matrix slot of (sibling edge, instance's
        # target), so the kill walk decrements the matrix entry with one
        # array read instead of a hash lookup
        inst_slot = array("l", [0] * len(edge_buffer))
        for instance_id in range(number_of_instances):
            tidx = inst_target_idx[instance_id]
            for position in range(inst_indptr[instance_id], inst_indptr[instance_id + 1]):
                inst_slot[position] = slot_of[(edge_buffer[position], tidx)]
        self._inst_slot = np.array(inst_slot, dtype=NP_LONG)

    def __getstate__(self) -> Dict[str, object]:
        # the lazy edge -> instances dict can dwarf the flat arrays; rebuild
        # it on demand on the other side instead of shipping it to workers
        state = self.__dict__.copy()
        state["_edge_to_instances"] = None
        return state

    # ------------------------------------------------------------------
    # read-only accessors
    # ------------------------------------------------------------------
    @property
    def motif(self) -> MotifPattern:
        """The motif pattern the index was built for."""
        return self._motif

    @property
    def targets(self) -> Tuple[Edge, ...]:
        """The canonical target links, in input order."""
        return self._targets

    @property
    def indexed_graph(self) -> IndexedGraph:
        """The dense-id snapshot of the phase-1 graph the kernel runs on."""
        return self._indexed

    def number_of_instances(self) -> int:
        """Return ``|W|``, the total number of target subgraphs."""
        return len(self._inst_target_idx)

    def number_of_candidate_edges(self) -> int:
        """Return how many distinct edges participate in target subgraphs."""
        return len(self._candidate_ids)

    def instances_of(self, target: Edge) -> Tuple[InstanceId, ...]:
        """Return the instance ids belonging to ``target`` (``W_t``)."""
        start, end = self._target_ranges[self._target_position(target)]
        return tuple(range(start, end))

    def initial_similarity(self, target: Edge) -> int:
        """Return ``s(∅, t) = |W_t|`` for ``target``."""
        start, end = self._target_ranges[self._target_position(target)]
        return end - start

    def initial_total_similarity(self) -> int:
        """Return ``s(∅, T) = |W|``."""
        return len(self._inst_target_idx)

    def edges_of_instance(self, instance_id: InstanceId) -> MotifInstance:
        """Return the protector edges of one instance."""
        edge_at = self._indexed.edge_at
        return frozenset(
            edge_at(self._inst_edge_ids[position])
            for position in range(
                self._inst_indptr[instance_id], self._inst_indptr[instance_id + 1]
            )
        )

    def target_of_instance(self, instance_id: InstanceId) -> Edge:
        """Return the target an instance belongs to."""
        return self._targets[self._inst_target_idx[instance_id]]

    def instances_containing(self, edge: Edge) -> FrozenSet[InstanceId]:
        """Return all instance ids that contain ``edge`` (empty if none)."""
        if self._edge_to_instances is None:
            edge_at = self._indexed.edge_at
            indptr = self._edge_indptr
            inst_ids = self._edge_inst_ids
            self._edge_to_instances = {
                edge_at(edge_id): frozenset(
                    inst_ids[indptr[edge_id] : indptr[edge_id + 1]].tolist()
                )
                for edge_id in self._candidate_ids
            }
        return self._edge_to_instances.get(canonical_edge(*edge), frozenset())

    def candidate_edges(self) -> Set[Edge]:
        """Return every edge participating in at least one target subgraph.

        By Lemma 5 of the paper these are the only edges worth considering as
        protectors; the scalable ``-R`` algorithms restrict their search to
        this set.
        """
        edge_at = self._indexed.edge_at
        return {edge_at(edge_id) for edge_id in self._candidate_ids}

    def candidate_edge_list(self) -> List[Edge]:
        """Return the candidate edges in deterministic ``edge_sort_key`` order.

        Unlike :meth:`candidate_edges` (a set, for membership tests) the list
        form has a stable iteration order across processes and hash seeds,
        which the baselines and greedy loops rely on for reproducibility.
        """
        edge_at = self._indexed.edge_at
        return [edge_at(edge_id) for edge_id in self._candidate_ids]

    def candidate_edges_of(self, target: Edge) -> Set[Edge]:
        """Return the edges participating in some instance of ``target``."""
        start, end = self._target_ranges[self._target_position(target)]
        edge_at = self._indexed.edge_at
        return {
            edge_at(self._inst_edge_ids[position])
            for instance_id in range(start, end)
            for position in range(
                self._inst_indptr[instance_id], self._inst_indptr[instance_id + 1]
            )
        }

    def new_state(self, kernel: Optional[str] = None) -> "CoverageState":
        """Return a fresh mutable array-backed :class:`CoverageState`.

        ``kernel`` selects the hot-loop implementation (``"auto"`` /
        ``"native"`` / ``"numpy"``; see
        :class:`~repro.motifs.coverage.CoverageState`).  Both kernels
        are observably bit-identical.
        """
        return CoverageState(self, kernel=kernel)

    def new_set_state(self) -> "SetCoverageState":
        """Return the hash-set reference implementation of the state.

        Slower than :meth:`new_state`; kept as the executable specification
        the kernel is differentially tested against.
        """
        return SetCoverageState(self)

    # ------------------------------------------------------------------
    # internal helpers shared with the states
    # ------------------------------------------------------------------
    def _target_position(self, target: Edge) -> int:
        # fast path: callers overwhelmingly pass already-canonical targets
        position = self._target_index.get(target)
        if position is not None:
            return position
        return self._target_index[canonical_edge(*target)]

