"""Delta snapshots: persist graph updates as diffs against a parent snapshot.

Full snapshots (:mod:`repro.persistence.snapshot`) freeze the entire built
index; when a live session has applied a handful of edge updates, rewriting
megabytes of arrays to persist a ten-edge change is the wrong trade.  A
*delta snapshot* is a small file carrying

* the **parent content hash** — the :func:`~repro.persistence.snapshot.\
index_content_hash` of the state the delta applies to, so it can never be
  replayed against the wrong base (a mismatch raises
  :class:`~repro.exceptions.SnapshotMismatchError` before anything is
  touched),
* the ordered operations of one :class:`~repro.motifs.updates.EdgeDelta`,
  and
* the **result content hash** — the state the application must land on,
  re-verified after replay so a corrupted-but-well-formed operation list
  still cannot produce a silently wrong index.

Layered on the PR-5 snapshot envelope: the same fixed preamble layout with
its own 12-byte magic, a hash-protected JSON header, and a digest-checked
payload (the encoded operation list).  Node labels travel as JSON when they
are plain ``int``/``str`` and by pickle otherwise — the same trust model as
full snapshots (``allow_pickle=False`` refuses pickled files).

Typical usage::

    from repro import EdgeDelta
    from repro.persistence import save_delta_snapshot, load_delta_snapshot

    delta = EdgeDelta.from_edges(insert=[(1, 9)], delete=[(2, 3)])
    outcome = service.apply_delta(delta)
    save_delta_snapshot("update-0001.tppdelta", delta,
                        parent_index=old_index, result_index=outcome.index)

    # elsewhere / later, on a session serving the parent state:
    snapshot = load_delta_snapshot("update-0001.tppdelta")
    service.apply_delta(snapshot)          # parent hash verified first
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import SnapshotFormatError, SnapshotMismatchError
from repro.motifs.enumeration import TargetSubgraphIndex
from repro.motifs.updates import EdgeDelta
from repro.persistence.snapshot import (
    SNAPSHOT_MAGIC,
    _header_digest,
    _read_sections,
    index_content_hash,
)

__all__ = [
    "DELTA_VERSION",
    "DELTA_MAGIC",
    "DeltaSnapshot",
    "save_delta_snapshot",
    "load_delta_snapshot",
    "verify_snapshot_file",
]

#: Current delta-snapshot format version.
DELTA_VERSION = 1

#: Fixed file marker at offset 0 of every delta snapshot (same width as the
#: full-snapshot magic, so one preamble read dispatches both kinds).
DELTA_MAGIC = b"REPROTPPDLTA"

#: Same fixed-offset preamble layout as full snapshots: magic + u32 version
#: + u64 header length.
_PREAMBLE = struct.Struct(f"<{len(DELTA_MAGIC)}sIQ")


def _encode_ops(delta: EdgeDelta) -> Tuple[str, bytes]:
    """Encode the operation list; JSON when every label allows it losslessly."""
    if all(
        type(u) in (int, str) and type(v) in (int, str)
        for _, (u, v) in delta.operations
    ):
        payload = [[op, u, v] for op, (u, v) in delta.operations]
        return "json", json.dumps(
            payload, separators=(",", ":"), ensure_ascii=True
        ).encode("utf-8")
    return "pickle", pickle.dumps(delta.operations, protocol=4)


def _decode_ops(codec: str, blob: bytes, allow_pickle: bool) -> EdgeDelta:
    if codec == "json":
        try:
            raw = json.loads(blob.decode("utf-8"))
            operations = tuple((op, (u, v)) for op, u, v in raw)
        except (UnicodeDecodeError, json.JSONDecodeError, TypeError, ValueError) as error:
            raise SnapshotFormatError(
                f"delta snapshot carries an unparseable operation list: {error}"
            ) from error
    elif codec == "pickle":
        if not allow_pickle:
            raise SnapshotFormatError(
                "delta snapshot stores pickled operations and allow_pickle is False"
            )
        operations = tuple(pickle.loads(blob))
    else:
        raise SnapshotFormatError(f"unknown delta operation codec {codec!r}")
    return EdgeDelta(operations)


@dataclass(frozen=True)
class DeltaSnapshot:
    """A loaded delta snapshot: the delta plus the states it bridges.

    Attributes
    ----------
    delta:
        The ordered :class:`~repro.motifs.updates.EdgeDelta`.
    parent_content_hash:
        Content hash of the index state the delta applies to.
    result_content_hash:
        Content hash of the state applying it must produce.
    header:
        The parsed file header, for diagnostics.
    """

    delta: EdgeDelta
    parent_content_hash: str
    result_content_hash: str
    header: Dict[str, object] = field(repr=False)

    def matches_parent(self, index: TargetSubgraphIndex) -> bool:
        """Return whether ``index`` is the state this delta applies to."""
        return index_content_hash(index) == self.parent_content_hash

    def verify_parent(self, index: TargetSubgraphIndex) -> None:
        """Raise unless ``index`` is the state this delta applies to.

        Raises
        ------
        SnapshotMismatchError
            The delta was recorded against a different graph state; applying
            it here would corrupt the session, so it is refused up front.
        """
        if not self.matches_parent(index):
            raise SnapshotMismatchError(
                "delta snapshot parent content hash does not match the live "
                "index: this delta was recorded against a different graph "
                "state and cannot be applied here"
            )

    def verify_result(self, index: TargetSubgraphIndex) -> None:
        """Raise unless ``index`` is the state applying this delta produces.

        Raises
        ------
        SnapshotMismatchError
            The replay landed on a different state than the file recorded.
        """
        if index_content_hash(index) != self.result_content_hash:
            raise SnapshotMismatchError(
                "applying the delta snapshot produced a different state than "
                "its recorded result content hash — refusing the update"
            )

    def delta_for(self, index: TargetSubgraphIndex) -> EdgeDelta:
        """Return the delta after verifying ``index`` is its parent state.

        This is the hook :meth:`ProtectionService.apply_delta
        <repro.service.ProtectionService.apply_delta>` calls when handed a
        delta snapshot instead of a bare delta.
        """
        self.verify_parent(index)
        return self.delta


def _state_hash(state: Union[TargetSubgraphIndex, str]) -> str:
    """A content hash from either a built index or a pre-computed hash.

    Sharded sessions identify their state by a *combined* hash chained
    over every shard (:func:`repro.persistence.combined_content_hash`);
    passing that string through here lets one delta file target either
    kind of session.
    """
    if isinstance(state, str):
        return state
    return index_content_hash(state)


def save_delta_snapshot(
    path: Union[str, Path],
    delta: EdgeDelta,
    parent_index: Union[TargetSubgraphIndex, str],
    result_index: Union[TargetSubgraphIndex, str],
) -> Path:
    """Write ``delta`` as a delta snapshot bridging two index states.

    Parameters
    ----------
    path:
        Destination file (parent directories are created); conventionally
        ``*.tppdelta``.
    delta:
        The ordered edge updates.
    parent_index:
        The built index the delta applies to (its content hash names the
        required base state), or that state's content hash directly — a
        sharded session's parent state is its *combined* hash, which has
        no single index to hand over.
    result_index:
        The index after application — normally
        ``parent_index.apply_delta(delta).index`` — whose content hash lets
        loaders re-verify the replay landed where the writer did.  Accepts
        a pre-computed hash string like ``parent_index``.

    Returns
    -------
    pathlib.Path
        The written path.
    """
    op_codec, ops_blob = _encode_ops(delta)
    sections: List[Tuple[str, bytes]] = [("operations", ops_blob)]
    table: List[Tuple[str, int, int]] = []
    cursor = 0
    for name, blob in sections:
        table.append((name, cursor, len(blob)))
        cursor += len(blob)
    payload_bytes = b"".join(blob for _, blob in sections)

    header: Dict[str, object] = {
        "format_version": DELTA_VERSION,
        "op_codec": op_codec,
        "counts": {
            "operations": len(delta.operations),
            "inserts": len(delta.inserted),
            "deletes": len(delta.deleted),
        },
        "parent_content_hash": _state_hash(parent_index),
        "result_content_hash": _state_hash(result_index),
        "payload_hash": hashlib.sha256(payload_bytes).hexdigest(),
        "sections": table,
    }
    header["header_hash"] = _header_digest(header)
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        handle.write(_PREAMBLE.pack(DELTA_MAGIC, DELTA_VERSION, len(header_bytes)))
        handle.write(header_bytes)
        handle.write(payload_bytes)
    return path


def _read_delta_envelope(
    path: Path, blob: bytes
) -> Tuple[Dict[str, object], Dict[str, bytes]]:
    """Validate a delta file's preamble/header/payload; return header + sections."""
    magic, version, header_length = _PREAMBLE.unpack_from(blob)
    if magic != DELTA_MAGIC:
        raise SnapshotFormatError(
            f"{path} does not start with the delta snapshot magic {DELTA_MAGIC!r}"
        )
    if version != DELTA_VERSION:
        raise SnapshotFormatError(
            f"{path} uses delta format version {version}; this build reads "
            f"version {DELTA_VERSION} — regenerate the delta"
        )
    header_end = _PREAMBLE.size + header_length
    if len(blob) < header_end:
        raise SnapshotFormatError(f"{path} is truncated inside the header")
    try:
        header = json.loads(blob[_PREAMBLE.size : header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(
            f"{path} carries an unparseable header: {error}"
        ) from error
    if _header_digest(header) != header.get("header_hash"):
        raise SnapshotFormatError(
            f"{path}: header SHA-256 does not match — the header is corrupted"
        )
    payload = blob[header_end:]
    sections = _read_sections(payload, header.get("sections", []))
    if hashlib.sha256(payload).hexdigest() != header.get("payload_hash"):
        raise SnapshotFormatError(
            f"{path}: payload SHA-256 does not match the header — the file is corrupted"
        )
    for key in ("parent_content_hash", "result_content_hash"):
        if not isinstance(header.get(key), str):
            raise SnapshotFormatError(f"{path}: header is missing {key!r}")
    return header, sections


def load_delta_snapshot(
    path: Union[str, Path], allow_pickle: bool = True
) -> DeltaSnapshot:
    """Load a delta snapshot file.

    Envelope integrity (magic, version, header hash, payload hash) and the
    operation list's well-formedness are checked here; whether the delta
    *applies* to a given index is checked at application time against the
    stored parent content hash (:meth:`DeltaSnapshot.verify_parent`).

    Raises
    ------
    SnapshotFormatError
        On any unreadable, truncated, corrupted or version-mismatched file.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise SnapshotFormatError(f"cannot read delta snapshot {path}: {error}") from error
    if len(blob) < _PREAMBLE.size:
        raise SnapshotFormatError(
            f"{path} holds {len(blob)} bytes, shorter than the "
            f"{_PREAMBLE.size}-byte preamble — not a delta snapshot or truncated"
        )
    header, sections = _read_delta_envelope(path, blob)
    if "operations" not in sections:
        raise SnapshotFormatError(f"{path} is missing the 'operations' section")
    delta = _decode_ops(
        str(header.get("op_codec", "json")), sections["operations"], allow_pickle
    )
    return DeltaSnapshot(
        delta=delta,
        parent_content_hash=str(header["parent_content_hash"]),
        result_content_hash=str(header["result_content_hash"]),
        header=header,
    )


def verify_snapshot_file(path: Union[str, Path]) -> Dict[str, object]:
    """Validate a snapshot or delta-snapshot file without constructing anything.

    Dispatches on the magic marker: full snapshots get their preamble,
    header hash, payload hash and content digest checked (no
    :class:`IndexedGraph`/index restore runs); delta snapshots get the same
    envelope checks plus operation-list decoding.  This is what the
    ``repro-tpp verify-index`` command runs.

    Returns
    -------
    dict
        A summary: ``kind`` (``"snapshot"`` or ``"delta"``),
        ``format_version``, the stored hashes and the header counts.

    Raises
    ------
    SnapshotFormatError
        If the file is unreadable, truncated, corrupted, of an unknown kind
        or a mismatched format version.
    """
    from repro.persistence.snapshot import (
        _PREAMBLE as _SNAP_PREAMBLE,
        SNAPSHOT_VERSION,
        _content_digest,
    )

    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise SnapshotFormatError(f"cannot read {path}: {error}") from error
    if len(blob) < _PREAMBLE.size:
        raise SnapshotFormatError(
            f"{path} holds {len(blob)} bytes, shorter than the "
            f"{_PREAMBLE.size}-byte preamble — not a snapshot file"
        )
    magic = blob[: len(SNAPSHOT_MAGIC)]

    if magic == DELTA_MAGIC:
        header, sections = _read_delta_envelope(path, blob)
        # decode (validates shape/codec) but discard: verification must not
        # execute pickle, so pickled operation lists only get envelope checks
        if header.get("op_codec") == "json":
            _decode_ops("json", sections["operations"], allow_pickle=False)
        return {
            "kind": "delta",
            "path": str(path),
            "format_version": int(header["format_version"]),
            "parent_content_hash": header["parent_content_hash"],
            "result_content_hash": header["result_content_hash"],
            "payload_hash": header["payload_hash"],
            "counts": dict(header.get("counts", {})),
        }

    if magic == SNAPSHOT_MAGIC:
        _, version, header_length = _SNAP_PREAMBLE.unpack_from(blob)
        if version != SNAPSHOT_VERSION:
            raise SnapshotFormatError(
                f"{path} uses snapshot format version {version}; this build "
                f"reads version {SNAPSHOT_VERSION}"
            )
        header_end = _SNAP_PREAMBLE.size + header_length
        if len(blob) < header_end:
            raise SnapshotFormatError(f"{path} is truncated inside the header")
        try:
            header = json.loads(blob[_SNAP_PREAMBLE.size : header_end].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotFormatError(
                f"{path} carries an unparseable header: {error}"
            ) from error
        if _header_digest(header) != header.get("header_hash"):
            raise SnapshotFormatError(
                f"{path}: header SHA-256 does not match — the header is corrupted"
            )
        payload = blob[header_end:]
        sections = _read_sections(payload, header.get("sections", []))
        if hashlib.sha256(payload).hexdigest() != header.get("payload_hash"):
            raise SnapshotFormatError(
                f"{path}: payload SHA-256 does not match the header — the "
                "file is corrupted"
            )
        if (
            _content_digest(
                str(header["motif"]["name"]),
                str(header.get("node_codec", "json")),
                sections["nodes"],
                sections["edge_endpoints"],
                sections["target_endpoints"],
            )
            != header.get("content_hash")
        ):
            raise SnapshotFormatError(
                f"{path}: content hash does not match the stored inputs — the "
                "header and payload disagree; the file is corrupted"
            )
        return {
            "kind": "snapshot",
            "path": str(path),
            "format_version": int(header["format_version"]),
            "content_hash": header["content_hash"],
            "payload_hash": header["payload_hash"],
            "motif": dict(header.get("motif", {})),
            "constant": header.get("constant"),
            "counts": dict(header.get("counts", {})),
        }

    raise SnapshotFormatError(
        f"{path} starts with neither the snapshot magic {SNAPSHOT_MAGIC!r} "
        f"nor the delta magic {DELTA_MAGIC!r}"
    )
