"""Versioned on-disk snapshots of a built target-subgraph index.

Target-subgraph enumeration is the entire cost of opening a protection
session; the enumerated index itself is just flat integer arrays.  A
*snapshot* freezes a built :class:`~repro.motifs.enumeration.TargetSubgraphIndex`
(together with its :class:`~repro.graphs.indexed.IndexedGraph` and the
problem's dissimilarity constant ``C``) into a single file, and
:func:`load_snapshot` restores it **bit-identically** — the restored
session's greedy traces match a freshly enumerated build exactly, and no
enumeration runs at load time.

File format (``format version 1``)
----------------------------------
::

    bytes  0..11   magic  b"REPROTPPSNAP"
    bytes 12..15   format version        (u32, little endian)
    bytes 16..23   header length H       (u64, little endian)
    bytes 24..24+H JSON header           (utf-8)
    rest           payload: the sections, concatenated

The JSON header records the format version (again — the fixed-offset copy
is what the version check reads, so it survives header-schema changes), the
motif identity, the constant ``C``, element counts, the section table
(``[name, offset, length]`` with offsets relative to the payload start),
and three SHA-256 digests:

* ``payload_hash`` — over the raw payload bytes; detects truncation and
  bit-rot (:class:`~repro.exceptions.SnapshotFormatError` on mismatch).
* ``header_hash`` — over the header's own canonical JSON (itself
  excluded); the constant ``C``, the counts and the section table are data
  too, so header corruption is refused, not silently served.
* ``content_hash`` — over the *inputs* (graph + motif + targets, see
  :func:`snapshot_content_hash`); lets a holder of the live objects refuse
  a stale snapshot (:class:`~repro.exceptions.SnapshotMismatchError`), so
  an index built for yesterday's graph can never silently serve wrong
  gains.

Payload sections:

``nodes``
    The node labels in dense-id order.  JSON-encoded when every label is
    exactly ``int`` or ``str`` (every built-in dataset's are); pickled
    otherwise.
``edge_endpoints`` / ``target_endpoints``
    Node-id pairs (flat C-long arrays, length ``2m`` / ``2|T|``); the
    canonical edge tuples are rebuilt via
    :func:`~repro.graphs.graph.canonical_edge`.
``graph_indptr`` / ``graph_neighbors`` / ``graph_incident_edges``
    The :class:`IndexedGraph` CSR adjacency, verbatim.
``index:*``
    The ten :data:`~repro.motifs.enumeration.INDEX_ARRAY_FIELDS` flat
    arrays of the built index, verbatim — everything else the index needs
    is re-derived deterministically from these on load.
``motif_pickle``
    Only for custom (non-registry) motifs: the pickled
    :class:`~repro.motifs.base.MotifPattern` instance.  Built-in motifs are
    stored by registry name and reconstructed without pickle.

Trust model: a snapshot is a build artifact, not an interchange format —
loading a file that contains pickled sections (custom motifs, or non-int/str
node labels) executes pickle and must only be done with files you produced;
pass ``allow_pickle=False`` to refuse such files outright.  Snapshots are
also platform-bound to the C-long width they were written with (recorded in
the header and checked on load).

Typical usage::

    from repro import TPPProblem
    from repro.service import ProtectionService

    problem = TPPProblem(graph, targets, motif="triangle")
    problem.save_index("arenas.tppsnap")          # builds if needed, then writes

    service = ProtectionService.from_snapshot("arenas.tppsnap")   # no enumeration
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import struct
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import SnapshotFormatError, SnapshotMismatchError
from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.graphs.indexed import NP_LONG, IndexedGraph
from repro.motifs.base import MotifPattern, available_motifs, coerce_motif, get_motif
from repro.motifs.enumeration import INDEX_ARRAY_FIELDS, TargetSubgraphIndex

__all__ = [
    "SNAPSHOT_VERSION",
    "SNAPSHOT_MAGIC",
    "IndexSnapshot",
    "save_snapshot",
    "load_snapshot",
    "snapshot_content_hash",
    "index_content_hash",
]

#: Current snapshot format version; bumped on any incompatible layout change.
SNAPSHOT_VERSION = 1

#: Fixed file marker at offset 0 of every snapshot.
SNAPSHOT_MAGIC = b"REPROTPPSNAP"

#: Fixed-offset preamble: magic + u32 version + u64 header length.
_PREAMBLE = struct.Struct(f"<{len(SNAPSHOT_MAGIC)}sIQ")

#: Domain separator prefixed to every content-hash stream.
_HASH_DOMAIN = b"repro-tpp-index-snapshot\x00"

_LONG_ITEMSIZE = array("l").itemsize


# ----------------------------------------------------------------------
# section codecs
# ----------------------------------------------------------------------
def _encode_nodes(nodes: Sequence[Node]) -> Tuple[str, bytes]:
    """Encode the node-label tuple; JSON when losslessly possible.

    JSON keeps snapshots pickle-free for the common int/str-labelled graphs
    (and makes the content hash reproducible across interpreter versions);
    anything else falls back to pickle.
    """
    if all(type(node) in (int, str) for node in nodes):
        return "json", json.dumps(
            list(nodes), separators=(",", ":"), ensure_ascii=True
        ).encode("utf-8")
    return "pickle", pickle.dumps(tuple(nodes), protocol=4)


def _decode_nodes(codec: str, blob: bytes, allow_pickle: bool) -> Tuple[Node, ...]:
    if codec == "json":
        return tuple(json.loads(blob.decode("utf-8")))
    if codec == "pickle":
        if not allow_pickle:
            raise SnapshotFormatError(
                "snapshot stores pickled node labels and allow_pickle is False"
            )
        return tuple(pickle.loads(blob))
    raise SnapshotFormatError(f"unknown node codec {codec!r}")


def _long_bytes(values: Union[array, np.ndarray]) -> bytes:
    """Serialise a C-long buffer (``array('l')`` or NP_LONG ndarray) to bytes."""
    if isinstance(values, array):
        return values.tobytes()
    return np.ascontiguousarray(values, dtype=NP_LONG).tobytes()


def _as_long_nd(blob: bytes, name: str) -> np.ndarray:
    if len(blob) % _LONG_ITEMSIZE:
        raise SnapshotFormatError(
            f"section {name!r} length {len(blob)} is not a multiple of the "
            f"C-long width {_LONG_ITEMSIZE}"
        )
    # copy out of the read-only file buffer so downstream .copy()-free reads
    # behave exactly like a freshly built index's writable arrays
    return np.frombuffer(blob, dtype=NP_LONG).copy()


def _as_long_array(blob: bytes, name: str) -> array:
    if len(blob) % _LONG_ITEMSIZE:
        raise SnapshotFormatError(
            f"section {name!r} length {len(blob)} is not a multiple of the "
            f"C-long width {_LONG_ITEMSIZE}"
        )
    out = array("l")
    out.frombytes(blob)
    return out


def _endpoint_ids(pairs: Sequence[Edge], node_id: Dict[Node, int], what: str) -> array:
    """Flatten canonical edge tuples into a ``2k``-long id array."""
    out = array("l")
    for u, v in pairs:
        try:
            out.append(node_id[u])
            out.append(node_id[v])
        except KeyError as missing:
            raise SnapshotFormatError(
                f"{what} endpoint {missing.args[0]!r} is not a node of the "
                "indexed graph; cannot serialise it as a node-id pair"
            ) from None
    return out


def _edges_from_ids(ids: np.ndarray, nodes: Tuple[Node, ...]) -> List[Edge]:
    # pairs were written from already-canonical tuples in tuple order, so
    # rebuilding them positionally reproduces the canonical form verbatim
    # (no per-edge canonical_edge call on the cold-start critical path)
    flat = iter(ids.tolist())
    return [(nodes[a], nodes[b]) for a, b in zip(flat, flat)]


# ----------------------------------------------------------------------
# content hash
# ----------------------------------------------------------------------
def _content_digest(
    motif_name: str,
    node_codec: str,
    nodes_blob: bytes,
    edge_blob: bytes,
    target_blob: bytes,
) -> str:
    digest = hashlib.sha256()
    for part in (
        _HASH_DOMAIN,
        motif_name.encode("utf-8"),
        b"\x00",
        node_codec.encode("ascii"),
        b"\x00",
        nodes_blob,
        edge_blob,
        target_blob,
    ):
        digest.update(part)
    return digest.hexdigest()


def snapshot_content_hash(
    graph: Graph,
    targets: Sequence[Edge],
    motif: Union[str, MotifPattern],
) -> str:
    """Return the content hash a snapshot of ``(graph, targets, motif)`` carries.

    The hash covers the snapshot's *inputs* — the phase-1 graph structure
    (nodes in dense-id order plus the canonical edge list), the target
    links, and the motif name — not the enumerated arrays, so it is cheap
    to recompute from live objects (one :class:`IndexedGraph` construction,
    no enumeration).  :meth:`IndexSnapshot.verify` compares this against a
    loaded file to refuse stale snapshots.

    Parameters
    ----------
    graph:
        The *original* graph (targets still present), exactly as passed to
        :class:`~repro.core.model.TPPProblem`.
    targets:
        The sensitive target links.
    motif:
        Motif name or pattern instance.  Custom motifs hash by their
        ``name`` attribute — two different patterns sharing a name also
        share a hash, so give custom motifs distinctive names.

    Returns
    -------
    str
        A SHA-256 hex digest.
    """
    motif = coerce_motif(motif)
    canonical_targets = [canonical_edge(*target) for target in targets]
    phase1 = graph.without_edges(canonical_targets)
    indexed = IndexedGraph(phase1)
    node_id = {node: index for index, node in enumerate(indexed.nodes)}
    codec, nodes_blob = _encode_nodes(indexed.nodes)
    edge_blob = _endpoint_ids(indexed.edges, node_id, "edge").tobytes()
    target_blob = _endpoint_ids(canonical_targets, node_id, "target").tobytes()
    return _content_digest(motif.name, codec, nodes_blob, edge_blob, target_blob)


def index_content_hash(index: TargetSubgraphIndex) -> str:
    """Return the content hash of a *built* index's inputs.

    Equals the ``content_hash`` a snapshot of this index would carry (and
    :func:`snapshot_content_hash` recomputed from the problem's original
    graph) without constructing anything: the endpoint-id pairs come
    straight off the live :class:`IndexedGraph`.  This is how delta
    snapshots (:mod:`repro.persistence.delta`) name their parent and result
    states.
    """
    indexed = index.indexed_graph
    node_id = {node: position for position, node in enumerate(indexed.nodes)}
    codec, nodes_blob = _encode_nodes(indexed.nodes)
    edge_blob = np.ascontiguousarray(
        indexed._endpoint_id_pairs(), dtype=NP_LONG
    ).tobytes()
    target_blob = _endpoint_ids(index.targets, node_id, "target").tobytes()
    return _content_digest(index.motif.name, codec, nodes_blob, edge_blob, target_blob)


def _header_digest(header: Dict[str, object]) -> str:
    """SHA-256 of the header's canonical JSON form (``header_hash`` excluded)."""
    canonical = json.dumps(
        {key: value for key, value in header.items() if key != "header_hash"},
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def save_snapshot(
    path: Union[str, Path],
    index: TargetSubgraphIndex,
    constant: int,
) -> Path:
    """Write a built index (plus the constant ``C``) to a snapshot file.

    Parameters
    ----------
    path:
        Destination file (parent directories are created).  By convention
        snapshots use the ``.tppsnap`` suffix, but any path is accepted.
    index:
        A built :class:`TargetSubgraphIndex`.  Its flat arrays are written
        verbatim, so :func:`load_snapshot` restores it bit-identically.
    constant:
        The dissimilarity constant ``C`` of the problem the index serves
        (stored so a cold-started session scores ``Δ_t^p`` identically).

    Returns
    -------
    pathlib.Path
        The written path.

    Raises
    ------
    SnapshotFormatError
        If the index cannot be serialised (e.g. a target endpoint missing
        from the indexed graph).
    """
    indexed = index.indexed_graph
    node_id = {node: position for position, node in enumerate(indexed.nodes)}
    node_codec, nodes_blob = _encode_nodes(indexed.nodes)
    edge_blob = _endpoint_ids(indexed.edges, node_id, "edge").tobytes()
    target_blob = _endpoint_ids(index.targets, node_id, "target").tobytes()

    sections: List[Tuple[str, bytes]] = [
        ("nodes", nodes_blob),
        ("edge_endpoints", edge_blob),
        ("graph_indptr", _long_bytes(indexed._indptr)),
        ("graph_neighbors", _long_bytes(indexed._neighbors)),
        ("graph_incident_edges", _long_bytes(indexed._incident_edges)),
        ("target_endpoints", target_blob),
    ]
    for name in INDEX_ARRAY_FIELDS:
        sections.append((f"index:{name}", _long_bytes(getattr(index, name))))

    motif = index.motif
    # stored by registry name only when the instance *is* the registered
    # class — an unregistered pattern that merely shares a registered name
    # must travel by pickle, or loading would silently substitute the
    # registry's (different) pattern for recounts and subset re-enumeration
    if motif.name.lower() in available_motifs() and type(motif) is type(
        get_motif(motif.name)
    ):
        motif_meta: Dict[str, str] = {"kind": "builtin", "name": motif.name}
    else:
        motif_meta = {"kind": "pickle", "name": motif.name}
        sections.append(("motif_pickle", pickle.dumps(motif, protocol=4)))

    payload = io.BytesIO()
    table: List[Tuple[str, int, int]] = []
    for name, blob in sections:
        table.append((name, payload.tell(), len(blob)))
        payload.write(blob)
    payload_bytes = payload.getvalue()

    header = {
        "format_version": SNAPSHOT_VERSION,
        "long_itemsize": _LONG_ITEMSIZE,
        "motif": motif_meta,
        "constant": int(constant),
        "node_codec": node_codec,
        "counts": {
            "nodes": indexed.number_of_nodes(),
            "edges": indexed.number_of_edges(),
            "targets": len(index.targets),
            "instances": index.number_of_instances(),
            "candidate_edges": index.number_of_candidate_edges(),
        },
        "content_hash": _content_digest(
            motif.name, node_codec, nodes_blob, edge_blob, target_blob
        ),
        "payload_hash": hashlib.sha256(payload_bytes).hexdigest(),
        "sections": table,
    }
    # the header itself (constant, counts, motif identity, section table)
    # is data too — digest it so header bit-rot cannot silently shift C
    header["header_hash"] = _header_digest(header)
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        handle.write(
            _PREAMBLE.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, len(header_bytes))
        )
        handle.write(header_bytes)
        handle.write(payload_bytes)
    return path


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexSnapshot:
    """A loaded index snapshot: the restored index, the constant, the header.

    Attributes
    ----------
    index:
        The restored :class:`TargetSubgraphIndex` — bit-identical flat
        arrays to the index that was saved, ready to serve queries with no
        enumeration.
    constant:
        The dissimilarity constant ``C`` the snapshot was saved with.
    header:
        The parsed snapshot header (format version, motif identity, counts,
        hashes, section table) for diagnostics.
    """

    index: TargetSubgraphIndex
    constant: int
    header: Dict[str, object] = field(repr=False)

    @property
    def content_hash(self) -> str:
        """The stored content hash over (graph + motif + targets)."""
        return str(self.header["content_hash"])

    def matches(
        self,
        graph: Graph,
        targets: Sequence[Edge],
        motif: Union[str, MotifPattern],
    ) -> bool:
        """Return whether this snapshot was built for the given live inputs.

        Recomputes :func:`snapshot_content_hash` from the live objects and
        compares it with the stored hash.
        """
        return self.content_hash == snapshot_content_hash(graph, targets, motif)

    def verify(
        self,
        graph: Graph,
        targets: Sequence[Edge],
        motif: Union[str, MotifPattern],
    ) -> None:
        """Raise unless this snapshot was built for the given live inputs.

        Raises
        ------
        SnapshotMismatchError
            If the content hashes disagree — the snapshot is stale (the
            graph, targets or motif changed since it was written) and must
            not serve this instance.
        """
        if not self.matches(graph, targets, motif):
            raise SnapshotMismatchError(
                "snapshot content hash does not match the live "
                "(graph, targets, motif): the snapshot is stale — rebuild it "
                "with TPPProblem.save_index() / repro-tpp build-index"
            )


def _read_sections(
    payload: bytes, table: List[object]
) -> Dict[str, bytes]:
    sections: Dict[str, bytes] = {}
    expected_end = 0
    for entry in table:
        try:
            name, offset, length = entry
            offset = int(offset)
            length = int(length)
        except (TypeError, ValueError):
            raise SnapshotFormatError(f"malformed section table entry {entry!r}") from None
        end = offset + length
        if offset < 0 or end > len(payload):
            raise SnapshotFormatError(
                f"section {name!r} spans bytes {offset}..{end} but the payload "
                f"holds only {len(payload)} bytes — the file is truncated"
            )
        sections[str(name)] = payload[offset:end]
        expected_end = max(expected_end, end)
    if expected_end != len(payload):
        raise SnapshotFormatError(
            f"payload holds {len(payload)} bytes but the sections only cover "
            f"{expected_end} — trailing garbage or a corrupted section table"
        )
    return sections


def load_snapshot(
    path: Union[str, Path], allow_pickle: bool = True
) -> IndexSnapshot:
    """Load a snapshot file back into a bit-identical built index.

    Every failure mode is checked before any object is constructed: magic
    marker, format version, C-long width, payload truncation, payload
    digest, content digest, and the mutual consistency of the flat arrays.
    Restoring runs no enumeration — cold-start cost is file I/O plus
    rebuilding the node/edge dictionaries.

    Parameters
    ----------
    path:
        A file written by :func:`save_snapshot`.
    allow_pickle:
        Snapshots of custom motifs (and of graphs with non-int/str node
        labels) contain pickled sections; loading those executes pickle, so
        only load such files from trusted sources.  ``False`` refuses them
        with a :class:`SnapshotFormatError` instead.

    Returns
    -------
    IndexSnapshot
        The restored index, the constant ``C`` and the parsed header.

    Raises
    ------
    SnapshotFormatError
        On any unreadable, truncated, corrupted, version- or
        platform-mismatched file.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise SnapshotFormatError(f"cannot read snapshot {path}: {error}") from error
    if len(blob) < _PREAMBLE.size:
        raise SnapshotFormatError(
            f"{path} holds {len(blob)} bytes, shorter than the "
            f"{_PREAMBLE.size}-byte snapshot preamble — not a snapshot or truncated"
        )
    magic, version, header_length = _PREAMBLE.unpack_from(blob)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotFormatError(
            f"{path} does not start with the snapshot magic {SNAPSHOT_MAGIC!r}"
        )
    if version != SNAPSHOT_VERSION:
        raise SnapshotFormatError(
            f"{path} uses snapshot format version {version}; this build "
            f"reads version {SNAPSHOT_VERSION} — regenerate the snapshot"
        )
    header_end = _PREAMBLE.size + header_length
    if len(blob) < header_end:
        raise SnapshotFormatError(f"{path} is truncated inside the header")
    try:
        header = json.loads(blob[_PREAMBLE.size : header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(
            f"{path} carries an unparseable header: {error}"
        ) from error
    if _header_digest(header) != header.get("header_hash"):
        raise SnapshotFormatError(
            f"{path}: header SHA-256 does not match — the header is corrupted"
        )
    if header.get("long_itemsize") != _LONG_ITEMSIZE:
        raise SnapshotFormatError(
            f"{path} was written with {header.get('long_itemsize')}-byte C longs; "
            f"this platform uses {_LONG_ITEMSIZE}-byte — regenerate the snapshot here"
        )

    payload = blob[header_end:]
    sections = _read_sections(payload, header.get("sections", []))
    if hashlib.sha256(payload).hexdigest() != header.get("payload_hash"):
        raise SnapshotFormatError(
            f"{path}: payload SHA-256 does not match the header — the file is corrupted"
        )

    nodes = _decode_nodes(
        str(header.get("node_codec", "json")), sections["nodes"], allow_pickle
    )
    edge_ids = _as_long_nd(sections["edge_endpoints"], "edge_endpoints")
    target_ids = _as_long_nd(sections["target_endpoints"], "target_endpoints")
    if len(edge_ids) % 2 or len(target_ids) % 2:
        raise SnapshotFormatError("endpoint sections must hold id pairs")
    if len(edge_ids) and (edge_ids.min() < 0 or edge_ids.max() >= len(nodes)):
        raise SnapshotFormatError("edge endpoint ids fall outside the node table")
    if len(target_ids) and (target_ids.min() < 0 or target_ids.max() >= len(nodes)):
        raise SnapshotFormatError("target endpoint ids fall outside the node table")

    if (
        _content_digest(
            str(header["motif"]["name"]),
            str(header.get("node_codec", "json")),
            sections["nodes"],
            sections["edge_endpoints"],
            sections["target_endpoints"],
        )
        != header.get("content_hash")
    ):
        raise SnapshotFormatError(
            f"{path}: content hash does not match the stored inputs — the "
            "header and payload disagree; the file is corrupted"
        )

    targets = _edges_from_ids(target_ids, nodes)

    indptr = _as_long_array(sections["graph_indptr"], "graph_indptr")
    neighbors = _as_long_array(sections["graph_neighbors"], "graph_neighbors")
    incident = _as_long_array(sections["graph_incident_edges"], "graph_incident_edges")
    n, m = len(nodes), len(edge_ids) // 2
    if len(indptr) != n + 1 or (n and indptr[n] != 2 * m):
        raise SnapshotFormatError("graph CSR indptr is inconsistent with the node/edge counts")
    if len(neighbors) != 2 * m or len(incident) != 2 * m:
        raise SnapshotFormatError("graph CSR rows are inconsistent with the edge count")

    motif_meta = header.get("motif", {})
    if motif_meta.get("kind") == "builtin":
        motif: Union[str, MotifPattern] = str(motif_meta["name"])
    elif motif_meta.get("kind") == "pickle":
        if not allow_pickle:
            raise SnapshotFormatError(
                "snapshot stores a pickled custom motif and allow_pickle is False"
            )
        motif = pickle.loads(sections["motif_pickle"])
    else:
        raise SnapshotFormatError(f"unknown motif kind {motif_meta.get('kind')!r}")

    arrays: Dict[str, np.ndarray] = {}
    for name in INDEX_ARRAY_FIELDS:
        key = f"index:{name}"
        if key not in sections:
            raise SnapshotFormatError(f"snapshot is missing the {key!r} section")
        arrays[name] = _as_long_nd(sections[key], key)
    _validate_index_arrays(arrays, m, len(targets))

    indexed = IndexedGraph._restore(nodes, edge_ids, indptr, neighbors, incident)
    index = TargetSubgraphIndex._restore(indexed, targets, motif, arrays)
    constant = int(header["constant"])
    if constant < index.initial_total_similarity():
        # TPPProblem.__init__ enforced this when the snapshot was built;
        # re-check so a restored problem can never report negative f(P, T)
        raise SnapshotFormatError(
            f"{path}: constant C={constant} is smaller than the snapshot's "
            f"initial similarity {index.initial_total_similarity()}"
        )
    return IndexSnapshot(index=index, constant=constant, header=header)


def _validate_index_arrays(
    arrays: Dict[str, np.ndarray], n_edges: int, n_targets: int
) -> None:
    """Check the mutual consistency of the ten restored index arrays."""
    inst_indptr = arrays["_inst_indptr"]
    n_instances = len(inst_indptr) - 1
    n_memberships = len(arrays["_inst_edge_ids"])
    if n_instances < 0 or (n_instances >= 0 and len(inst_indptr) and inst_indptr[0] != 0):
        raise SnapshotFormatError("index instance indptr must start at 0")
    if not len(inst_indptr) or inst_indptr[-1] != n_memberships:
        raise SnapshotFormatError(
            "index instance indptr is inconsistent with the membership count"
        )
    if len(arrays["_inst_target_idx"]) != n_instances:
        raise SnapshotFormatError(
            "index target attribution is inconsistent with the instance count"
        )
    if n_instances and (
        arrays["_inst_target_idx"].min() < 0
        or arrays["_inst_target_idx"].max() >= n_targets
    ):
        raise SnapshotFormatError("index target attribution falls outside the target list")
    if len(arrays["_edge_indptr"]) != n_edges + 1 or len(arrays["_et_indptr"]) != n_edges + 1:
        raise SnapshotFormatError("index edge CSRs are inconsistent with the edge count")
    if len(arrays["_edge_inst_ids"]) != n_memberships or len(arrays["_inst_slot"]) != n_memberships:
        raise SnapshotFormatError("index inverse CSR is inconsistent with the membership count")
    if len(arrays["_initial_gain"]) != n_edges:
        raise SnapshotFormatError("index gain counters are inconsistent with the edge count")
    if len(arrays["_et_tidx"]) != len(arrays["_et_initial_count"]):
        raise SnapshotFormatError("index counter matrix rows are inconsistent")
