"""Sharded session bundles: one file holding every shard's snapshot.

A :class:`~repro.service.sharding.ShardedProtectionService` is K ordinary
sessions behind a router, and it persists as exactly that: one ``.tppsnap``
snapshot member per shard plus a JSON manifest recording the shard order,
the shared constant and the combined content hash.  The layout mirrors
session bundles (:mod:`repro.persistence.session`)::

    session.tppshards
    ├── manifest.json        {"kind": "sharded-session", "shards": [...]}
    ├── shard-0000.tppsnap   shard 0's index snapshot
    ├── shard-0001.tppsnap   ...
    └── shard-0002.tppsnap

Because each member is a self-contained snapshot, a replica can cold-start
the *whole* session (:func:`load_sharded_session`) or any *single* shard
(``load_sharded_session(path, shard=2)`` returns a plain
:class:`~repro.service.ProtectionService` over just that shard's targets)
— which is the multi-machine story: ship one bundle, each machine opens
its own shard.  Member timestamps are pinned, so saving the same session
twice produces byte-identical bundles.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Union

from repro.exceptions import ShardError, SnapshotFormatError, SnapshotMismatchError
from repro.persistence.snapshot import index_content_hash, save_snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.motifs.enumeration import TargetSubgraphIndex
    from repro.service.service import ProtectionService
    from repro.service.sharding import ShardedProtectionService

__all__ = [
    "SHARDED_SESSION_SUFFIX",
    "SHARDED_SESSION_VERSION",
    "combined_content_hash",
    "save_sharded_session",
    "load_sharded_session",
]

#: Conventional file suffix for sharded session bundles.
SHARDED_SESSION_SUFFIX = ".tppshards"

#: Bundle manifest format version (bump on incompatible layout changes).
SHARDED_SESSION_VERSION = 1

_MANIFEST_NAME = "manifest.json"
#: Fixed member timestamp: bundles must be byte-stable across re-saves.
_EPOCH = (1980, 1, 1, 0, 0, 0)


def combined_content_hash(indexes: Iterable["TargetSubgraphIndex"]) -> str:
    """Hash a whole shard layout: per-shard content hashes, in shard order.

    Shard order is part of the identity on purpose — the same targets
    dealt into a different layout serve different sub-requests, and a
    delta snapshot recorded against one layout must not silently apply to
    another.
    """
    digest = hashlib.sha256()
    for index in indexes:
        digest.update(index_content_hash(index).encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def _write_member(archive: zipfile.ZipFile, name: str, data: bytes) -> None:
    info = zipfile.ZipInfo(name, date_time=_EPOCH)
    info.compress_type = zipfile.ZIP_DEFLATED
    archive.writestr(info, data)


def save_sharded_session(
    path: Union[str, Path], service: "ShardedProtectionService"
) -> Path:
    """Write a sharded session — one snapshot per shard — to a bundle.

    Parameters
    ----------
    path:
        Destination file (parent directories are created).  By convention
        sharded bundles use the ``.tppshards`` suffix.
    service:
        A live :class:`~repro.service.sharding.ShardedProtectionService`.
        Cached subset sub-sessions inside the shards are not persisted —
        they re-enumerate on demand, exactly like an unsharded session
        restored from a plain snapshot.

    Returns
    -------
    pathlib.Path
        The written path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    shards = service.shards
    with tempfile.TemporaryDirectory(prefix="tppshards-") as scratch:
        scratch_dir = Path(scratch)
        members: List[str] = []
        for position, shard in enumerate(shards):
            member = f"shard-{position:04d}.tppsnap"
            save_snapshot(
                scratch_dir / member, shard.index, shard.problem.constant
            )
            members.append(member)
        manifest = {
            "format_version": SHARDED_SESSION_VERSION,
            "kind": "sharded-session",
            "shards": members,
            "constant": service.constant,
            "content_hash": combined_content_hash(
                [shard.index for shard in shards]
            ),
            "targets_per_shard": [len(shard.targets) for shard in shards],
        }
        with zipfile.ZipFile(path, "w") as archive:
            _write_member(
                archive,
                _MANIFEST_NAME,
                json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
            )
            for member in members:
                _write_member(archive, member, (scratch_dir / member).read_bytes())
    return path


def _read_manifest(archive: zipfile.ZipFile, path: Path) -> dict:
    try:
        raw = archive.read(_MANIFEST_NAME)
    except KeyError:
        raise SnapshotFormatError(
            f"{path} is not a sharded session bundle: no {_MANIFEST_NAME} member"
        ) from None
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(
            f"{path}: corrupted bundle manifest ({error})"
        ) from None
    if not isinstance(manifest, dict) or manifest.get("kind") != "sharded-session":
        raise SnapshotFormatError(
            f"{path}: bundle manifest does not describe a sharded session"
        )
    version = manifest.get("format_version")
    if version != SHARDED_SESSION_VERSION:
        raise SnapshotFormatError(
            f"{path}: unsupported sharded bundle version {version!r} "
            f"(this library reads version {SHARDED_SESSION_VERSION})"
        )
    return manifest


def _member_names(manifest: dict, path: Path) -> List[str]:
    members = manifest.get("shards")
    if not isinstance(members, list) or not members:
        raise SnapshotFormatError(
            f"{path}: bundle manifest names no shard members"
        )
    for name in members:
        # member names come from the manifest; refuse anything that could
        # escape the extraction directory (zip-slip) or is plainly malformed
        if not isinstance(name, str) or "/" in name or "\\" in name or name.startswith("."):
            raise SnapshotFormatError(
                f"{path}: bundle manifest names invalid member {name!r}"
            )
    return [str(name) for name in members]


def _extract_member(
    archive: zipfile.ZipFile, name: str, target_dir: Path, path: Path
) -> Path:
    try:
        data = archive.read(name)
    except KeyError:
        raise SnapshotFormatError(
            f"{path}: bundle member {name!r} named by the manifest is missing"
        ) from None
    target = target_dir / name
    target.write_bytes(data)
    return target


def load_sharded_session(
    path: Union[str, Path],
    shard: Optional[int] = None,
    allow_pickle: bool = True,
    max_cached_subsets: Optional[int] = 32,
    build_workers: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Union["ShardedProtectionService", "ProtectionService"]:
    """Restore a sharded bundle — the whole session or a single shard.

    Parameters
    ----------
    path:
        A ``.tppshards`` file written by :func:`save_sharded_session`.
    shard:
        ``None`` restores the complete
        :class:`~repro.service.sharding.ShardedProtectionService`.  An
        integer restores *only* that shard as a plain
        :class:`~repro.service.ProtectionService` — the replica pays one
        shard's I/O and memory, which is how a fleet splits a session
        across machines.
    allow_pickle / max_cached_subsets / build_workers / kernel:
        As in :func:`repro.persistence.load_session`, applied to every
        restored shard.

    Raises
    ------
    repro.exceptions.SnapshotFormatError
        If the file is not a sharded bundle or the manifest/members are
        corrupt.
    repro.exceptions.SnapshotMismatchError
        If the restored shards' combined content hash disagrees with the
        manifest's.
    repro.exceptions.ShardError
        If ``shard`` is out of range for the bundle.
    """
    from repro.core.model import TPPProblem
    from repro.service.service import ProtectionService
    from repro.service.sharding import ShardedProtectionService

    path = Path(path)
    if not zipfile.is_zipfile(path):
        raise SnapshotFormatError(
            f"{path} is not a sharded session bundle (not a zip archive)"
        )
    with zipfile.ZipFile(path) as archive:
        manifest = _read_manifest(archive, path)
        names = _member_names(manifest, path)
        if shard is not None:
            if not 0 <= shard < len(names):
                raise ShardError(
                    f"{path} holds shards 0..{len(names) - 1}, "
                    f"requested shard {shard}",
                    shard=shard,
                )
            names_to_load = [names[shard]]
        else:
            names_to_load = names
        with tempfile.TemporaryDirectory(prefix="tppshards-") as scratch:
            scratch_dir = Path(scratch)
            problems = [
                TPPProblem.from_snapshot(
                    _extract_member(archive, name, scratch_dir, path),
                    allow_pickle=allow_pickle,
                )
                for name in names_to_load
            ]
            if shard is not None:
                service = ProtectionService(
                    problems[0],
                    max_cached_subsets=max_cached_subsets,
                    build_workers=build_workers,
                    kernel=kernel,
                )
                service._index_source = "snapshot"
                return service
            expected_hash = manifest.get("content_hash")
            actual_hash = combined_content_hash(
                [problem.build_index() for problem in problems]
            )
            if expected_hash != actual_hash:
                raise SnapshotMismatchError(
                    f"{path}: the shards' combined content hash "
                    f"{actual_hash[:12]}… does not match the bundle "
                    f"manifest's {str(expected_hash)[:12]}… — the bundle was "
                    "tampered with or assembled from mismatched files"
                )
            return ShardedProtectionService._from_problems(
                problems,
                max_cached_subsets=max_cached_subsets,
                build_workers=build_workers,
                kernel=kernel,
                index_source="snapshot",
            )
