"""Session bundles: one file holding a session *and* its subset caches.

A plain index snapshot (:mod:`repro.persistence.snapshot`) restores the
parent session without enumeration, but every cached subset sub-session —
each one a full enumeration over a different target subset — is lost and
must be re-built on the replica's first subset query.  A session bundle
closes that gap: :func:`save_session` writes the parent snapshot plus one
snapshot per LRU-cached subset sub-session into a single ``.tppsess`` zip
archive, and :func:`load_session` restores the parent and wires every
sub-session back into the cache, so a cold-started replica answers subset
queries with ``reused_index: true`` from its very first request.

The archive layout is deliberately boring — stdlib :mod:`zipfile`, a JSON
``manifest.json``, and ordinary ``.tppsnap`` members that
``repro-tpp verify-index`` could validate individually::

    session.tppsess
    ├── manifest.json        {"kind": "session", "parent": ..., "subsets": [...]}
    ├── parent.tppsnap       the session's own index snapshot
    ├── subset-0000.tppsnap  least-recently-used cached subset first
    └── subset-0001.tppsnap  ...

Member timestamps are pinned, so saving the same session twice produces
byte-identical bundles.  The convenient entry points sit one layer up:
:meth:`repro.service.ProtectionService.save_session` /
:meth:`~repro.service.ProtectionService.from_session`.
"""

from __future__ import annotations

import json
import tempfile
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

from repro.exceptions import SnapshotFormatError, SnapshotMismatchError
from repro.persistence.snapshot import index_content_hash, save_snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.service.service import ProtectionService

__all__ = [
    "SESSION_SUFFIX",
    "SESSION_VERSION",
    "save_session",
    "load_session",
]

#: Conventional file suffix for session bundles.
SESSION_SUFFIX = ".tppsess"

#: Bundle manifest format version (bump on incompatible layout changes).
SESSION_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_PARENT_NAME = "parent.tppsnap"
#: Fixed member timestamp: bundles must be byte-stable across re-saves.
_EPOCH = (1980, 1, 1, 0, 0, 0)


def _write_member(archive: zipfile.ZipFile, name: str, data: bytes) -> None:
    info = zipfile.ZipInfo(name, date_time=_EPOCH)
    info.compress_type = zipfile.ZIP_DEFLATED
    archive.writestr(info, data)


def save_session(path: Union[str, Path], service: "ProtectionService") -> Path:
    """Write ``service`` — parent index plus cached subset sub-sessions —
    to a session bundle.

    Parameters
    ----------
    path:
        Destination file (parent directories are created).  By convention
        bundles use the ``.tppsess`` suffix, but any path is accepted.
    service:
        A live :class:`~repro.service.ProtectionService`.  Its subset cache
        is copied point-in-time; concurrent queries keep running.

    Returns
    -------
    pathlib.Path
        The written path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    subsets = service.cached_subset_sessions()
    with tempfile.TemporaryDirectory(prefix="tppsess-") as scratch:
        scratch_dir = Path(scratch)
        members: List[str] = []
        parent_file = scratch_dir / _PARENT_NAME
        save_snapshot(parent_file, service.index, service.problem.constant)
        for position, subsession in enumerate(subsets.values()):
            member = f"subset-{position:04d}.tppsnap"
            save_snapshot(
                scratch_dir / member,
                subsession.index,
                subsession.problem.constant,
            )
            members.append(member)
        manifest = {
            "format_version": SESSION_VERSION,
            "kind": "session",
            "parent": _PARENT_NAME,
            "content_hash": index_content_hash(service.index),
            "subsets": members,
        }
        with zipfile.ZipFile(path, "w") as archive:
            _write_member(
                archive,
                _MANIFEST_NAME,
                json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
            )
            _write_member(archive, _PARENT_NAME, parent_file.read_bytes())
            for member in members:
                _write_member(archive, member, (scratch_dir / member).read_bytes())
    return path


def _read_manifest(archive: zipfile.ZipFile, path: Path) -> dict:
    try:
        raw = archive.read(_MANIFEST_NAME)
    except KeyError:
        raise SnapshotFormatError(
            f"{path} is not a session bundle: no {_MANIFEST_NAME} member"
        ) from None
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(
            f"{path}: corrupted bundle manifest ({error})"
        ) from None
    if not isinstance(manifest, dict) or manifest.get("kind") != "session":
        raise SnapshotFormatError(
            f"{path}: bundle manifest does not describe a session"
        )
    version = manifest.get("format_version")
    if version != SESSION_VERSION:
        raise SnapshotFormatError(
            f"{path}: unsupported session bundle version {version!r} "
            f"(this library reads version {SESSION_VERSION})"
        )
    return manifest


def _member_names(manifest: dict, path: Path) -> List[str]:
    parent = manifest.get("parent")
    subsets = manifest.get("subsets")
    names = [parent] + list(subsets if isinstance(subsets, list) else [None])
    for name in names:
        # member names come from the manifest; refuse anything that could
        # escape the extraction directory (zip-slip) or is plainly malformed
        if not isinstance(name, str) or "/" in name or "\\" in name or name.startswith("."):
            raise SnapshotFormatError(
                f"{path}: bundle manifest names invalid member {name!r}"
            )
    return [str(name) for name in names]


def _extract_member(
    archive: zipfile.ZipFile, name: str, target_dir: Path, path: Path
) -> Path:
    try:
        data = archive.read(name)
    except KeyError:
        raise SnapshotFormatError(
            f"{path}: bundle member {name!r} named by the manifest is missing"
        ) from None
    target = target_dir / name
    target.write_bytes(data)
    return target


def load_session(
    path: Union[str, Path],
    allow_pickle: bool = True,
    max_cached_subsets: Optional[int] = 32,
    build_workers: Optional[int] = None,
    kernel: Optional[str] = None,
) -> "ProtectionService":
    """Restore a session bundle written by :func:`save_session`.

    The parent session cold-starts exactly like
    :meth:`ProtectionService.from_snapshot
    <repro.service.ProtectionService.from_snapshot>` (``index_source``
    reports ``"snapshot"``), and every bundled subset sub-session is wired
    back into the LRU cache in its saved order — so the restored replica
    serves subset queries without re-enumeration.

    Parameters
    ----------
    path:
        A ``.tppsess`` file written by :func:`save_session`.
    allow_pickle:
        As in :func:`repro.persistence.load_snapshot` — applies to every
        snapshot member of the bundle.
    max_cached_subsets:
        LRU bound of the restored session.  When the bundle holds more
        sub-sessions than the bound, only the most recently used ones
        survive (same eviction rule as a live session).
    build_workers:
        As in the :class:`~repro.service.ProtectionService` constructor;
        only later subset builds can trigger it.
    kernel:
        As in the :class:`~repro.service.ProtectionService` constructor
        (bundles store arrays, not a kernel choice; the restored session
        and every restored sub-session resolve their own).

    Raises
    ------
    repro.exceptions.SnapshotFormatError
        If the file is not a session bundle, the manifest is corrupt, a
        member is missing/unreadable, or a bundled subset is not a subset
        of the parent's targets.
    repro.exceptions.SnapshotMismatchError
        If the parent snapshot's content hash disagrees with the hash the
        manifest was written with — the bundle was tampered with or
        assembled from mismatched files.
    """
    from repro.core.model import TPPProblem
    from repro.service.service import ProtectionService

    path = Path(path)
    if not zipfile.is_zipfile(path):
        raise SnapshotFormatError(
            f"{path} is not a session bundle (not a zip archive); "
            "plain *.tppsnap snapshots load via ProtectionService.from_snapshot"
        )
    with zipfile.ZipFile(path) as archive:
        manifest = _read_manifest(archive, path)
        names = _member_names(manifest, path)
        with tempfile.TemporaryDirectory(prefix="tppsess-") as scratch:
            scratch_dir = Path(scratch)
            extracted = [
                _extract_member(archive, name, scratch_dir, path) for name in names
            ]
            parent_problem = TPPProblem.from_snapshot(
                extracted[0], allow_pickle=allow_pickle
            )
            expected_hash = manifest.get("content_hash")
            actual_hash = index_content_hash(parent_problem.build_index())
            if expected_hash != actual_hash:
                raise SnapshotMismatchError(
                    f"{path}: the parent snapshot's content hash "
                    f"{actual_hash[:12]}… does not match the bundle manifest's "
                    f"{str(expected_hash)[:12]}… — the bundle was tampered "
                    "with or assembled from mismatched files"
                )
            service = ProtectionService(
                parent_problem,
                max_cached_subsets=max_cached_subsets,
                build_workers=build_workers,
                kernel=kernel,
            )
            service._index_source = "snapshot"
            known = set(service.targets)
            for member in extracted[1:]:
                sub_problem = TPPProblem.from_snapshot(
                    member, allow_pickle=allow_pickle
                )
                if not set(sub_problem.targets).issubset(known):
                    raise SnapshotFormatError(
                        f"{path}: bundled sub-session {member.name!r} targets "
                        "are not a subset of the parent session's targets"
                    )
                subsession = ProtectionService(
                    sub_problem,
                    max_cached_subsets=max_cached_subsets,
                    build_workers=build_workers,
                    kernel=kernel,
                )
                subsession._index_source = "snapshot"
                service._adopt_subsession(subsession)
    return service
