"""Persistence layer: on-disk snapshots of built target-subgraph indexes.

Enumeration is the entire cost of opening a protection session; snapshots
make it a one-time cost.  :func:`save_snapshot` freezes a built
:class:`~repro.motifs.enumeration.TargetSubgraphIndex` (flat arrays, motif
identity, target list, constant ``C``, content hash) into a single
versioned file and :func:`load_snapshot` restores it bit-identically — a
cold-started session's greedy traces match a fresh build exactly.

The convenient entry points sit one layer up:
:meth:`repro.core.model.TPPProblem.save_index` /
:meth:`~repro.core.model.TPPProblem.from_snapshot`,
:meth:`repro.service.ProtectionService.from_snapshot`, and the
``repro-tpp build-index`` / ``repro-tpp protect --index-file`` CLI
commands.

Graph updates persist too: :func:`save_delta_snapshot` writes an ordered
edge delta as a small diff file tied to its parent state's content hash
(:mod:`repro.persistence.delta`), and :func:`verify_snapshot_file`
validates either kind of file — hashes and format version — without
constructing an index (``repro-tpp verify-index``).

Whole sessions persist as well: :func:`save_session` bundles the parent
index snapshot *plus* every LRU-cached subset sub-session index into one
``.tppsess`` zip archive (:mod:`repro.persistence.session`), and
:func:`load_session` restores the session with its subset caches wired
back in — a replica cold-started from a bundle answers subset queries
without re-enumeration.
"""

from repro.persistence.delta import (
    DELTA_MAGIC,
    DELTA_VERSION,
    DeltaSnapshot,
    load_delta_snapshot,
    save_delta_snapshot,
    verify_snapshot_file,
)
from repro.persistence.session import (
    SESSION_SUFFIX,
    SESSION_VERSION,
    load_session,
    save_session,
)
from repro.persistence.shards import (
    SHARDED_SESSION_SUFFIX,
    SHARDED_SESSION_VERSION,
    combined_content_hash,
    load_sharded_session,
    save_sharded_session,
)
from repro.persistence.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    IndexSnapshot,
    index_content_hash,
    load_snapshot,
    save_snapshot,
    snapshot_content_hash,
)

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "IndexSnapshot",
    "load_snapshot",
    "save_snapshot",
    "snapshot_content_hash",
    "index_content_hash",
    "DELTA_MAGIC",
    "DELTA_VERSION",
    "DeltaSnapshot",
    "save_delta_snapshot",
    "load_delta_snapshot",
    "verify_snapshot_file",
    "SESSION_SUFFIX",
    "SESSION_VERSION",
    "save_session",
    "load_session",
    "SHARDED_SESSION_SUFFIX",
    "SHARDED_SESSION_VERSION",
    "combined_content_hash",
    "save_sharded_session",
    "load_sharded_session",
]
