"""Synchronous HTTP client for the serving front, plus replica cold-start.

:class:`ServingClient` is the caller side of :mod:`repro.server.app`:
solve queries travel as the existing
:meth:`ProtectionRequest.to_dict <repro.service.ProtectionRequest.to_dict>`
JSON and come back as full
:class:`~repro.core.model.ProtectionResult` objects; backpressure
responses (429/503) raise
:class:`~repro.exceptions.ServerOverloadedError` with the server's
``Retry-After`` hint instead of burying the status in a generic error.

The fleet workflow lives in :meth:`ServingClient.cold_start`: fetch a
published snapshot by its content hash from a serving peer's artifact
endpoints, cache it locally, and open a
:class:`~repro.service.ProtectionService` on it — refusing the bytes
unless the restored index's own hash equals the hash that was asked for
(:class:`~repro.exceptions.SnapshotMismatchError`), so a corrupted or
mislabelled artifact can never silently serve wrong gains.

Everything here is stdlib (:mod:`http.client`); one connection per
request keeps the client trivially thread-safe for benchmark fan-out.
"""

from __future__ import annotations

import json
import os
import tempfile
from http.client import HTTPConnection
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib.parse import urlsplit

from repro.core.model import ProtectionResult
from repro.exceptions import (
    ArtifactNotFoundError,
    ServerError,
    ServerOverloadedError,
    SnapshotFormatError,
    SnapshotMismatchError,
)
from repro.persistence import index_content_hash
from repro.service import ProtectionRequest, ProtectionService

__all__ = ["ServingClient"]


class ServingClient:
    """Talk to one serving replica at ``base_url`` (e.g. ``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme != "http" or not split.hostname:
            raise ServerError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        """The normalised server address."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> Tuple[int, Dict[str, str], bytes]:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": content_type} if body is not None else {}
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                data = response.read()
            except OSError as error:
                raise ServerError(
                    f"{method} {path} to {self.base_url} failed: {error}"
                ) from error
            lowered = {name.lower(): value for name, value in response.getheaders()}
            return response.status, lowered, data
        finally:
            connection.close()

    def _json(
        self, method: str, path: str, payload: Optional[object] = None
    ) -> Dict[str, object]:
        body = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None
            else None
        )
        status, headers, data = self._request(method, path, body=body)
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"error": data[:200].decode("latin-1")}
        if status in (429, 503):
            raise ServerOverloadedError(
                status,
                str(decoded.get("error", "overloaded")),
                retry_after=float(headers.get("retry-after", "1")),
            )
        if status >= 400:
            raise ServerError(
                f"{method} {path} failed ({status}): "
                f"{decoded.get('error', 'unexpected response')}"
            )
        if not isinstance(decoded, dict):
            raise ServerError(
                f"{method} {path} returned a non-object JSON body"
            )
        return decoded

    # ------------------------------------------------------------------
    # serving endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """``GET /healthz`` (raises :class:`ServerOverloadedError` on 503)."""
        return self._json("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        """``GET /stats``."""
        return self._json("GET", "/stats")

    def solve_payload(self, request: ProtectionRequest) -> Dict[str, object]:
        """``POST /solve`` returning the raw JSON payload.

        The payload is the full result dict including both metadata
        blocks: ``extra["service"]`` (the session's request echo and
        timing split) and ``extra["server"]`` (queue wait, solve wall
        time, answering content hash, coalescing flag).
        """
        return self._json("POST", "/solve", request.to_dict())

    def solve(self, request: ProtectionRequest) -> ProtectionResult:
        """``POST /solve`` returning a :class:`ProtectionResult`."""
        return ProtectionResult.from_dict(self.solve_payload(request))

    def reload(
        self,
        snapshot: Optional[Union[str, Path]] = None,
        delta: Optional[Union[str, Path]] = None,
        content_hash: Optional[str] = None,
    ) -> Dict[str, object]:
        """``POST /reload`` with exactly one source (path or published hash)."""
        payload: Dict[str, object] = {}
        if snapshot is not None:
            payload["snapshot"] = str(snapshot)
        if delta is not None:
            payload["delta"] = str(delta)
        if content_hash is not None:
            payload["content_hash"] = content_hash
        return self._json("POST", "/reload", payload)

    # ------------------------------------------------------------------
    # artifact endpoints
    # ------------------------------------------------------------------
    def list_artifacts(self) -> Dict[str, object]:
        """``GET /artifacts`` — the store listing plus the latest pointer."""
        return self._json("GET", "/artifacts")

    def fetch_artifact(self, content_hash: str) -> bytes:
        """``GET /artifacts/<hash>`` — the published file's raw bytes."""
        status, _, data = self._request("GET", f"/artifacts/{content_hash}")
        if status == 404:
            raise ArtifactNotFoundError(content_hash)
        if status >= 400:
            raise ServerError(
                f"GET /artifacts/{content_hash} failed ({status})"
            )
        return data

    def publish_file(self, path: Union[str, Path]) -> Dict[str, object]:
        """``POST /artifacts`` — publish a local snapshot / delta file."""
        return self.publish_bytes(Path(path).read_bytes())

    def publish_bytes(self, blob: bytes) -> Dict[str, object]:
        """``POST /artifacts`` with raw bytes (verified server-side)."""
        status, _, data = self._request(
            "POST", "/artifacts", body=blob, content_type="application/octet-stream"
        )
        decoded = json.loads(data.decode("utf-8")) if data else {}
        if status >= 400:
            raise ServerError(
                f"publish failed ({status}): {decoded.get('error', 'rejected')}"
            )
        return dict(decoded)

    def set_latest(self, content_hash: str) -> Dict[str, object]:
        """``POST /artifacts/latest`` — point the fleet at a published hash."""
        return self._json("POST", "/artifacts/latest", {"content_hash": content_hash})

    # ------------------------------------------------------------------
    # replica cold-start
    # ------------------------------------------------------------------
    def cold_start(
        self,
        content_hash: str,
        cache_dir: Union[str, Path],
        allow_pickle: bool = True,
        max_cached_subsets: Optional[int] = 32,
        build_workers: Optional[int] = None,
    ) -> ProtectionService:
        """Open a local session on the published snapshot named by its hash.

        Fetches ``/artifacts/<content_hash>`` (unless already cached in
        ``cache_dir``), restores the session with
        :meth:`ProtectionService.from_snapshot
        <repro.service.ProtectionService.from_snapshot>`, and *verifies*
        that the restored index's own content hash equals the hash that
        was requested.  Any mismatch — corrupted bytes, a tampered cache
        file, a mislabelled artifact — removes the cached file and raises,
        so a replica can never serve an index other than the one the hash
        names.

        Raises
        ------
        repro.exceptions.ArtifactNotFoundError
            If the server publishes no artifact under that hash.
        repro.exceptions.SnapshotFormatError
            If the fetched bytes are not a valid snapshot (the cached file
            is removed so a retry re-downloads).
        repro.exceptions.SnapshotMismatchError
            If the snapshot is valid but describes different content than
            the requested hash (the cached file is removed).
        """
        cache_dir = Path(cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
        target = cache_dir / f"{content_hash}.tppsnap"
        if not target.exists():
            blob = self.fetch_artifact(content_hash)
            with tempfile.NamedTemporaryFile(
                dir=cache_dir, prefix=".fetch-", delete=False
            ) as handle:
                staging = Path(handle.name)
                handle.write(blob)
            os.replace(staging, target)
        try:
            service = ProtectionService.from_snapshot(
                target,
                allow_pickle=allow_pickle,
                max_cached_subsets=max_cached_subsets,
                build_workers=build_workers,
            )
        except SnapshotFormatError:
            target.unlink(missing_ok=True)
            raise
        restored_hash = index_content_hash(service.index)
        if restored_hash != content_hash:
            target.unlink(missing_ok=True)
            raise SnapshotMismatchError(
                f"artifact fetched as {content_hash[:12]}… actually hashes to "
                f"{restored_hash[:12]}… — refusing the mislabelled snapshot "
                "(the cached copy was removed)"
            )
        return service
