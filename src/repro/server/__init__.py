"""HTTP serving front and snapshot distribution for replica fleets.

The in-process session API (:mod:`repro.service`) serves many concurrent
queries off one frozen index; this package puts that behind the network
boundary a deployment needs, on stdlib :mod:`asyncio` only:

* :class:`ProtectionServer` (:mod:`repro.server.app`) — the HTTP front:
  ``POST /solve`` with bounded admission (429/503 backpressure) and
  request coalescing, ``GET /healthz`` / ``GET /stats``, graceful
  ``POST /reload`` hot-swaps riding the session's copy-on-write delta
  machinery, and the ``/artifacts`` endpoints.
* :class:`ArtifactStore` (:mod:`repro.server.artifacts`) — published
  snapshots and deltas addressed by their content hashes, with a mutable
  ``latest`` pointer replicas converge on.
* :class:`ServingClient` (:mod:`repro.server.client`) — the caller side,
  including :meth:`~ServingClient.cold_start`: fetch a published hash,
  verify it, and open a local replica session on it.

CLI entry points: ``repro-tpp serve`` / ``repro-tpp publish``.
"""

from repro.server.app import ProtectionServer, ServerHandle, serve_in_background
from repro.server.artifacts import ArtifactRecord, ArtifactStore
from repro.server.client import ServingClient

__all__ = [
    "ProtectionServer",
    "ServerHandle",
    "serve_in_background",
    "ArtifactRecord",
    "ArtifactStore",
    "ServingClient",
]
