"""Minimal HTTP/1.1 framing over :mod:`asyncio` streams.

The serving front (:mod:`repro.server.app`) speaks just enough HTTP for
its JSON endpoints and artifact transfers: request line + headers +
``Content-Length`` body in, status line + headers + body out, with
keep-alive connections.  No chunked encoding, no multipart, no TLS — a
deliberate stdlib-only stand-in for the real edge, small enough to audit.

Parsing failures raise :class:`~repro.exceptions.ServerProtocolError`; the
server answers them with ``400 Bad Request`` and closes the connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import PayloadTooLargeError, ServerProtocolError

__all__ = [
    "HttpRequest",
    "read_request",
    "response_bytes",
    "json_response",
    "STATUS_REASONS",
]

#: The subset of HTTP status codes the serving front emits.
STATUS_REASONS: Mapping[int, str] = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Bound on the request line + header block (a parser, not a proxy).
MAX_HEADER_BYTES = 32 * 1024

#: Bound on request bodies; snapshots published over HTTP fit comfortably.
MAX_BODY_BYTES = 256 * 1024 * 1024

_CRLF = b"\r\n"


@dataclass
class HttpRequest:
    """One parsed HTTP request.

    Attributes
    ----------
    method:
        Upper-cased HTTP method (``GET``, ``POST``, ...).
    target:
        The raw request target as sent (path plus optional query string).
    path:
        The decoded path component (no query string).
    query:
        Decoded query parameters (last value wins for repeated keys).
    headers:
        Header mapping with lower-cased names.
    body:
        The request body (empty for bodyless requests).
    keep_alive:
        Whether the connection may serve another request afterwards.
    """

    method: str
    target: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True

    def json(self) -> object:
        """Decode the body as JSON (400-worthy errors become protocol errors)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServerProtocolError(f"request body is not valid JSON: {error}")


async def _read_line(reader: asyncio.StreamReader, budget: int) -> bytes:
    try:
        line = await reader.readuntil(_CRLF)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return b""
        raise ServerProtocolError("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ServerProtocolError("request line or header exceeds the limit") from None
    if len(line) > budget:
        raise ServerProtocolError(
            f"request head exceeds {MAX_HEADER_BYTES} bytes"
        )
    return line


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Read one request off ``reader``; ``None`` on a clean end-of-stream.

    Raises
    ------
    repro.exceptions.ServerProtocolError
        On a malformed request line, header block, unsupported HTTP
        version, bad ``Content-Length``, or a body exceeding
        ``max_body_bytes``.
    """
    request_line = await _read_line(reader, MAX_HEADER_BYTES)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ServerProtocolError(f"malformed request line {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ServerProtocolError(f"unsupported HTTP version {version!r}")

    headers: Dict[str, str] = {}
    consumed = len(request_line)
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES)
        consumed += len(line)
        if consumed > MAX_HEADER_BYTES:
            raise ServerProtocolError(
                f"request head exceeds {MAX_HEADER_BYTES} bytes"
            )
        if line in (_CRLF, b""):
            if line == b"":
                raise ServerProtocolError("connection closed inside the header block")
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ServerProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    length_header = headers.get("content-length", "0")
    try:
        content_length = int(length_header)
    except ValueError:
        raise ServerProtocolError(
            f"bad Content-Length {length_header!r}"
        ) from None
    if content_length < 0:
        raise ServerProtocolError(f"bad Content-Length {length_header!r}")
    if content_length > max_body_bytes:
        # a typed subclass: the request is well-formed, just too big, so
        # the server answers 413 (shrink the request) instead of 400 (fix
        # its syntax) — and the body is never read into memory
        raise PayloadTooLargeError(content_length, max_body_bytes)
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            raise ServerProtocolError("connection closed mid-body") from None

    split = urlsplit(target)
    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version == "HTTP/1.1"
        else connection == "keep-alive"
    )
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialise one HTTP response (status line, headers, body) to bytes."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    head = "\r\n".join(lines).encode("latin-1") + _CRLF + _CRLF
    return head + body


def json_response(
    status: int,
    payload: object,
    keep_alive: bool = True,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialise ``payload`` as a canonical (sorted-key) JSON response."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return response_bytes(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )


def parse_response_head(head: bytes) -> Tuple[int, Dict[str, str]]:
    """Parse a response's status line + headers (the test-suite helper side).

    Returns ``(status_code, headers)`` with lower-cased header names.
    """
    try:
        status_line, _, rest = head.partition(_CRLF)
        status = int(status_line.split()[1])
    except (IndexError, ValueError):
        raise ServerProtocolError(f"malformed status line in {head[:64]!r}") from None
    headers: Dict[str, str] = {}
    for line in rest.split(_CRLF):
        if not line:
            continue
        name, separator, value = line.decode("latin-1").partition(":")
        if separator:
            headers[name.strip().lower()] = value.strip()
    return status, headers
