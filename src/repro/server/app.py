"""The asyncio serving front over a :class:`ProtectionService` session.

One :class:`ProtectionServer` owns one live session and exposes it over
HTTP (see :mod:`repro.server.protocol` for the wire format):

``POST /solve``
    Body: a :class:`~repro.service.ProtectionRequest` as JSON (the
    existing ``to_dict`` round-trip).  Answer: the full
    :class:`~repro.core.model.ProtectionResult` as JSON, with per-request
    serving metadata added under ``extra["server"]`` (queue wait, solve
    wall time, the content hash that answered, whether the solve was
    coalesced) next to the session's own ``extra["service"]`` block.
``GET /healthz`` / ``GET /stats``
    Liveness (503 while draining) and counters: ``queries_served``,
    ``index_source``, the session's content hash, queue depth, coalescing
    and rejection counts.
``POST /reload``
    Graceful hot-swap: body names a snapshot / session-bundle path, a
    published ``content_hash``, or a ``*.tppdelta`` file.  Deltas apply
    through :meth:`ProtectionService.apply_delta` (copy-on-write swap);
    snapshots build a fresh session and swap it in atomically.  In-flight
    queries finish on the state they were admitted under; a corrupt or
    stale artifact is refused with 409 and the live session is untouched.
``GET /artifacts`` / ``GET /artifacts/<hash>`` / ``POST /artifacts`` /
``POST /artifacts/latest``
    The attached :class:`~repro.server.artifacts.ArtifactStore` over HTTP:
    list, fetch by content hash, publish (verified before storing), and
    move the ``latest`` pointer replicas converge on.

Concurrency model: the event loop parses and routes; solves run on a
bounded :class:`~concurrent.futures.ThreadPoolExecutor` (the kernels
release the GIL in numpy code, and every query solves on its own state
copy).  Admission is bounded — once ``max_pending`` solves are queued,
further *new* work is refused with ``429`` (coalesced joiners piggyback
on an in-flight solve and are always admitted; a draining server answers
``503``).  Identical concurrent requests — including the same target
subset in a different order — coalesce onto one solve and receive the
same result payload.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import zipfile
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import Dict, Optional, Set, Tuple, Union

from repro.core.model import ProtectionResult

from repro.exceptions import (
    ArtifactNotFoundError,
    PayloadTooLargeError,
    ReproError,
    ServerError,
    ServerProtocolError,
)
from repro.graphs.graph import edge_sort_key
from repro.persistence import index_content_hash, load_delta_snapshot
from repro.server.artifacts import ArtifactStore
from repro.server.protocol import (
    HttpRequest,
    json_response,
    read_request,
    response_bytes,
)
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    ShardedProtectionService,
)

__all__ = ["ProtectionServer", "ServerHandle", "serve_in_background"]

#: Anything the server can put behind the HTTP front: the sharded session
#: serves the same solve/stats/reload surface as the plain one.
ServiceLike = Union[ProtectionService, ShardedProtectionService]


def _service_content_hash(service: ServiceLike) -> str:
    """A session's content hash, however the session computes it.

    The sharded service hashes its whole shard layout (and caches the
    result itself); the plain service's hash comes off its single index.
    """
    if isinstance(service, ShardedProtectionService):
        return service.content_hash()
    return index_content_hash(service.index)


def _service_instances(service: ServiceLike) -> int:
    """Total enumerated motif instances behind a session."""
    if isinstance(service, ShardedProtectionService):
        return service.number_of_instances()
    return service.index.number_of_instances()


def _bundle_kind(path: Path) -> str:
    """Peek a zip bundle's manifest ``kind`` (defaults to ``"session"``)."""
    try:
        with zipfile.ZipFile(path) as archive:
            manifest = json.loads(archive.read("manifest.json").decode("utf-8"))
        kind = manifest.get("kind") if isinstance(manifest, dict) else None
    except (KeyError, ValueError, OSError):
        return "session"
    return kind if isinstance(kind, str) else "session"


#: How long a graceful stop waits for queued solves before cancelling.
DRAIN_SECONDS = 10.0


class ProtectionServer:
    """Serve one protection session over HTTP with hot-reload.

    Parameters
    ----------
    service:
        The live session to serve.  Hot-reload (``POST /reload`` or the
        artifact-store poll) replaces it atomically; in-flight queries
        finish on the session they were admitted under.
    store:
        Optional :class:`~repro.server.artifacts.ArtifactStore` backing
        the ``/artifacts`` endpoints, hash-addressed reloads and the
        ``latest``-pointer poll.
    max_pending:
        Bound on queued-plus-running solves; new non-coalesced work beyond
        it is refused with ``429``.
    solver_threads:
        Executor width for solves (each query solves on its own state
        copy, so width only trades latency for memory).
    poll_interval:
        When set (seconds), a background task follows the store's
        ``latest`` pointer: deltas whose parent matches the live hash are
        applied, published snapshots are swapped in.  ``None`` disables
        polling (``poll_store_once`` stays available for explicit calls).
    """

    def __init__(
        self,
        service: ServiceLike,
        store: Optional[ArtifactStore] = None,
        max_pending: int = 64,
        solver_threads: int = 4,
        poll_interval: Optional[float] = None,
    ) -> None:
        if max_pending < 1:
            raise ServerError(f"max_pending must be >= 1, got {max_pending}")
        if solver_threads < 1:
            raise ServerError(f"solver_threads must be >= 1, got {solver_threads}")
        self.store = store
        self._lock = threading.Lock()
        self._service = service  # reprolint: guarded-by(_lock)
        self._hashed_index: Optional[object] = None  # reprolint: guarded-by(_lock)
        self._content_hash = ""  # reprolint: guarded-by(_lock)
        self._draining = False  # reprolint: guarded-by(_lock)
        self._requests_total = 0  # reprolint: guarded-by(_lock)
        self._solves_executed = 0  # reprolint: guarded-by(_lock)
        self._solve_errors = 0  # reprolint: guarded-by(_lock)
        self._coalesced_hits = 0  # reprolint: guarded-by(_lock)
        self._rejected = 0  # reprolint: guarded-by(_lock)
        self._reloads = 0  # reprolint: guarded-by(_lock)
        self._poll_errors = 0  # reprolint: guarded-by(_lock)
        self._max_pending = max_pending
        self._poll_interval = poll_interval
        self._executor = ThreadPoolExecutor(
            max_workers=solver_threads, thread_name_prefix="tpp-solver"
        )
        self._started_monotonic = time.monotonic()
        # event-loop-only state (never touched from executor threads):
        self._inflight: Dict[ProtectionRequest, "asyncio.Future[_Solved]"] = {}
        self._pending = 0
        self._connections: Set["asyncio.Task[None]"] = set()
        self._asyncio_server: Optional[asyncio.Server] = None
        self._poll_task: Optional["asyncio.Task[None]"] = None
        self._stop_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # the live session
    # ------------------------------------------------------------------
    def current_service(self) -> ServiceLike:
        """The session queries are being admitted to right now."""
        with self._lock:
            return self._service

    def content_hash(self) -> str:
        """The live session's content hash (cached per index identity).

        A sharded session has no single index to key the cache on — it
        caches its combined hash itself (invalidated by its own
        ``apply_delta``), so the server just asks it every time.
        """
        with self._lock:
            service = self._service
            index = getattr(service, "index", None)
            if index is not None and self._hashed_index is index:
                return self._content_hash
        # hash outside the lock (touches the index arrays), then publish
        fresh = _service_content_hash(service)
        with self._lock:
            if index is not None and getattr(self._service, "index", None) is index:
                self._hashed_index = index
                self._content_hash = fresh
        return fresh

    def drain(self) -> None:
        """Stop admitting new solves; queued work finishes, clients get 503."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        """Whether the server refuses new work ahead of shutdown."""
        with self._lock:
            return self._draining

    # ------------------------------------------------------------------
    # hot-reload (synchronous — the HTTP handler runs these in the executor)
    # ------------------------------------------------------------------
    def reload_from_file(self, path: Union[str, Path]) -> Dict[str, object]:
        """Swap in a snapshot / session bundle, or apply a delta file.

        ``*.tppdelta`` files apply through
        :meth:`ProtectionService.apply_delta` (the parent content hash is
        verified first; a stale delta raises
        :class:`~repro.exceptions.SnapshotMismatchError` and leaves the
        live session untouched).  Anything else loads as a session bundle
        (zip) or a plain index snapshot and replaces the session
        atomically — queries already in flight finish on the old one.
        """
        path = Path(path)
        head = path.read_bytes()[:12] if path.exists() else b""
        if head == b"REPROTPPDLTA":
            snapshot = load_delta_snapshot(path)
            service = self.current_service()
            outcome = service.apply_delta(snapshot)
            payload = self._reloaded("delta-applied")
            touched = getattr(outcome, "touched_shards", None)
            if touched is not None:
                # shard-aware reload: name the shards whose instance sets
                # the delta actually changed (the others only spliced edges)
                payload["touched_shards"] = list(touched)
            return payload
        if zipfile.is_zipfile(path):
            if _bundle_kind(path) == "sharded-session":
                fresh: ServiceLike = ShardedProtectionService.from_session(path)
            else:
                fresh = ProtectionService.from_session(path)
        else:
            fresh = ProtectionService.from_snapshot(path)
        return self._install(fresh)

    def reload_from_store(self, content_hash: str) -> Dict[str, object]:
        """Swap to / apply the published artifact named by ``content_hash``."""
        record = self._require_store().resolve(content_hash)
        return self.reload_from_file(record.path)

    def poll_store_once(self) -> Dict[str, object]:
        """Converge on the store's ``latest`` pointer; returns what happened.

        Catch-up prefers deltas: while a published delta's parent matches
        the live hash, it is applied; otherwise the ``latest`` snapshot is
        swapped in wholesale.  A missing pointer (or already being
        current) is a no-op.
        """
        store = self._require_store()
        latest = store.latest()
        if latest is None:
            return {"action": "noop", "reason": "no latest pointer"}
        steps = 0
        # the chain walk is bounded by the store's contents: each applied
        # delta moves to a new hash, and a finite store cannot extend the
        # walk forever
        bound = len(store.records()) + 1
        while self.content_hash() != latest and steps < bound:
            delta = store.delta_from(self.content_hash())
            if delta is not None:
                self.reload_from_file(delta.path)
                steps += 1
                continue
            record = store.resolve(latest)
            if record.kind != "snapshot":
                return {
                    "action": "refused",
                    "reason": (
                        "latest names a delta whose parent chain does not "
                        "reach the live session"
                    ),
                    "latest": latest,
                    "content_hash": self.content_hash(),
                }
            self.reload_from_file(record.path)
            steps += 1
        if steps == 0:
            return {"action": "noop", "reason": "already current", "latest": latest}
        return {
            "action": "converged",
            "steps": steps,
            "latest": latest,
            "content_hash": self.content_hash(),
        }

    def _require_store(self) -> ArtifactStore:
        if self.store is None:
            raise ServerError(
                "no artifact store is attached to this server "
                "(start it with --artifact-dir / store=...)"
            )
        return self.store

    def _install(self, fresh: ServiceLike) -> Dict[str, object]:
        with self._lock:
            self._service = fresh
            self._hashed_index = None
            self._content_hash = ""
            self._reloads += 1
        return self._reloaded("swapped")

    def _reloaded(self, action: str) -> Dict[str, object]:
        with self._lock:
            if action == "delta-applied":
                self._hashed_index = None
                self._content_hash = ""
                self._reloads += 1
        service = self.current_service()
        payload: Dict[str, object] = {
            "status": "reloaded",
            "action": action,
            "content_hash": self.content_hash(),
            "index_source": service.index_source,
            "deltas_applied": service.deltas_applied,
            "targets": len(service.targets),
        }
        if isinstance(service, ShardedProtectionService):
            payload["shards"] = service.shard_count
        return payload

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``GET /stats`` payload (also handy for tests and tooling)."""
        service = self.current_service()
        with self._lock:
            counters = {
                "requests_total": self._requests_total,
                "solves_executed": self._solves_executed,
                "solve_errors": self._solve_errors,
                "coalesced_hits": self._coalesced_hits,
                "rejected": self._rejected,
                "reloads": self._reloads,
                "poll_errors": self._poll_errors,
                "draining": self._draining,
            }
        payload: Dict[str, object] = {
            "status": "draining" if counters["draining"] else "serving",
            "queries_served": service.queries_served,
            "index_source": service.index_source,
            "deltas_applied": service.deltas_applied,
            "content_hash": self.content_hash(),
            "targets": len(service.targets),
            "instances": _service_instances(service),
            "pending": self._pending,
            "max_pending": self._max_pending,
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
            **counters,
        }
        if isinstance(service, ShardedProtectionService):
            payload["shards"] = service.shard_count
        return payload

    # ------------------------------------------------------------------
    # asyncio plumbing
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start accepting connections; returns ``(host, port)``."""
        if self._asyncio_server is not None:
            raise ServerError("server is already started")
        self._stop_event = asyncio.Event()
        self._asyncio_server = await asyncio.start_server(
            self._on_connection, host, port
        )
        if self._poll_interval is not None and self.store is not None:
            self._poll_task = asyncio.get_running_loop().create_task(
                self._poll_loop()
            )
        sockname = self._asyncio_server.sockets[0].getsockname()
        self.address: Tuple[str, int] = (sockname[0], sockname[1])
        return self.address

    def request_stop(self) -> None:
        """Ask the serving loop to shut down (thread-safe via call_soon)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`request_stop`, then drain and shut down."""
        assert self._stop_event is not None, "start() must run first"
        await self._stop_event.wait()
        await self._shutdown()

    async def _shutdown(self) -> None:
        self.drain()
        if self._poll_task is not None:
            self._poll_task.cancel()
            try:
                await self._poll_task
            except asyncio.CancelledError:
                pass
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        deadline = time.monotonic() + DRAIN_SECONDS
        while self._pending and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=False)

    async def _poll_loop(self) -> None:
        assert self._poll_interval is not None
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self._poll_interval)
            try:
                await loop.run_in_executor(self._executor, self.poll_store_once)
            except ReproError:
                # a corrupt publish or racing pointer move must not kill
                # the serving loop; the live session stays untouched
                with self._lock:
                    self._poll_errors += 1

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except PayloadTooLargeError as error:
                    writer.write(
                        json_response(413, {"error": str(error)}, keep_alive=False)
                    )
                    await writer.drain()
                    break
                except ServerProtocolError as error:
                    writer.write(
                        json_response(400, {"error": str(error)}, keep_alive=False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                with self._lock:
                    self._requests_total += 1
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: HttpRequest) -> bytes:
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return _method_not_allowed("GET")
            if self.draining:
                return json_response(
                    503,
                    {"status": "draining", "error": "server is draining"},
                    extra_headers={"Retry-After": "1"},
                )
            return json_response(
                200, {"status": "ok", "content_hash": self.content_hash()}
            )
        if path == "/stats":
            if request.method != "GET":
                return _method_not_allowed("GET")
            return json_response(200, self.stats())
        if path == "/solve":
            if request.method != "POST":
                return _method_not_allowed("POST")
            return await self._handle_solve(request)
        if path == "/reload":
            if request.method != "POST":
                return _method_not_allowed("POST")
            return await self._handle_reload(request)
        if path == "/artifacts" or path.startswith("/artifacts/"):
            return await self._handle_artifacts(request)
        return json_response(404, {"error": f"unknown path {path!r}"})

    # ------------------------------------------------------------------
    # /solve
    # ------------------------------------------------------------------
    async def _handle_solve(self, request: HttpRequest) -> bytes:
        try:
            payload = request.json()
            if not isinstance(payload, dict):
                raise ServerProtocolError(
                    "the /solve body must be a JSON object (a ProtectionRequest)"
                )
            query = ProtectionRequest.from_dict(payload)
            query.validate()
        except (ReproError, TypeError, KeyError) as error:
            return json_response(400, {"error": str(error) or repr(error)})
        if self.draining:
            return json_response(
                503,
                {"error": "server is draining; retry against another replica"},
                extra_headers={"Retry-After": "1"},
            )
        query = _coalescing_form(query)
        future = self._inflight.get(query)
        coalesced = future is not None
        if future is None:
            if self._pending >= self._max_pending:
                with self._lock:
                    self._rejected += 1
                return json_response(
                    429,
                    {
                        "error": (
                            f"admission queue is full "
                            f"({self._max_pending} solves pending)"
                        )
                    },
                    extra_headers={"Retry-After": "1"},
                )
            future = self._submit(query)
        else:
            with self._lock:
                self._coalesced_hits += 1
        try:
            solved = await asyncio.shield(future)
        except ReproError as error:
            return json_response(400, {"error": str(error)})
        except Exception as error:  # surface, don't kill the connection
            return json_response(
                500, {"error": f"{type(error).__name__}: {error}"}
            )
        body = solved.result.to_dict()
        extra = dict(body.get("extra", {}))
        extra["server"] = {
            "coalesced": coalesced,
            "queue_seconds": round(solved.queue_seconds, 6),
            "solve_seconds": round(solved.solve_seconds, 6),
            "content_hash": solved.content_hash,
        }
        body["extra"] = extra
        return json_response(200, body)

    def _submit(
        self, query: ProtectionRequest
    ) -> "asyncio.Future[_Solved]":
        loop = asyncio.get_running_loop()
        submitted = time.perf_counter()

        def job() -> "_Solved":
            started = time.perf_counter()
            service = self.current_service()
            content_hash = self.content_hash()
            result = service.solve(query)
            return _Solved(
                result=result,
                queue_seconds=started - submitted,
                solve_seconds=time.perf_counter() - started,
                content_hash=content_hash,
            )

        shared: "asyncio.Future[_Solved]" = loop.create_future()
        executor_future = loop.run_in_executor(self._executor, job)
        self._pending += 1
        self._inflight[query] = shared

        def finished(task: "asyncio.Future[_Solved]") -> None:
            self._pending -= 1
            self._inflight.pop(query, None)
            error = task.exception() if not task.cancelled() else None
            if task.cancelled():
                shared.cancel()
            elif error is not None:
                with self._lock:
                    self._solve_errors += 1
                shared.set_exception(error)
            else:
                with self._lock:
                    self._solves_executed += 1
                shared.set_result(task.result())

        executor_future.add_done_callback(finished)
        return shared

    # ------------------------------------------------------------------
    # /reload
    # ------------------------------------------------------------------
    async def _handle_reload(self, request: HttpRequest) -> bytes:
        try:
            payload = request.json()
        except ServerProtocolError as error:
            return json_response(400, {"error": str(error)})
        if not isinstance(payload, dict):
            return json_response(400, {"error": "the /reload body must be a JSON object"})
        keys = [key for key in ("snapshot", "delta", "content_hash") if payload.get(key)]
        if len(keys) != 1:
            return json_response(
                400,
                {
                    "error": (
                        "pass exactly one of 'snapshot' (a *.tppsnap/*.tppsess "
                        "path), 'delta' (a *.tppdelta path) or 'content_hash' "
                        "(a published artifact)"
                    )
                },
            )
        loop = asyncio.get_running_loop()
        try:
            if keys[0] == "content_hash":
                outcome = await loop.run_in_executor(
                    self._executor,
                    self.reload_from_store,
                    str(payload["content_hash"]),
                )
            else:
                outcome = await loop.run_in_executor(
                    self._executor, self.reload_from_file, str(payload[keys[0]])
                )
        except ArtifactNotFoundError as error:
            return json_response(404, {"error": str(error)})
        except (ReproError, OSError) as error:
            # stale hash, corrupt file, missing path... — the live session
            # is untouched; tell the caller why
            return json_response(409, {"error": str(error)})
        return json_response(200, outcome)

    # ------------------------------------------------------------------
    # /artifacts
    # ------------------------------------------------------------------
    async def _handle_artifacts(self, request: HttpRequest) -> bytes:
        if self.store is None:
            return json_response(
                404, {"error": "no artifact store is attached to this server"}
            )
        store = self.store
        loop = asyncio.get_running_loop()
        if request.path == "/artifacts":
            if request.method == "GET":
                listing = await loop.run_in_executor(self._executor, store.describe)
                return json_response(200, listing)
            if request.method == "POST":
                try:
                    record = await loop.run_in_executor(
                        self._executor, store.publish_bytes, request.body
                    )
                except ReproError as error:
                    return json_response(400, {"error": str(error)})
                return json_response(201, record.to_dict())
            return _method_not_allowed("GET, POST")
        if request.path == "/artifacts/latest":
            if request.method != "POST":
                return _method_not_allowed("POST")
            try:
                payload = request.json()
                content_hash = (
                    payload.get("content_hash") if isinstance(payload, dict) else None
                )
                if not content_hash:
                    return json_response(
                        400, {"error": "the body must carry a 'content_hash'"}
                    )
                record = await loop.run_in_executor(
                    self._executor, store.set_latest, str(content_hash)
                )
            except ServerProtocolError as error:
                return json_response(400, {"error": str(error)})
            except ArtifactNotFoundError as error:
                return json_response(404, {"error": str(error)})
            return json_response(200, record.to_dict())
        content_hash = request.path[len("/artifacts/"):]
        if request.method != "GET":
            return _method_not_allowed("GET")
        try:
            blob = await loop.run_in_executor(
                self._executor, store.fetch_bytes, content_hash
            )
        except ArtifactNotFoundError as error:
            return json_response(404, {"error": str(error)})
        except ReproError as error:
            return json_response(409, {"error": str(error)})
        return response_bytes(200, blob, content_type="application/octet-stream")


class _Solved:
    """One executed solve, shared verbatim by every coalesced awaiter."""

    __slots__ = ("result", "queue_seconds", "solve_seconds", "content_hash")

    def __init__(
        self,
        result: ProtectionResult,
        queue_seconds: float,
        solve_seconds: float,
        content_hash: str,
    ) -> None:
        self.result = result
        self.queue_seconds = queue_seconds
        self.solve_seconds = solve_seconds
        self.content_hash = content_hash


def _coalescing_form(query: ProtectionRequest) -> ProtectionRequest:
    """Canonicalise a request so equal work shares one in-flight solve.

    Subset targets are put in the library-wide order — the same subset
    named in a different order is the same enumeration and the same greedy
    trace (``_subset_session`` sorts identically), so both callers receive
    the one solved payload.
    """
    if query.targets is None:
        return query
    ordered = tuple(sorted(query.targets, key=edge_sort_key))
    if ordered == query.targets:
        return query
    return replace(query, targets=ordered)


def _method_not_allowed(allowed: str) -> bytes:
    return json_response(
        405,
        {"error": f"method not allowed; use {allowed}"},
        extra_headers={"Allow": allowed},
    )


class ServerHandle:
    """A running background server (tests, examples, the CLI foreground).

    Created by :func:`serve_in_background`; :meth:`stop` drains and joins.
    """

    def __init__(
        self,
        server: ProtectionServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        host: str,
        port: int,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        """The base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = DRAIN_SECONDS + 5.0) -> None:
        """Drain, shut the server down and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise ServerError("server thread did not stop within the timeout")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_background(
    server: ProtectionServer,
    host: str = "127.0.0.1",
    port: int = 0,
    start_timeout: float = 30.0,
) -> ServerHandle:
    """Run ``server`` on its own event loop in a daemon thread.

    Returns once the socket is bound; ``port=0`` picks a free port (read
    it off the returned handle).  Startup failures (port in use, ...) are
    re-raised in the calling thread.
    """
    started = threading.Event()
    box = _StartupBox()

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box.loop = loop

        async def main() -> None:
            try:
                box.address = await server.start(host, port)
            except BaseException as error:  # startup failed — hand it back
                box.error = error
                started.set()
                return
            started.set()
            await server.wait_stopped()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()
            server._executor.shutdown(wait=True)

    thread = threading.Thread(target=run, name="tpp-server", daemon=True)
    thread.start()
    if not started.wait(timeout=start_timeout):
        raise ServerError("server did not start within the timeout")
    if box.error is not None:
        thread.join(timeout=5.0)
        raise ServerError(f"server failed to start: {box.error}") from box.error
    assert box.address is not None and box.loop is not None
    return ServerHandle(
        server, box.loop, thread, str(box.address[0]), int(box.address[1])
    )


class _StartupBox:
    """Hand-off slots between the server thread and its creator."""

    __slots__ = ("loop", "address", "error")

    def __init__(self) -> None:
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.address: Optional[Tuple[str, int]] = None
        self.error: Optional[BaseException] = None
