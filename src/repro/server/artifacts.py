"""Content-hash-addressed artifact store for snapshots and deltas.

The distribution model behind a replica fleet: one process builds (or
updates) an index, publishes the snapshot / delta file to a store, and
every replica cold-starts or catches up from the published *content hash*
— never from a mutable filename.  The store is a directory of verified
files named by their own hashes (the CDN stand-in), so a publish is
idempotent, a fetch is immutable, and a corrupted upload can never
shadow a good artifact:

* snapshots (``*.tppsnap``) are addressed by their ``content_hash`` — the
  hash over (graph + targets + motif) that
  :func:`repro.persistence.snapshot_content_hash` computes and
  :meth:`IndexSnapshot.verify <repro.persistence.IndexSnapshot.verify>`
  enforces;
* deltas (``*.tppdelta``) are addressed by their ``result_content_hash``
  (the state they produce) and additionally record the
  ``parent_content_hash`` they apply to, so a replica can look up "the
  delta that takes me from my current hash forward";
* a single mutable ``latest`` pointer names the hash replicas should
  converge on (the artifact-store poll in :mod:`repro.server.app`
  follows it).

Every publish runs :func:`repro.persistence.verify_snapshot_file` before
anything is stored — garbage bytes are refused with the persistence
layer's own :class:`~repro.exceptions.SnapshotFormatError`.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import ArtifactNotFoundError, SnapshotFormatError
from repro.persistence import verify_snapshot_file

__all__ = ["ArtifactRecord", "ArtifactStore"]

_LATEST_NAME = "latest"
_SUFFIXES = {"snapshot": ".tppsnap", "delta": ".tppdelta"}


@dataclass(frozen=True)
class ArtifactRecord:
    """One published artifact, as listed by :meth:`ArtifactStore.records`.

    Attributes
    ----------
    content_hash:
        The hash the artifact is addressed by (a snapshot's
        ``content_hash``; a delta's ``result_content_hash``).
    kind:
        ``"snapshot"`` or ``"delta"``.
    parent_content_hash:
        For deltas, the state the delta applies to; ``None`` for snapshots.
    path:
        The stored file.
    size:
        Stored size in bytes.
    """

    content_hash: str
    kind: str
    parent_content_hash: Optional[str]
    path: Path
    size: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (used by the ``GET /artifacts`` endpoint)."""
        return {
            "content_hash": self.content_hash,
            "kind": self.kind,
            "parent_content_hash": self.parent_content_hash,
            "file": self.path.name,
            "size": self.size,
        }


class ArtifactStore:
    """A directory of content-hash-addressed snapshot / delta artifacts.

    Parameters
    ----------
    root:
        The store directory (created if missing).  Layout: one
        ``<hash><suffix>`` file per artifact plus an optional ``latest``
        pointer file holding a single hash.

    The store keeps no in-memory state — every operation re-reads the
    directory — so multiple processes (a publisher CLI and a serving
    process, say) can share one store without coordination beyond the
    filesystem's atomic rename.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # publish
    # ------------------------------------------------------------------
    def publish_file(self, path: Union[str, Path]) -> ArtifactRecord:
        """Verify and store the snapshot / delta file at ``path``.

        The file is validated with
        :func:`repro.persistence.verify_snapshot_file` (magic, format
        version, hashes) and stored under its own content hash.
        Re-publishing an already-stored artifact is a no-op returning the
        existing record.

        Raises
        ------
        repro.exceptions.SnapshotFormatError
            If the bytes are not a valid snapshot or delta file.
        """
        return self.publish_bytes(Path(path).read_bytes())

    def publish_bytes(self, blob: bytes) -> ArtifactRecord:
        """Verify and store raw snapshot / delta bytes (the HTTP upload path)."""
        with tempfile.NamedTemporaryFile(
            dir=self.root, prefix=".incoming-", delete=False
        ) as handle:
            staging = Path(handle.name)
            handle.write(blob)
        try:
            info = verify_snapshot_file(staging)
            kind = str(info["kind"])
            if kind == "snapshot":
                content_hash = str(info["content_hash"])
            else:
                content_hash = str(info["result_content_hash"])
            target = self.root / f"{content_hash}{_SUFFIXES[kind]}"
            if target.exists():
                staging.unlink()
            else:
                # rename is atomic on one filesystem: a concurrent reader
                # sees either no artifact or the complete verified one
                os.replace(staging, target)
        except Exception:
            staging.unlink(missing_ok=True)
            raise
        return self._record(target)

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------
    def resolve(self, content_hash: str) -> ArtifactRecord:
        """Return the record for ``content_hash``.

        Raises
        ------
        repro.exceptions.ArtifactNotFoundError
            If no stored artifact carries that hash.
        """
        for suffix in _SUFFIXES.values():
            candidate = self.root / f"{content_hash}{suffix}"
            if candidate.exists():
                return self._record(candidate)
        raise ArtifactNotFoundError(content_hash)

    def fetch_bytes(self, content_hash: str) -> bytes:
        """Return the stored artifact's raw bytes."""
        return self.resolve(content_hash).path.read_bytes()

    def records(self) -> List[ArtifactRecord]:
        """Every stored artifact, sorted by hash (deterministic listing)."""
        found = []
        for suffix in _SUFFIXES.values():
            found.extend(self.root.glob(f"*{suffix}"))
        return [self._record(path) for path in sorted(found)]

    def delta_from(self, parent_content_hash: str) -> Optional[ArtifactRecord]:
        """The published delta applying to ``parent_content_hash``, if any.

        This is the replica catch-up lookup: "my session's hash is X —
        is there a delta that moves X forward?".  Returns ``None`` when no
        stored delta names that parent.
        """
        for record in self.records():
            if (
                record.kind == "delta"
                and record.parent_content_hash == parent_content_hash
            ):
                return record
        return None

    # ------------------------------------------------------------------
    # the mutable "serve this" pointer
    # ------------------------------------------------------------------
    def latest(self) -> Optional[str]:
        """The hash the ``latest`` pointer names (``None`` when unset)."""
        pointer = self.root / _LATEST_NAME
        if not pointer.exists():
            return None
        return pointer.read_text(encoding="utf-8").strip() or None

    def set_latest(self, content_hash: str) -> ArtifactRecord:
        """Point ``latest`` at a stored artifact (must already be published)."""
        record = self.resolve(content_hash)  # refuse dangling pointers
        with tempfile.NamedTemporaryFile(
            dir=self.root, prefix=".latest-", delete=False, mode="w", encoding="utf-8"
        ) as handle:
            staging = Path(handle.name)
            handle.write(record.content_hash + "\n")
        os.replace(staging, self.root / _LATEST_NAME)
        return record

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _record(self, path: Path) -> ArtifactRecord:
        info = verify_snapshot_file(path)
        kind = str(info["kind"])
        if kind == "snapshot":
            content_hash = str(info["content_hash"])
            parent: Optional[str] = None
        else:
            content_hash = str(info["result_content_hash"])
            parent = str(info["parent_content_hash"])
        if path.name != f"{content_hash}{_SUFFIXES[kind]}":
            raise SnapshotFormatError(
                f"stored artifact {path.name!r} does not match its own "
                f"content hash {content_hash[:12]}… — the store was tampered "
                "with; delete the file and re-publish"
            )
        return ArtifactRecord(
            content_hash=content_hash,
            kind=kind,
            parent_content_hash=parent,
            path=path,
            size=path.stat().st_size,
        )

    def describe(self) -> Dict[str, object]:
        """JSON-friendly listing (the ``GET /artifacts`` response body)."""
        return {
            "root": str(self.root),
            "latest": self.latest(),
            "artifacts": [record.to_dict() for record in self.records()],
        }
