"""repro — Target Privacy Preserving (TPP) for social networks.

A from-scratch reproduction of *"Target Privacy Preserving for Social
Networks"* (Jiang et al., ICDE 2020): protect a small set of sensitive
*target* links against subgraph-pattern link prediction by deleting a
budget-limited set of *protector* links, while keeping the released graph's
utility high.

Typical usage — build a session once, serve many queries::

    from repro import ProtectionRequest, ProtectionService
    from repro.datasets import arenas_email_like, sample_random_targets

    graph = arenas_email_like()
    targets = sample_random_targets(graph, 20, seed=0)
    service = ProtectionService(graph, targets, motif="triangle")
    result = service.solve(ProtectionRequest("SGB-Greedy", budget=40))
    released = result.released_graph(service.problem)

The direct algorithm calls (:func:`sgb_greedy`, :func:`ct_greedy`,
:func:`wt_greedy`, the baselines) remain available for one-off runs; the
session API reuses the enumerated target-subgraph index across queries and
fans batches out over workers (``service.solve_many(requests, workers=4)``).

The top-level package re-exports the most frequently used names; the
subpackages (:mod:`repro.graphs`, :mod:`repro.motifs`, :mod:`repro.core`,
:mod:`repro.service`, :mod:`repro.persistence`, :mod:`repro.prediction`,
:mod:`repro.utility`, :mod:`repro.datasets`, :mod:`repro.experiments`)
contain the full API.

Built indexes persist: ``problem.save_index("g.tppsnap")`` writes a
versioned snapshot and ``ProtectionService.from_snapshot("g.tppsnap")``
cold-starts a session from it without enumerating (bit-identical traces).

Live graphs update in place: ``service.apply_delta(EdgeDelta.from_edges(
insert=[(1, 9)], delete=[(2, 3)]))`` splices the change into the running
index — bit-identical to a from-scratch rebuild, at the cost of only the
motif instances the edges touch — and keeps serving queries throughout.
"""

from repro.core import (
    ProtectionResult,
    TPPProblem,
    critical_budget,
    ct_greedy,
    is_fully_protected,
    random_deletion,
    random_target_subgraph_deletion,
    sgb_greedy,
    sgb_greedy_bb,
    verify_result,
    wt_greedy,
)
from repro.exceptions import ReproError
from repro.graphs import Graph, canonical_edge
from repro.motifs import DeltaOutcome, EdgeDelta, available_motifs, get_motif
from repro.persistence import (
    DeltaSnapshot,
    IndexSnapshot,
    index_content_hash,
    load_delta_snapshot,
    load_snapshot,
    save_delta_snapshot,
    save_snapshot,
    snapshot_content_hash,
    verify_snapshot_file,
)
from repro.prediction import AttackSimulator
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    method_names,
    register_method,
)
from repro.utility import compare_graphs

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "Graph",
    "canonical_edge",
    "TPPProblem",
    "ProtectionResult",
    "ProtectionService",
    "ProtectionRequest",
    "register_method",
    "method_names",
    "sgb_greedy",
    "sgb_greedy_bb",
    "ct_greedy",
    "wt_greedy",
    "random_deletion",
    "random_target_subgraph_deletion",
    "is_fully_protected",
    "verify_result",
    "critical_budget",
    "get_motif",
    "available_motifs",
    "IndexSnapshot",
    "save_snapshot",
    "load_snapshot",
    "snapshot_content_hash",
    "index_content_hash",
    "EdgeDelta",
    "DeltaOutcome",
    "DeltaSnapshot",
    "save_delta_snapshot",
    "load_delta_snapshot",
    "verify_snapshot_file",
    "AttackSimulator",
    "compare_graphs",
    "ReproError",
]
