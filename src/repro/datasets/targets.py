"""Target sampling strategies.

The paper samples targets "randomly from the existing links of the original
graph" and averages every experiment over at least 10 independent samplings.
Beyond that uniform sampler, two additional strategies are provided for the
examples and ablations: degree-weighted sampling (links between hubs, the
kind of "important relationship" the introduction motivates) and
neighborhood-focused sampling (several sensitive links around one ego node,
e.g. a patient hiding the links to their doctors).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from repro.exceptions import DatasetError
from repro.graphs.graph import Edge, Graph, Node, canonical_edge

__all__ = [
    "sample_random_targets",
    "sample_degree_weighted_targets",
    "sample_ego_targets",
]

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _sorted_edges(graph: Graph) -> List[Edge]:
    return sorted(graph.edges(), key=lambda edge: (str(edge[0]), str(edge[1])))


def sample_random_targets(graph: Graph, count: int, seed: RandomLike = None) -> List[Edge]:
    """Sample ``count`` target links uniformly from the existing edges.

    This is the sampling protocol of the paper's experiments.

    Raises
    ------
    DatasetError
        If the graph has fewer than ``count`` edges.
    """
    edges = _sorted_edges(graph)
    if count > len(edges):
        raise DatasetError(
            f"cannot sample {count} targets from a graph with {len(edges)} edges"
        )
    rng = _rng(seed)
    return rng.sample(edges, count)


def sample_degree_weighted_targets(
    graph: Graph, count: int, seed: RandomLike = None
) -> List[Edge]:
    """Sample ``count`` targets with probability proportional to ``d_u * d_v``.

    Mimics "important" links between well-connected individuals, the setting
    the DBD budget division is designed for.
    """
    edges = _sorted_edges(graph)
    if count > len(edges):
        raise DatasetError(
            f"cannot sample {count} targets from a graph with {len(edges)} edges"
        )
    rng = _rng(seed)
    weights = [graph.degree(u) * graph.degree(v) for u, v in edges]
    chosen: List[Edge] = []
    pool = list(zip(edges, weights))
    for _ in range(count):
        total = sum(weight for _, weight in pool)
        if total <= 0:
            remaining = [edge for edge, _ in pool]
            chosen.extend(rng.sample(remaining, count - len(chosen)))
            break
        pick = rng.uniform(0, total)
        cumulative = 0.0
        for index, (edge, weight) in enumerate(pool):
            cumulative += weight
            if pick <= cumulative:
                chosen.append(edge)
                pool.pop(index)
                break
    return chosen


def sample_ego_targets(
    graph: Graph,
    ego: Optional[Node] = None,
    count: int = 5,
    seed: RandomLike = None,
) -> List[Edge]:
    """Sample ``count`` targets incident to one ego node.

    Models the motivating scenario of the paper's introduction: one user
    (e.g. a patient) wants several of *their own* links hidden.  When ``ego``
    is omitted the highest-degree node with at least ``count`` incident edges
    is chosen.

    Raises
    ------
    DatasetError
        If no suitable ego node exists.
    """
    rng = _rng(seed)
    if ego is None:
        candidates = [node for node in graph.nodes() if graph.degree(node) >= count]
        if not candidates:
            raise DatasetError(
                f"no node has degree >= {count}; pick a smaller count or an explicit ego"
            )
        ego = max(candidates, key=lambda node: (graph.degree(node), str(node)))
    if not graph.has_node(ego):
        raise DatasetError(f"ego node {ego!r} is not in the graph")
    incident = sorted(
        (canonical_edge(ego, neighbor) for neighbor in graph.neighbors(ego)),
        key=lambda edge: (str(edge[0]), str(edge[1])),
    )
    if count > len(incident):
        raise DatasetError(
            f"ego node {ego!r} has only {len(incident)} incident links, "
            f"cannot sample {count}"
        )
    return rng.sample(incident, count)
