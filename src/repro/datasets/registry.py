"""Named dataset registry.

Experiments, benchmarks and the CLI refer to datasets by name
(``"arenas-email"``, ``"dblp"``, ...).  The registry resolves a name to a
graph, preferring a real edge-list file when a data directory is supplied
and falling back to the synthetic stand-in otherwise (the substitution is
documented in DESIGN.md).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.datasets.loaders import (
    _ARENAS_CANDIDATES,
    _DBLP_CANDIDATES,
    find_dataset_file,
    load_konect_arenas_email,
    load_snap_dblp,
)
from repro.datasets.synthetic import arenas_email_like, dblp_like, small_social_graph
from repro.exceptions import DatasetError
from repro.graphs.graph import Graph

__all__ = ["available_datasets", "load_dataset", "dataset_description"]

PathLike = Union[str, Path]

_DESCRIPTIONS: Dict[str, str] = {
    "arenas-email": (
        "University Rovira i Virgili email network (1133 nodes, 5451 edges); "
        "synthetic stand-in generated when the KONECT file is not available"
    ),
    "dblp": (
        "DBLP co-authorship network (317k nodes, 1.05M edges in the original); "
        "synthetic scaled-down stand-in generated when the SNAP file is not available"
    ),
    "small-social": "A ~60-node synthetic social graph for examples and quick tests",
}

_SYNTHETIC_BUILDERS: Dict[str, Callable[..., Graph]] = {
    "arenas-email": arenas_email_like,
    "dblp": dblp_like,
    "small-social": small_social_graph,
}


def available_datasets() -> Tuple[str, ...]:
    """Return the sorted names of all registered datasets."""
    return tuple(sorted(_SYNTHETIC_BUILDERS))


def dataset_description(name: str) -> str:
    """Return the human-readable description of a registered dataset."""
    key = name.lower()
    if key not in _DESCRIPTIONS:
        raise DatasetError(f"unknown dataset {name!r}; known: {available_datasets()}")
    return _DESCRIPTIONS[key]


def load_dataset(
    name: str,
    data_dir: Optional[PathLike] = None,
    **synthetic_kwargs,
) -> Graph:
    """Load a dataset by name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    data_dir:
        Optional directory containing the real KONECT/SNAP files; when the
        expected file exists there the real graph is loaded, otherwise the
        synthetic stand-in is generated.
    synthetic_kwargs:
        Forwarded to the synthetic generator (e.g. ``nodes=5000`` to shrink
        the DBLP stand-in, ``seed=3`` for a different instance).

    Raises
    ------
    DatasetError
        If the dataset name is unknown.
    """
    key = name.lower()
    if key not in _SYNTHETIC_BUILDERS:
        raise DatasetError(f"unknown dataset {name!r}; known: {available_datasets()}")

    if data_dir is not None:
        directory = Path(data_dir)
        if key == "arenas-email" and find_dataset_file(directory, _ARENAS_CANDIDATES):
            return load_konect_arenas_email(directory)
        if key == "dblp" and find_dataset_file(directory, _DBLP_CANDIDATES):
            return load_snap_dblp(directory)

    return _SYNTHETIC_BUILDERS[key](**synthetic_kwargs)
