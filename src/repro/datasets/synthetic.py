"""Synthetic datasets and worked examples.

The paper evaluates on two public graphs — the KONECT *Arenas-email* network
(1133 nodes, 5451 edges) and the SNAP *com-DBLP* co-authorship network
(317 080 nodes, 1 049 866 edges).  Those files cannot be downloaded in an
offline environment, so this module provides generators that reproduce their
relevant structural character (sparse, heavy-tailed degrees, high clustering,
community structure) at configurable scale:

* :func:`arenas_email_like` — matches the Arenas-email size by default,
* :func:`dblp_like` — a scaled-down DBLP-like co-authorship graph (the full
  size is available via the ``nodes`` parameter, at the cost of runtime).

When the real datasets are present on disk, load them instead with
:func:`repro.datasets.loaders.load_konect_arenas_email` /
:func:`repro.datasets.loaders.load_snap_dblp`; every experiment accepts any
:class:`~repro.graphs.Graph`.

The module also contains :func:`figure2_example`, an exact construction of
the worked example of Fig. 2 used to validate the three greedy algorithms
against the numbers printed in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.generators import powerlaw_cluster_graph

__all__ = [
    "arenas_email_like",
    "dblp_like",
    "figure2_example",
    "Figure2Example",
    "small_social_graph",
]

RandomLike = Union[int, random.Random, None]


def arenas_email_like(
    nodes: int = 1133,
    attachment: int = 5,
    triangle_probability: float = 0.35,
    seed: RandomLike = 1,
) -> Graph:
    """Return a synthetic stand-in for the Arenas-email network.

    Defaults produce roughly 1133 nodes and ~5.5k edges with heavy-tailed
    degrees and clustering in the 0.2-0.3 range, matching the real network's
    scale (1133 nodes, 5451 edges, average clustering ≈ 0.22).
    """
    return powerlaw_cluster_graph(
        nodes, attachment, triangle_probability, seed=seed
    )


def dblp_like(
    nodes: int = 20_000,
    attachment: int = 3,
    triangle_probability: float = 0.7,
    seed: RandomLike = 7,
) -> Graph:
    """Return a synthetic stand-in for the com-DBLP co-authorship network.

    The real graph has 317 080 nodes, average degree ≈ 6.6 and very high
    clustering (co-authorship cliques).  The default scales the node count
    down to 20 000 so the DBLP-style experiments finish on a laptop while
    keeping average degree and clustering in the right regime; pass
    ``nodes=317_080`` to generate the full-size equivalent.
    """
    return powerlaw_cluster_graph(
        nodes, attachment, triangle_probability, seed=seed
    )


def small_social_graph(seed: RandomLike = 3) -> Graph:
    """Return a ~60-node social-like graph used by examples and fast tests."""
    return powerlaw_cluster_graph(60, 3, 0.5, seed=seed)


@dataclass(frozen=True)
class Figure2Example:
    """The worked example of Fig. 2, with every labelled link accessible.

    Attributes
    ----------
    graph:
        The original graph (targets still present).
    targets:
        ``t1 .. t5`` keyed by their paper labels.
    protectors:
        The labelled candidate protectors ``p1 .. p4``.
    other_links:
        The unlabelled links (drawn as plain edges in the figure).
    ct_budget_division:
        The sub-budget assignment used in the paper's walkthrough
        (1 for ``t1`` and ``t2``, 0 for the rest).
    """

    graph: Graph
    targets: Dict[str, Edge]
    protectors: Dict[str, Edge]
    other_links: Dict[str, Edge]
    ct_budget_division: Dict[Edge, int]

    @property
    def target_list(self) -> Tuple[Edge, ...]:
        """Return the targets in label order (t1, t2, ..., t5)."""
        return tuple(self.targets[label] for label in sorted(self.targets))


def figure2_example() -> Figure2Example:
    """Construct the Fig. 2 example graph exactly.

    The construction realises the figure's incidence structure with the
    Triangle motif:

    * ``p1`` participates in one target triangle of ``t1`` and one of ``t2``,
    * ``p2`` participates in target triangles of ``t2``, ``t3`` and ``t4``,
    * ``p3`` participates in target triangles of ``t4`` and ``t5``,
    * ``p4`` participates in one target triangle of ``t2``.

    With a global budget of 2, SGB-Greedy gains 5 broken target subgraphs
    (deleting ``p2`` then ``p3``); with sub budgets 1 for ``t1`` and ``t2``,
    CT-Greedy gains 4 and WT-Greedy gains 3 — the numbers quoted in the
    paper.
    """
    u, w1, w2, z, y3, y4, c, y5, q = (
        "u",
        "w1",
        "w2",
        "z",
        "y3",
        "y4",
        "c",
        "y5",
        "q",
    )
    targets = {
        "t1": canonical_edge(u, w1),
        "t2": canonical_edge(u, w2),
        "t3": canonical_edge(w2, y3),
        "t4": canonical_edge(z, y4),
        "t5": canonical_edge(c, y5),
    }
    protectors = {
        "p1": canonical_edge(u, z),
        "p2": canonical_edge(w2, z),
        "p3": canonical_edge(z, c),
        "p4": canonical_edge(u, q),
    }
    other_links = {
        "x1": canonical_edge(w1, z),
        "x2": canonical_edge(w2, q),
        "x3": canonical_edge(y3, z),
        "x4": canonical_edge(y4, w2),
        "x5": canonical_edge(y4, c),
        "x6": canonical_edge(y5, z),
    }
    graph = Graph()
    for edge in (*targets.values(), *protectors.values(), *other_links.values()):
        graph.add_edge(*edge)

    ct_budget_division = {target: 0 for target in targets.values()}
    ct_budget_division[targets["t1"]] = 1
    ct_budget_division[targets["t2"]] = 1

    return Figure2Example(
        graph=graph,
        targets=targets,
        protectors=protectors,
        other_links=other_links,
        ct_budget_division=ct_budget_division,
    )
