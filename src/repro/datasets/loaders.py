"""Loaders for the real datasets used in the paper.

Both datasets are public:

* **Arenas-email** (KONECT): http://konect.cc/networks/arenas-email/ —
  the file of interest is ``out.arenas-email``.
* **com-DBLP** (SNAP): https://snap.stanford.edu/data/com-DBLP.html —
  the file of interest is ``com-dblp.ungraph.txt`` (or the ``.gz``).

Neither can be downloaded in an offline environment, so the loaders accept a
local path and raise :class:`~repro.exceptions.DatasetError` with download
instructions when the file is missing.  The synthetic stand-ins in
:mod:`repro.datasets.synthetic` are used whenever the real files are absent.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.exceptions import DatasetError
from repro.graphs.graph import Graph
from repro.graphs.io import read_edge_list

__all__ = [
    "load_edge_list_dataset",
    "load_konect_arenas_email",
    "load_snap_dblp",
    "find_dataset_file",
]

PathLike = Union[str, Path]

#: Filenames probed (in order) when only a directory is given.
_ARENAS_CANDIDATES = ("out.arenas-email", "arenas-email.txt", "arenas_email.txt")
_DBLP_CANDIDATES = (
    "com-dblp.ungraph.txt",
    "com-dblp.ungraph.txt.gz",
    "dblp.txt",
    "dblp.txt.gz",
)


def find_dataset_file(directory: PathLike, candidates) -> Optional[Path]:
    """Return the first existing candidate file inside ``directory`` (or None)."""
    base = Path(directory)
    for name in candidates:
        path = base / name
        if path.exists():
            return path
    return None


def load_edge_list_dataset(path: PathLike) -> Graph:
    """Load any whitespace edge-list dataset into a :class:`Graph`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    return read_edge_list(path)


def load_konect_arenas_email(path: PathLike) -> Graph:
    """Load the KONECT Arenas-email network from a file or directory.

    Raises
    ------
    DatasetError
        If the file cannot be found, with a pointer to the download page.
    """
    path = Path(path)
    if path.is_dir():
        found = find_dataset_file(path, _ARENAS_CANDIDATES)
        if found is None:
            raise DatasetError(
                f"no Arenas-email edge list found under {path}; download "
                "'out.arenas-email' from http://konect.cc/networks/arenas-email/ "
                "or use repro.datasets.arenas_email_like() as a synthetic stand-in"
            )
        path = found
    if not path.exists():
        raise DatasetError(
            f"Arenas-email file not found: {path}; download it from "
            "http://konect.cc/networks/arenas-email/ or use "
            "repro.datasets.arenas_email_like()"
        )
    return read_edge_list(path)


def load_snap_dblp(path: PathLike) -> Graph:
    """Load the SNAP com-DBLP network from a file or directory.

    Raises
    ------
    DatasetError
        If the file cannot be found, with a pointer to the download page.
    """
    path = Path(path)
    if path.is_dir():
        found = find_dataset_file(path, _DBLP_CANDIDATES)
        if found is None:
            raise DatasetError(
                f"no com-DBLP edge list found under {path}; download "
                "'com-dblp.ungraph.txt.gz' from "
                "https://snap.stanford.edu/data/com-DBLP.html or use "
                "repro.datasets.dblp_like() as a synthetic stand-in"
            )
        path = found
    if not path.exists():
        raise DatasetError(
            f"com-DBLP file not found: {path}; download it from "
            "https://snap.stanford.edu/data/com-DBLP.html or use "
            "repro.datasets.dblp_like()"
        )
    return read_edge_list(path)
