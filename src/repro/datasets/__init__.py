"""Datasets: real-data loaders, synthetic stand-ins and target samplers."""

from repro.datasets.loaders import (
    load_edge_list_dataset,
    load_konect_arenas_email,
    load_snap_dblp,
)
from repro.datasets.registry import available_datasets, dataset_description, load_dataset
from repro.datasets.synthetic import (
    Figure2Example,
    arenas_email_like,
    dblp_like,
    figure2_example,
    small_social_graph,
)
from repro.datasets.targets import (
    sample_degree_weighted_targets,
    sample_ego_targets,
    sample_random_targets,
)

__all__ = [
    "arenas_email_like",
    "dblp_like",
    "small_social_graph",
    "figure2_example",
    "Figure2Example",
    "load_edge_list_dataset",
    "load_konect_arenas_email",
    "load_snap_dblp",
    "load_dataset",
    "available_datasets",
    "dataset_description",
    "sample_random_targets",
    "sample_degree_weighted_targets",
    "sample_ego_targets",
]
