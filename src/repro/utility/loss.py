"""Utility loss between an original and a released graph.

The paper quantifies the cost of privacy protection with the utility loss
ratio of each metric

``ulr(z, G, G') = |z(G) - z(G')| / |z(G)|``

and the average over all evaluated metrics (Tables III–V).  The
:class:`UtilityLossReport` bundles the per-metric values so experiment code
and users can inspect both the aggregate and the breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.graphs.graph import Graph
from repro.utility.metrics import compute_metrics, default_metrics_for

__all__ = ["utility_loss_ratio", "UtilityLossReport", "compare_graphs"]


def utility_loss_ratio(original_value: float, released_value: float) -> float:
    """Return ``|z(G) - z(G')| / |z(G)|`` for one metric.

    When the original value is zero the ratio is defined as 0.0 if the
    released value is also zero and 1.0 otherwise (a total relative change),
    which keeps the aggregate well defined on degenerate graphs.
    """
    if original_value == 0:
        return 0.0 if released_value == 0 else 1.0
    return abs(original_value - released_value) / abs(original_value)


@dataclass(frozen=True)
class UtilityLossReport:
    """Per-metric and averaged utility loss between two graphs.

    Attributes
    ----------
    original_metrics / released_metrics:
        The raw metric values on the two graphs.
    loss_ratios:
        ``ulr`` per metric.
    """

    original_metrics: Mapping[str, float]
    released_metrics: Mapping[str, float]
    loss_ratios: Mapping[str, float]

    @property
    def average_loss_ratio(self) -> float:
        """Return the mean ``ulr`` over all evaluated metrics."""
        if not self.loss_ratios:
            return 0.0
        return sum(self.loss_ratios.values()) / len(self.loss_ratios)

    @property
    def average_loss_percent(self) -> float:
        """Return the average loss ratio expressed in percent."""
        return 100.0 * self.average_loss_ratio

    def as_rows(self) -> Sequence[tuple]:
        """Return ``(metric, original, released, loss_ratio)`` rows."""
        return [
            (
                name,
                self.original_metrics[name],
                self.released_metrics[name],
                self.loss_ratios[name],
            )
            for name in self.original_metrics
        ]

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            f"average utility loss {self.average_loss_percent:.2f}% over "
            f"{len(self.loss_ratios)} metrics"
        )


def compare_graphs(
    original: Graph,
    released: Graph,
    metrics: Optional[Sequence[str]] = None,
    path_length_sample: Optional[int] = None,
) -> UtilityLossReport:
    """Compute the utility loss report between ``original`` and ``released``.

    Parameters
    ----------
    original / released:
        The graph before and after privacy preservation.
    metrics:
        Metric names (see :data:`repro.utility.metrics.ALL_METRICS`); chosen
        automatically from the graph size when omitted, like the paper does.
    path_length_sample:
        Optional BFS-source sample size for the average path length.
    """
    if metrics is None:
        metrics = default_metrics_for(original)
    original_values = compute_metrics(
        original, metrics, path_length_sample=path_length_sample
    )
    released_values = compute_metrics(
        released, metrics, path_length_sample=path_length_sample
    )
    losses: Dict[str, float] = {
        name: utility_loss_ratio(original_values[name], released_values[name])
        for name in original_values
    }
    return UtilityLossReport(
        original_metrics=original_values,
        released_metrics=released_values,
        loss_ratios=losses,
    )
