"""Graph utility metrics (Table II of the paper).

A released graph is only useful if its structural statistics stay close to
the original's.  The paper tracks six metrics:

========  =======================================================
``l``     average shortest path length
``clust`` average clustering coefficient
``r``     degree assortativity coefficient
``cn``    average k-core number
``mu``    second largest eigenvalue of the Laplacian
``mod``   modularity of the community structure
========  =======================================================

:func:`compute_metrics` evaluates any subset of them; expensive metrics
(``l`` and ``mu``) are automatically skipped or sampled on large graphs the
same way the paper skips them for DBLP (Table V only reports ``clust`` and
``cn``).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.exceptions import UtilityError
from repro.graphs.algorithms import (
    average_clustering,
    average_shortest_path_length,
    core_numbers,
)
from repro.graphs.community import best_partition_modularity
from repro.graphs.graph import Graph
from repro.graphs.spectral import second_largest_laplacian_eigenvalue

__all__ = [
    "ALL_METRICS",
    "SCALABLE_METRICS",
    "average_path_length_metric",
    "clustering_metric",
    "assortativity_metric",
    "core_number_metric",
    "eigenvalue_metric",
    "modularity_metric",
    "compute_metrics",
    "default_metrics_for",
]

MetricFunction = Callable[[Graph], float]


def average_path_length_metric(
    graph: Graph, sample_size: Optional[int] = None, seed: int = 0
) -> float:
    """Return the average shortest path length ``l`` (BFS-sampled if asked)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    sources = None
    if sample_size is not None and sample_size < graph.number_of_nodes():
        rng = random.Random(seed)
        sources = rng.sample(sorted(graph.nodes(), key=str), sample_size)
    return average_shortest_path_length(graph, sample_sources=sources)


def clustering_metric(graph: Graph) -> float:
    """Return the average clustering coefficient ``clust``."""
    return average_clustering(graph)


def assortativity_metric(graph: Graph) -> float:
    """Return the degree assortativity coefficient ``r``.

    Implemented with the standard Pearson-correlation-over-edges formula: for
    every edge the degrees of its two endpoints form a sample (counted in both
    orders), and ``r`` is the correlation of the two coordinates.  Returns 0.0
    for graphs where the variance vanishes (e.g. regular graphs).
    """
    xs = []
    ys = []
    for u, v in graph.edges():
        du, dv = graph.degree(u), graph.degree(v)
        xs.extend((du, dv))
        ys.extend((dv, du))
    if not xs:
        return 0.0
    n = float(len(xs))
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / n
    var_x = sum((x - mean_x) ** 2 for x in xs) / n
    var_y = sum((y - mean_y) ** 2 for y in ys) / n
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def core_number_metric(graph: Graph) -> float:
    """Return the average k-core number ``cn`` over all nodes."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return sum(core_numbers(graph).values()) / n


def eigenvalue_metric(graph: Graph, max_nodes: int = 3000) -> float:
    """Return the second largest Laplacian eigenvalue ``mu``."""
    return second_largest_laplacian_eigenvalue(graph, max_nodes=max_nodes)


def modularity_metric(graph: Graph) -> float:
    """Return the modularity ``mod`` of an automatically detected partition."""
    return best_partition_modularity(graph)


#: All Table II metrics, keyed by the paper's notation.
ALL_METRICS: Dict[str, MetricFunction] = {
    "l": average_path_length_metric,
    "clust": clustering_metric,
    "r": assortativity_metric,
    "cn": core_number_metric,
    "mu": eigenvalue_metric,
    "mod": modularity_metric,
}

#: The metrics the paper still reports on DBLP-scale graphs (Table V).
SCALABLE_METRICS: Tuple[str, ...] = ("clust", "cn")


def default_metrics_for(graph: Graph, large_graph_threshold: int = 3000) -> Tuple[str, ...]:
    """Return the metric names appropriate for a graph of this size.

    Mirrors the paper: all six metrics on Arenas-scale graphs, only the
    scalable clustering / core-number metrics on DBLP-scale graphs where
    "average path length and eigenvalue can't be efficiently computed".
    """
    if graph.number_of_nodes() > large_graph_threshold:
        return SCALABLE_METRICS
    return tuple(ALL_METRICS)


def compute_metrics(
    graph: Graph,
    metrics: Optional[Sequence[str]] = None,
    path_length_sample: Optional[int] = None,
) -> Dict[str, float]:
    """Compute the requested utility metrics on ``graph``.

    Parameters
    ----------
    graph:
        Graph to measure.
    metrics:
        Names from :data:`ALL_METRICS`; defaults to
        :func:`default_metrics_for` the graph's size.
    path_length_sample:
        Optional number of BFS sources used to estimate ``l`` (exact when
        omitted).

    Raises
    ------
    UtilityError
        If an unknown metric name is requested.
    """
    names: Iterable[str] = metrics if metrics is not None else default_metrics_for(graph)
    results: Dict[str, float] = {}
    for name in names:
        if name not in ALL_METRICS:
            raise UtilityError(
                f"unknown utility metric {name!r}; known: {sorted(ALL_METRICS)}"
            )
        if name == "l":
            results[name] = average_path_length_metric(
                graph, sample_size=path_length_sample
            )
        else:
            results[name] = ALL_METRICS[name](graph)
    return results
