"""Graph utility metrics and utility loss analysis (Table II and Tables III-V)."""

from repro.utility.loss import UtilityLossReport, compare_graphs, utility_loss_ratio
from repro.utility.metrics import (
    ALL_METRICS,
    SCALABLE_METRICS,
    assortativity_metric,
    average_path_length_metric,
    clustering_metric,
    compute_metrics,
    core_number_metric,
    default_metrics_for,
    eigenvalue_metric,
    modularity_metric,
)

__all__ = [
    "ALL_METRICS",
    "SCALABLE_METRICS",
    "compute_metrics",
    "default_metrics_for",
    "average_path_length_metric",
    "clustering_metric",
    "assortativity_metric",
    "core_number_metric",
    "eigenvalue_metric",
    "modularity_metric",
    "utility_loss_ratio",
    "UtilityLossReport",
    "compare_graphs",
]
