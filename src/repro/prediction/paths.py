"""Path-based link prediction indices (Katz and Local Path).

The paper lists the Katz index as future work ("more TPP mechanisms against
kinds of other link predictions, e.g. Katz"); the attack simulator supports
it so the repository can quantify how well a motif-protected release also
resists longer-range path-based adversaries.
"""

from __future__ import annotations

from typing import Dict

from repro.exceptions import PredictorConfigError
from repro.graphs.graph import Graph, Node
from repro.prediction.base import LinkPredictor, register_predictor

__all__ = [
    "path_counts",
    "katz_index",
    "local_path_index",
    "KatzPredictor",
    "LocalPathPredictor",
]


def path_counts(graph: Graph, u: Node, v: Node, max_length: int = 4) -> Dict[int, int]:
    """Return the number of walks of each length ``2 .. max_length`` from u to v.

    Walks (not simple paths) are counted, matching the Katz definition; the
    length-1 walk (a direct edge) is included when present.
    """
    if not (graph.has_node(u) and graph.has_node(v)):
        return {length: 0 for length in range(1, max_length + 1)}
    counts: Dict[int, int] = {}
    # walks_to[x] = number of walks of current length from u to x
    walks_to: Dict[Node, int] = {u: 1}
    for length in range(1, max_length + 1):
        next_walks: Dict[Node, int] = {}
        for node, walks in walks_to.items():
            for neighbor in graph.neighbors(node):
                next_walks[neighbor] = next_walks.get(neighbor, 0) + walks
        counts[length] = next_walks.get(v, 0)
        walks_to = next_walks
    return counts


def katz_index(
    graph: Graph, u: Node, v: Node, beta: float = 0.05, max_length: int = 4
) -> float:
    """Return the truncated Katz index ``Σ_l beta^l · |walks_l(u, v)|``.

    ``beta`` must be small enough that longer walks contribute less; the
    series is truncated at ``max_length`` which is standard practice for
    sparse social graphs.
    """
    counts = path_counts(graph, u, v, max_length=max_length)
    return sum((beta ** length) * count for length, count in counts.items())


def local_path_index(graph: Graph, u: Node, v: Node, epsilon: float = 0.01) -> float:
    """Return the Local Path index ``|walks_2| + epsilon · |walks_3|``."""
    counts = path_counts(graph, u, v, max_length=3)
    return counts.get(2, 0) + epsilon * counts.get(3, 0)


@register_predictor
class KatzPredictor(LinkPredictor):
    """Truncated Katz index predictor."""

    name = "katz"

    def __init__(self, beta: float = 0.05, max_length: int = 4) -> None:
        if beta <= 0:
            raise PredictorConfigError(f"beta must be > 0, got {beta}")
        if max_length < 2:
            raise PredictorConfigError(f"max_length must be >= 2, got {max_length}")
        self.beta = beta
        self.max_length = max_length

    def score(self, graph: Graph, u: Node, v: Node) -> float:
        return katz_index(graph, u, v, beta=self.beta, max_length=self.max_length)


@register_predictor
class LocalPathPredictor(LinkPredictor):
    """Local Path index predictor (2-walks plus damped 3-walks)."""

    name = "local_path"

    def __init__(self, epsilon: float = 0.01) -> None:
        self.epsilon = epsilon

    def score(self, graph: Graph, u: Node, v: Node) -> float:
        return local_path_index(graph, u, v, epsilon=self.epsilon)
