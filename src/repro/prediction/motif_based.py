"""Motif-based link prediction: the paper's threat model.

The adversary of §III-B scores a missing pair ``(u, v)`` by the number of
subgraph-pattern instances the pair would complete — exactly the similarity
``s(t)`` the TPP objective minimises.  A release is *fully protected* against
this predictor when every target scores zero.
"""

from __future__ import annotations

from typing import Union

from repro.graphs.graph import Graph, Node
from repro.motifs.base import MotifPattern, coerce_motif
from repro.prediction.base import LinkPredictor, register_predictor

__all__ = ["MotifPredictor", "TrianglePredictor", "RectanglePredictor", "RecTriPredictor"]


class MotifPredictor(LinkPredictor):
    """Scores a pair by its motif-instance count (the similarity ``s``)."""

    name = "motif"

    def __init__(self, motif: Union[str, MotifPattern] = "triangle") -> None:
        self.motif = coerce_motif(motif)

    def score(self, graph: Graph, u: Node, v: Node) -> float:
        if graph.has_edge(u, v):
            # predicting an existing edge: count instances on the graph with
            # the edge removed, the same way the TPP model does in phase 1
            working = graph.without_edges([(u, v)])
            return float(self.motif.count(working, (u, v)))
        return float(self.motif.count(graph, (u, v)))

    def __repr__(self) -> str:
        return f"MotifPredictor(motif={self.motif.name!r})"


@register_predictor
class TrianglePredictor(MotifPredictor):
    """Motif predictor specialised to the Triangle pattern."""

    name = "triangle_motif"

    def __init__(self) -> None:
        super().__init__("triangle")


@register_predictor
class RectanglePredictor(MotifPredictor):
    """Motif predictor specialised to the Rectangle pattern."""

    name = "rectangle_motif"

    def __init__(self) -> None:
        super().__init__("rectangle")


@register_predictor
class RecTriPredictor(MotifPredictor):
    """Motif predictor specialised to the RecTri pattern."""

    name = "rectri_motif"

    def __init__(self) -> None:
        super().__init__("rectri")
