"""Link predictor abstraction and registry.

The TPP threat model (paper §III-B) assumes an adversary with full knowledge
of the released graph who scores candidate node pairs with a link prediction
index and infers that high-scoring missing pairs are hidden links.  A
:class:`LinkPredictor` encapsulates one such index; the attack simulator in
:mod:`repro.prediction.attack` drives it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Tuple, Type

from repro.exceptions import PredictionError
from repro.graphs.graph import Edge, Graph, Node

__all__ = [
    "LinkPredictor",
    "register_predictor",
    "get_predictor",
    "available_predictors",
]


class LinkPredictor(ABC):
    """Scores node pairs: the higher the score, the more likely the link."""

    #: Registry key; subclasses must override.
    name: str = "abstract"

    @abstractmethod
    def score(self, graph: Graph, u: Node, v: Node) -> float:
        """Return the prediction score of the (missing) pair ``(u, v)``."""

    def score_many(self, graph: Graph, pairs: Iterable[Edge]) -> Dict[Edge, float]:
        """Return scores for every pair in ``pairs``."""
        return {pair: self.score(graph, pair[0], pair[1]) for pair in pairs}

    def rank(self, graph: Graph, pairs: Iterable[Edge]) -> List[Tuple[Edge, float]]:
        """Return ``pairs`` sorted by descending score (ties broken by repr)."""
        scored = self.score_many(graph, pairs)
        return sorted(scored.items(), key=lambda item: (-item[1], str(item[0])))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Type[LinkPredictor]] = {}


def register_predictor(cls: Type[LinkPredictor]) -> Type[LinkPredictor]:
    """Class decorator adding a :class:`LinkPredictor` subclass to the registry."""
    if not issubclass(cls, LinkPredictor):
        raise TypeError(f"{cls!r} is not a LinkPredictor subclass")
    _REGISTRY[cls.name.lower()] = cls
    return cls


def available_predictors() -> Tuple[str, ...]:
    """Return the sorted names of all registered link predictors."""
    return tuple(sorted(_REGISTRY))


def get_predictor(name: str, **kwargs) -> LinkPredictor:
    """Return a fresh predictor registered under ``name``.

    Keyword arguments are forwarded to the predictor's constructor (e.g.
    ``get_predictor("katz", beta=0.01)``).
    """
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise PredictionError(
            f"unknown predictor {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
