"""Adversarial link prediction: local indices, path indices, motif predictors, attacks."""

from repro.prediction.attack import AttackReport, AttackSimulator, sample_non_edges
from repro.prediction.base import (
    LinkPredictor,
    available_predictors,
    get_predictor,
    register_predictor,
)
from repro.prediction.local import (
    AdamicAdarPredictor,
    CommonNeighborsPredictor,
    HubDepressedPredictor,
    HubPromotedPredictor,
    JaccardPredictor,
    LeichtHolmeNewmanPredictor,
    ResourceAllocationPredictor,
    SaltonPredictor,
    SorensenPredictor,
    adamic_adar_index,
    common_neighbors_index,
    hub_depressed_index,
    hub_promoted_index,
    jaccard_index,
    leicht_holme_newman_index,
    resource_allocation_index,
    salton_index,
    sorensen_index,
)
from repro.prediction.motif_based import (
    MotifPredictor,
    RecTriPredictor,
    RectanglePredictor,
    TrianglePredictor,
)
from repro.prediction.paths import (
    KatzPredictor,
    LocalPathPredictor,
    katz_index,
    local_path_index,
    path_counts,
)

__all__ = [
    "LinkPredictor",
    "register_predictor",
    "get_predictor",
    "available_predictors",
    "AttackSimulator",
    "AttackReport",
    "sample_non_edges",
    # local indices (functions)
    "common_neighbors_index",
    "jaccard_index",
    "salton_index",
    "sorensen_index",
    "hub_promoted_index",
    "hub_depressed_index",
    "leicht_holme_newman_index",
    "adamic_adar_index",
    "resource_allocation_index",
    # local indices (predictors)
    "CommonNeighborsPredictor",
    "JaccardPredictor",
    "SaltonPredictor",
    "SorensenPredictor",
    "HubPromotedPredictor",
    "HubDepressedPredictor",
    "LeichtHolmeNewmanPredictor",
    "AdamicAdarPredictor",
    "ResourceAllocationPredictor",
    # path indices
    "path_counts",
    "katz_index",
    "local_path_index",
    "KatzPredictor",
    "LocalPathPredictor",
    # motif predictors
    "MotifPredictor",
    "TrianglePredictor",
    "RectanglePredictor",
    "RecTriPredictor",
]
