"""Classic local (common-neighbor based) similarity indices.

These are the triangle-related link prediction indices the paper lists in
§VI-D: Common Neighbors, Jaccard, Salton, Sørensen, Hub Promoted, Hub
Depressed, Leicht–Holme–Newman, Adamic–Adar and Resource Allocation.  A fully
protected graph (no surviving triangle target-subgraph) drives every one of
them to zero for every target, which is the "defends a whole family of
predictions" claim of the paper.

Each index is exposed twice:

* a plain function ``index(graph, u, v) -> float`` (convenient for the
  non-monotonicity counter-examples and for building
  :class:`~repro.core.LocalIndexDissimilarity` objectives), and
* a registered :class:`~repro.prediction.base.LinkPredictor` class usable by
  the attack simulator.
"""

from __future__ import annotations

import math

from repro.graphs.graph import Graph, Node
from repro.prediction.base import LinkPredictor, register_predictor

__all__ = [
    "common_neighbors_index",
    "jaccard_index",
    "salton_index",
    "sorensen_index",
    "hub_promoted_index",
    "hub_depressed_index",
    "leicht_holme_newman_index",
    "adamic_adar_index",
    "resource_allocation_index",
    "CommonNeighborsPredictor",
    "JaccardPredictor",
    "SaltonPredictor",
    "SorensenPredictor",
    "HubPromotedPredictor",
    "HubDepressedPredictor",
    "LeichtHolmeNewmanPredictor",
    "AdamicAdarPredictor",
    "ResourceAllocationPredictor",
]


def _common(graph: Graph, u: Node, v: Node):
    if not (graph.has_node(u) and graph.has_node(v)):
        return set()
    return graph.common_neighbors(u, v)


def common_neighbors_index(graph: Graph, u: Node, v: Node) -> float:
    """Return ``|Γ(u) ∩ Γ(v)|``."""
    return float(len(_common(graph, u, v)))


def jaccard_index(graph: Graph, u: Node, v: Node) -> float:
    """Return ``|Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|`` (0.0 when the union is empty)."""
    common = _common(graph, u, v)
    if not graph.has_node(u) or not graph.has_node(v):
        return 0.0
    union = len(graph.neighbors(u) | graph.neighbors(v))
    return len(common) / union if union else 0.0


def salton_index(graph: Graph, u: Node, v: Node) -> float:
    """Return ``|Γ(u) ∩ Γ(v)| / sqrt(d_u d_v)`` (cosine similarity)."""
    common = _common(graph, u, v)
    if not common:
        return 0.0
    product = graph.degree(u) * graph.degree(v)
    return len(common) / math.sqrt(product) if product else 0.0


def sorensen_index(graph: Graph, u: Node, v: Node) -> float:
    """Return ``2 |Γ(u) ∩ Γ(v)| / (d_u + d_v)``."""
    common = _common(graph, u, v)
    if not common:
        return 0.0
    total = graph.degree(u) + graph.degree(v)
    return 2.0 * len(common) / total if total else 0.0


def hub_promoted_index(graph: Graph, u: Node, v: Node) -> float:
    """Return ``|Γ(u) ∩ Γ(v)| / min(d_u, d_v)``."""
    common = _common(graph, u, v)
    if not common:
        return 0.0
    smallest = min(graph.degree(u), graph.degree(v))
    return len(common) / smallest if smallest else 0.0


def hub_depressed_index(graph: Graph, u: Node, v: Node) -> float:
    """Return ``|Γ(u) ∩ Γ(v)| / max(d_u, d_v)``."""
    common = _common(graph, u, v)
    if not common:
        return 0.0
    largest = max(graph.degree(u), graph.degree(v))
    return len(common) / largest if largest else 0.0


def leicht_holme_newman_index(graph: Graph, u: Node, v: Node) -> float:
    """Return ``|Γ(u) ∩ Γ(v)| / (d_u d_v)``."""
    common = _common(graph, u, v)
    if not common:
        return 0.0
    product = graph.degree(u) * graph.degree(v)
    return len(common) / product if product else 0.0


def adamic_adar_index(graph: Graph, u: Node, v: Node) -> float:
    """Return ``Σ_{w in Γ(u) ∩ Γ(v)} 1 / log(d_w)``.

    Common neighbors of degree 1 (log 1 = 0) and degree 0 cannot contribute a
    finite term and are skipped, following the usual convention.
    """
    score = 0.0
    for w in _common(graph, u, v):
        degree = graph.degree(w)
        if degree > 1:
            score += 1.0 / math.log(degree)
    return score


def resource_allocation_index(graph: Graph, u: Node, v: Node) -> float:
    """Return ``Σ_{w in Γ(u) ∩ Γ(v)} 1 / d_w``."""
    score = 0.0
    for w in _common(graph, u, v):
        degree = graph.degree(w)
        if degree > 0:
            score += 1.0 / degree
    return score


class _FunctionPredictor(LinkPredictor):
    """Adapter turning a plain index function into a LinkPredictor."""

    _function = staticmethod(common_neighbors_index)

    def score(self, graph: Graph, u: Node, v: Node) -> float:
        return type(self)._function(graph, u, v)


@register_predictor
class CommonNeighborsPredictor(_FunctionPredictor):
    """Common Neighbors: the raw triangle count (basis of the Triangle motif)."""

    name = "common_neighbors"
    _function = staticmethod(common_neighbors_index)


@register_predictor
class JaccardPredictor(_FunctionPredictor):
    """Jaccard similarity coefficient."""

    name = "jaccard"
    _function = staticmethod(jaccard_index)


@register_predictor
class SaltonPredictor(_FunctionPredictor):
    """Salton (cosine) index."""

    name = "salton"
    _function = staticmethod(salton_index)


@register_predictor
class SorensenPredictor(_FunctionPredictor):
    """Sørensen index."""

    name = "sorensen"
    _function = staticmethod(sorensen_index)


@register_predictor
class HubPromotedPredictor(_FunctionPredictor):
    """Hub Promoted index."""

    name = "hub_promoted"
    _function = staticmethod(hub_promoted_index)


@register_predictor
class HubDepressedPredictor(_FunctionPredictor):
    """Hub Depressed index."""

    name = "hub_depressed"
    _function = staticmethod(hub_depressed_index)


@register_predictor
class LeichtHolmeNewmanPredictor(_FunctionPredictor):
    """Leicht–Holme–Newman index."""

    name = "lhn"
    _function = staticmethod(leicht_holme_newman_index)


@register_predictor
class AdamicAdarPredictor(_FunctionPredictor):
    """Adamic–Adar index."""

    name = "adamic_adar"
    _function = staticmethod(adamic_adar_index)


@register_predictor
class ResourceAllocationPredictor(_FunctionPredictor):
    """Resource Allocation index."""

    name = "resource_allocation"
    _function = staticmethod(resource_allocation_index)
