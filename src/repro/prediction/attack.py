"""Adversarial attack simulation against a released graph.

The threat model of the paper assumes an attacker with *full knowledge* of
the released (privacy-preserved) graph who runs a link prediction index over
candidate node pairs and flags the highest-scoring missing pairs as hidden
links.  :class:`AttackSimulator` reproduces that attack so a release can be
evaluated end to end:

* how do the hidden targets rank among random non-edges (AUC)?
* how many targets appear in the attacker's top-k guesses (precision@k)?
* what raw prediction score does each target still get (exposure)?

The paper itself reports the similarity score ``s(P, T)`` as the proxy for
attack success; the simulator generalises that to any registered predictor so
the "fully protected graph defends the whole family of triangle-based
predictions" claim of §VI-D becomes measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import PredictionError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.prediction.base import LinkPredictor, get_predictor

__all__ = ["AttackReport", "AttackSimulator", "sample_non_edges"]

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def sample_non_edges(
    graph: Graph,
    count: int,
    seed: RandomLike = None,
    exclude: Sequence[Edge] = (),
) -> List[Edge]:
    """Sample ``count`` node pairs that are not edges of ``graph``.

    Pairs listed in ``exclude`` (for example the hidden targets) are never
    returned.  Sampling is rejection based, which is efficient on the sparse
    graphs this library deals with.
    """
    rng = _rng(seed)
    nodes = sorted(graph.nodes(), key=str)
    if len(nodes) < 2:
        return []
    excluded = {canonical_edge(*edge) for edge in exclude}
    sampled: List[Edge] = []
    seen = set()
    attempts = 0
    limit = 200 * max(count, 1)
    while len(sampled) < count and attempts < limit:
        attempts += 1
        u, v = rng.sample(nodes, 2)
        edge = canonical_edge(u, v)
        if edge in seen or edge in excluded or graph.has_edge(u, v):
            continue
        seen.add(edge)
        sampled.append(edge)
    return sampled


@dataclass(frozen=True)
class AttackReport:
    """Outcome of one simulated attack.

    Attributes
    ----------
    predictor:
        Name of the link prediction index used by the attacker.
    auc:
        Probability that a random hidden target outscores a random non-edge
        (ties count 0.5); 0.5 means the attacker does no better than chance.
    precision_at_k:
        Fraction of the attacker's top-``k`` guesses that are actual targets,
        for each evaluated ``k``.
    target_scores:
        The raw prediction score of every hidden target.
    exposed_targets:
        Targets with a strictly positive score (still inferable at all).
    """

    predictor: str
    auc: float
    precision_at_k: Dict[int, float]
    target_scores: Dict[Edge, float]
    exposed_targets: Tuple[Edge, ...]

    @property
    def fully_defended(self) -> bool:
        """Return whether no target retains a positive prediction score."""
        return not self.exposed_targets

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        precisions = ", ".join(
            f"P@{k}={value:.2f}" for k, value in sorted(self.precision_at_k.items())
        )
        return (
            f"{self.predictor}: AUC={self.auc:.3f} {precisions} "
            f"exposed={len(self.exposed_targets)}/{len(self.target_scores)}"
        )


class AttackSimulator:
    """Simulates the paper's adversary against a released graph."""

    def __init__(
        self,
        predictor: Union[str, LinkPredictor] = "common_neighbors",
        negative_samples: int = 200,
        seed: RandomLike = 0,
    ) -> None:
        if isinstance(predictor, str):
            predictor = get_predictor(predictor)
        self._predictor = predictor
        if negative_samples < 1:
            raise PredictionError(
                f"negative_samples must be >= 1, got {negative_samples}"
            )
        self._negative_samples = negative_samples
        self._seed = seed

    @property
    def predictor(self) -> LinkPredictor:
        """The link predictor the simulated attacker uses."""
        return self._predictor

    def run(
        self,
        released_graph: Graph,
        targets: Sequence[Edge],
        ks: Sequence[int] = (1, 5, 10),
        non_edges: Optional[Sequence[Edge]] = None,
    ) -> AttackReport:
        """Attack ``released_graph`` and report how well the targets resist.

        Parameters
        ----------
        released_graph:
            The graph the defender publishes (targets and protectors removed).
        targets:
            The hidden links the attacker is after (ground truth).
        ks:
            Cut-offs for precision@k.
        non_edges:
            Optional explicit negative pool; sampled randomly when omitted.
        """
        canonical_targets = [canonical_edge(*target) for target in targets]
        if not canonical_targets:
            raise PredictionError("the attack needs at least one target")
        if non_edges is None:
            non_edges = sample_non_edges(
                released_graph,
                self._negative_samples,
                seed=self._seed,
                exclude=canonical_targets,
            )
        target_scores = {
            target: self._predictor.score(released_graph, *target)
            for target in canonical_targets
        }
        negative_scores = [
            self._predictor.score(released_graph, *pair) for pair in non_edges
        ]

        auc = self._auc(list(target_scores.values()), negative_scores)
        precision = self._precision_at_k(target_scores, non_edges, negative_scores, ks)
        exposed = tuple(
            target for target, score in target_scores.items() if score > 0
        )
        return AttackReport(
            predictor=self._predictor.name,
            auc=auc,
            precision_at_k=precision,
            target_scores=target_scores,
            exposed_targets=exposed,
        )

    @staticmethod
    def _auc(positive: List[float], negative: List[float]) -> float:
        """Rank-based AUC with ties counted as half wins."""
        if not positive or not negative:
            return 0.5
        wins = 0.0
        for p in positive:
            for n in negative:
                if p > n:
                    wins += 1.0
                elif p == n:
                    wins += 0.5
        return wins / (len(positive) * len(negative))

    @staticmethod
    def _precision_at_k(
        target_scores: Dict[Edge, float],
        non_edges: Sequence[Edge],
        negative_scores: List[float],
        ks: Sequence[int],
    ) -> Dict[int, float]:
        """Precision of the attacker's top-k guesses over the mixed candidate pool."""
        pool: List[Tuple[Edge, float, bool]] = [
            (target, score, True) for target, score in target_scores.items()
        ]
        pool.extend(
            (pair, score, False) for pair, score in zip(non_edges, negative_scores)
        )
        pool.sort(key=lambda item: (-item[1], str(item[0])))
        precision: Dict[int, float] = {}
        for k in ks:
            if k <= 0:
                continue
            top = pool[:k]
            hits = sum(1 for _, _, is_target in top if is_target)
            precision[k] = hits / k
        return precision
