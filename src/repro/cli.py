"""Command-line interface.

Seven sub-commands cover the common workflows:

* ``repro-tpp protect`` — run one or more protection queries on an edge-list
  file (or a named dataset) through a shared-index
  :class:`~repro.service.ProtectionService` session and write the released
  graph,
* ``repro-tpp build-index`` — enumerate the target-subgraph index once and
  persist it as a snapshot file that later ``protect --index-file`` runs
  (or :meth:`ProtectionService.from_snapshot`) cold-start from without
  enumerating,
* ``repro-tpp apply-delta`` — splice edge insertions/deletions into a saved
  index incrementally (bit-identical to rebuilding on the updated graph)
  and write the updated snapshot, optionally recording the change as a
  small ``*.tppdelta`` diff file,
* ``repro-tpp verify-index`` — validate snapshot / delta files (hashes,
  format version) without constructing an index,
* ``repro-tpp serve`` — expose a session over HTTP (solve, health/stats,
  graceful hot-reload, artifact endpoints; see :mod:`repro.server`),
* ``repro-tpp publish`` — verify snapshot / delta files and publish them
  content-hash-addressed to a store directory or a running server, and
* ``repro-tpp experiment`` — regenerate one of the paper's figures/tables and
  print its rows/series.

Examples
--------
Protect 10 random targets of a synthetic Arenas-like graph::

    repro-tpp protect --dataset arenas-email --targets 10 --budget 30 \
        --motif triangle --method SGB-Greedy --output released.edges

Sweep three budgets from one session, four queries in flight, JSON out::

    repro-tpp protect --dataset arenas-email --budget 10 20 30 \
        --workers 4 --json results.json

Build the index once, then serve queries from the snapshot (no
enumeration at startup)::

    repro-tpp build-index --dataset arenas-email --targets 10 \
        --output arenas.tppsnap
    repro-tpp protect --index-file arenas.tppsnap --budget 30

Splice a graph update into the saved index and keep serving::

    repro-tpp apply-delta --index-file arenas.tppsnap \
        --insert 12 873 --delete 40 61 --output arenas-v2.tppsnap \
        --save-delta update-0001.tppdelta
    repro-tpp verify-index arenas-v2.tppsnap update-0001.tppdelta

Serve the index over HTTP and publish it for replicas::

    repro-tpp serve --index-file arenas.tppsnap --port 8035 \
        --artifact-dir /var/tpp/store
    repro-tpp publish arenas.tppsnap --store /var/tpp/store --set-latest

Regenerate Fig. 3 at quick scale::

    repro-tpp experiment fig3 --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.engines import ENGINE_NAMES
from repro.core.model import TPPProblem
from repro.datasets.loaders import load_edge_list_dataset
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.targets import sample_random_targets
from repro.experiments.reporting import (
    format_runtime_comparison,
    format_similarity_evolution,
    format_utility_loss_table,
    save_json,
)
from repro.experiments.runner import EXPERIMENT_RUNNERS
from repro.experiments.runtime import RuntimeComparison
from repro.experiments.similarity_evolution import SimilarityEvolution
from repro.experiments.utility_loss import UtilityLossTable
from repro.graphs.io import write_edge_list
from repro._native import KERNEL_NAMES
from repro.motifs.base import available_motifs
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    ShardedProtectionService,
    method_names,
    shards_from_env,
)
from repro.utility.loss import compare_graphs

__all__ = ["main", "build_parser"]

#: Experiment runners that accept a ``workers`` fan-out argument.
_PARALLEL_EXPERIMENTS = ("fig3", "fig4")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser.

    Method and engine choices are read from the live registries
    (:func:`repro.service.method_names`, ``ENGINE_NAMES``), so methods
    registered by downstream plugins are accepted — and a typo fails fast
    with the full list of valid names.
    """
    parser = argparse.ArgumentParser(
        prog="repro-tpp",
        description="Target Privacy Preserving for social networks (ICDE 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    protect = subparsers.add_parser(
        "protect", help="select protectors and write the released graph"
    )
    protect.add_argument(
        "--dataset",
        default="arenas-email",
        help=f"named dataset ({', '.join(available_datasets())}) or ignored if --edge-list given",
    )
    protect.add_argument("--edge-list", help="path to an edge-list file to protect")
    protect.add_argument("--targets", type=int, default=10, help="number of random targets")
    protect.add_argument(
        "--budget",
        type=int,
        nargs="+",
        default=[20],
        help="protector deletion budget k; several values sweep the budgets "
        "from one shared-index session",
    )
    protect.add_argument(
        "--motif", default="triangle", choices=sorted(available_motifs())
    )
    protect.add_argument(
        "--method", default="SGB-Greedy", choices=sorted(method_names())
    )
    protect.add_argument(
        "--engine",
        default="coverage",
        choices=ENGINE_NAMES,
        help="marginal-gain engine: 'coverage' = array kernel (-R algorithms), "
        "'coverage-set' = hash-set reference state, 'recount' = naive recount",
    )
    protect.add_argument("--seed", type=int, default=0)
    protect.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan a multi-budget sweep out over this many workers",
    )
    protect.add_argument(
        "--parallel-mode",
        default="thread",
        choices=("thread", "process"),
        help="worker kind for --workers > 1 (process pickles the index once per worker)",
    )
    protect.add_argument(
        "--build-workers",
        type=int,
        default=1,
        help="fan the index build (per-target enumeration) out over this "
        "many worker processes; the index is bit-identical for every count",
    )
    protect.add_argument(
        "--index-file",
        help="cold-start the session from a snapshot written by build-index "
        "(skips dataset loading, target sampling and enumeration; "
        "--dataset/--edge-list/--targets/--motif are ignored)",
    )
    protect.add_argument(
        "--kernel",
        default="auto",
        choices=KERNEL_NAMES,
        help="coverage-state hot-loop kernel: 'auto' compiles/loads the "
        "native C kernel when possible and falls back to numpy; 'native' "
        "and 'numpy' force one side (bit-identical results either way)",
    )
    protect.add_argument("--output", help="write the released graph to this edge list")
    protect.add_argument(
        "--json",
        dest="json_path",
        help="write the full ProtectionResult(s) to this JSON file",
    )
    protect.add_argument(
        "--utility", action="store_true", help="also report the utility loss"
    )

    build_index = subparsers.add_parser(
        "build-index",
        help="enumerate the target-subgraph index once and save it as a "
        "snapshot for later cold starts",
    )
    build_index.add_argument(
        "--dataset",
        default="arenas-email",
        help=f"named dataset ({', '.join(available_datasets())}) or ignored if --edge-list given",
    )
    build_index.add_argument(
        "--edge-list", help="path to an edge-list file to index"
    )
    build_index.add_argument(
        "--targets", type=int, default=10, help="number of random targets"
    )
    build_index.add_argument(
        "--motif", default="triangle", choices=sorted(available_motifs())
    )
    build_index.add_argument(
        "--seed",
        type=int,
        default=0,
        help="target-sampling seed (use the same seed as the later protect "
        "run so both describe the same instance)",
    )
    build_index.add_argument(
        "--build-workers",
        type=int,
        default=1,
        help="fan the enumeration out over this many worker processes",
    )
    build_index.add_argument(
        "--output",
        required=True,
        help="snapshot file to write (conventionally *.tppsnap)",
    )

    apply_delta = subparsers.add_parser(
        "apply-delta",
        help="apply edge insertions/deletions to a saved index incrementally "
        "and write the updated snapshot (no re-enumeration of the world)",
    )
    apply_delta.add_argument(
        "--index-file",
        required=True,
        help="snapshot to update (written by build-index or a previous apply-delta)",
    )
    apply_delta.add_argument(
        "--delta-file",
        help="apply the operations of this delta snapshot (*.tppdelta); its "
        "parent content hash must match the index file",
    )
    apply_delta.add_argument(
        "--insert",
        nargs=2,
        action="append",
        default=[],
        metavar=("U", "V"),
        help="insert the edge (U, V); repeatable",
    )
    apply_delta.add_argument(
        "--delete",
        nargs=2,
        action="append",
        default=[],
        metavar=("U", "V"),
        help="delete the edge (U, V); repeatable (deletions apply before insertions)",
    )
    apply_delta.add_argument(
        "--constant",
        type=int,
        help="dissimilarity constant C of the updated problem (default: keep, "
        "auto-bumped if insertions raise the initial similarity above it)",
    )
    apply_delta.add_argument(
        "--output",
        required=True,
        help="snapshot file to write the updated index to",
    )
    apply_delta.add_argument(
        "--save-delta",
        help="also record the applied delta as a delta-snapshot file "
        "(conventionally *.tppdelta) tied to the input snapshot's content hash",
    )

    verify_index = subparsers.add_parser(
        "verify-index",
        help="validate snapshot / delta-snapshot files (hashes, format "
        "version) without constructing an index",
    )
    verify_index.add_argument(
        "files", nargs="+", help="snapshot (*.tppsnap) or delta (*.tppdelta) files"
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve protection queries over HTTP from a shared-index session "
        "(solve, health/stats, hot-reload and artifact endpoints)",
    )
    serve.add_argument(
        "--dataset",
        default="arenas-email",
        help=f"named dataset ({', '.join(available_datasets())}) or ignored if --edge-list given",
    )
    serve.add_argument("--edge-list", help="path to an edge-list file to serve")
    serve.add_argument(
        "--targets", type=int, default=10, help="number of random targets"
    )
    serve.add_argument(
        "--motif", default="triangle", choices=sorted(available_motifs())
    )
    serve.add_argument("--seed", type=int, default=0, help="target-sampling seed")
    serve.add_argument(
        "--index-file",
        help="cold-start the session from a snapshot (*.tppsnap) or session "
        "bundle (*.tppsess); --dataset/--edge-list/--targets/--motif are ignored",
    )
    serve.add_argument(
        "--build-workers",
        type=int,
        default=1,
        help="fan the index build out over this many worker processes",
    )
    serve.add_argument(
        "--kernel",
        default="auto",
        choices=KERNEL_NAMES,
        help="coverage-state hot-loop kernel for the served session "
        "('auto' / 'native' / 'numpy'; bit-identical results either way)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the targets across this many shard sub-sessions and "
        "serve them scatter-gather (defaults to $REPRO_SHARDS, else 1); "
        "sharded bundles (*.tppshards) always restore their own layout",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8035, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--artifact-dir",
        help="attach a content-hash artifact store at this directory "
        "(enables the /artifacts endpoints and hash-addressed /reload)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="bound on queued solves; beyond it new requests get 429",
    )
    serve.add_argument(
        "--solver-threads",
        type=int,
        default=4,
        help="executor width for concurrent solves",
    )
    serve.add_argument(
        "--follow-store",
        type=float,
        metavar="SECONDS",
        help="poll the artifact store's 'latest' pointer at this interval and "
        "converge on it (deltas apply incrementally, snapshots swap in)",
    )

    publish = subparsers.add_parser(
        "publish",
        help="verify snapshot / delta files and publish them content-hash-"
        "addressed, to a store directory or a running server",
    )
    publish.add_argument(
        "files", nargs="+", help="snapshot (*.tppsnap) or delta (*.tppdelta) files"
    )
    publish.add_argument(
        "--store",
        help="publish into this artifact-store directory (shared with "
        "'repro-tpp serve --artifact-dir')",
    )
    publish.add_argument(
        "--url",
        help="publish over HTTP to a running server (e.g. http://127.0.0.1:8035)",
    )
    publish.add_argument(
        "--set-latest",
        action="store_true",
        help="after publishing, point the store's 'latest' pointer at the "
        "last published artifact (what '--follow-store' replicas converge on)",
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures or tables"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENT_RUNNERS))
    experiment.add_argument("--scale", default="quick", choices=("quick", "paper"))
    experiment.add_argument(
        "--workers",
        type=int,
        default=1,
        help=f"fan-out for the sweep experiments ({', '.join(_PARALLEL_EXPERIMENTS)})",
    )
    experiment.add_argument(
        "--build-workers",
        type=int,
        default=1,
        help="fan each session's index build out over this many worker "
        f"processes ({', '.join(_PARALLEL_EXPERIMENTS)})",
    )
    experiment.add_argument("--json", help="also save the result as JSON to this path")

    return parser


def _format_result(result) -> str:
    if isinstance(result, SimilarityEvolution):
        return format_similarity_evolution(result)
    if isinstance(result, RuntimeComparison):
        return format_runtime_comparison(result)
    if isinstance(result, UtilityLossTable):
        return format_utility_loss_table(result)
    return str(result)


def _load_instance(args: argparse.Namespace):
    """Load the graph named by ``--edge-list``/``--dataset`` and sample targets."""
    if args.edge_list:
        graph = load_edge_list_dataset(args.edge_list)
    else:
        graph = load_dataset(args.dataset)
    targets = sample_random_targets(graph, args.targets, seed=args.seed)
    return graph, targets


def _command_protect(args: argparse.Namespace) -> int:
    if args.index_file:
        service = ProtectionService.from_snapshot(
            args.index_file, build_workers=args.build_workers, kernel=args.kernel
        )
        print(
            f"session cold-started from {args.index_file} "
            f"(motif {service.problem.motif.name}, "
            f"{len(service.targets)} targets, "
            f"{service.index.number_of_instances()} target subgraphs)"
        )
    else:
        graph, targets = _load_instance(args)
        service = ProtectionService(
            graph,
            targets,
            motif=args.motif,
            build_workers=args.build_workers,
            kernel=args.kernel,
        )
    requests = [
        ProtectionRequest(args.method, budget, engine=args.engine, seed=args.seed)
        for budget in args.budget
    ]
    results = service.solve_many(
        requests, workers=args.workers, mode=args.parallel_mode
    )

    problem = service.problem
    for result in results:
        print(result.summary())
        print(f"fully protected: {result.fully_protected}")

    if args.json_path:
        path = save_json(results[0] if len(results) == 1 else results, args.json_path)
        print(f"results saved to {path}")

    if (args.output or args.utility) and len(results) > 1:
        print(
            "note: --output/--utility use the largest-budget result of the sweep",
            file=sys.stderr,
        )
    best = max(results, key=lambda result: result.budget, default=None)
    if best is not None:
        released = best.released_graph(problem)
        if args.utility:
            # problem.graph materialises lazily on a cold-started session;
            # only the utility comparison actually needs the original graph
            report = compare_graphs(problem.graph, released, path_length_sample=100)
            print(report.summary())
            for metric, original, new, loss in report.as_rows():
                print(f"  {metric:>6}: {original:.4f} -> {new:.4f} (loss {100 * loss:.2f}%)")
        if args.output:
            write_edge_list(released, args.output, header=f"released by {best.algorithm}")
            print(f"released graph written to {args.output}")
    return 0


def _command_build_index(args: argparse.Namespace) -> int:
    graph, targets = _load_instance(args)
    problem = TPPProblem(graph, targets, motif=args.motif)
    stopwatch_start = time.perf_counter()
    path = problem.save_index(args.output, build_workers=args.build_workers)
    elapsed = time.perf_counter() - stopwatch_start
    index = problem.build_index()  # cached — returns the just-built index
    size = path.stat().st_size
    print(
        f"indexed {graph.number_of_nodes()} nodes / {graph.number_of_edges()} "
        f"edges, {len(targets)} targets, motif {args.motif}: "
        f"{index.number_of_instances()} target subgraphs, "
        f"{index.number_of_candidate_edges()} candidate edges"
    )
    print(
        f"snapshot written to {path} ({size} bytes, built+saved in {elapsed:.3f}s); "
        f"serve it with: repro-tpp protect --index-file {path}"
    )
    return 0


def _parse_delta_node(token: str, indexed):
    """Parse a CLI node token with the edge-list loader's convention.

    Integer-looking tokens become ``int`` (the SNAP / KONECT convention the
    loaders apply), except when the graph actually holds the *string* form
    of the label — then the live labels win, so deltas address the same
    nodes the file did.
    """
    try:
        as_int = int(token)
    except ValueError:
        return token
    if not indexed.has_node(as_int) and indexed.has_node(token):
        return token
    return as_int


def _command_apply_delta(args: argparse.Namespace) -> int:
    from repro.motifs.updates import EdgeDelta
    from repro.persistence import load_delta_snapshot, save_delta_snapshot

    if args.delta_file and (args.insert or args.delete):
        print(
            "apply-delta: use either --delta-file or --insert/--delete, not both",
            file=sys.stderr,
        )
        return 2
    if not args.delta_file and not args.insert and not args.delete:
        print(
            "apply-delta: nothing to apply — pass --delta-file or at least "
            "one --insert/--delete",
            file=sys.stderr,
        )
        return 2

    from repro.exceptions import DeltaError, PersistenceError

    try:
        problem = TPPProblem.from_snapshot(args.index_file)
        index = problem.build_index()  # restored — no enumeration runs
        if args.delta_file:
            # verifies the parent content hash before anything is touched
            delta = load_delta_snapshot(args.delta_file).delta_for(index)
        else:
            indexed = index.indexed_graph
            parse = lambda pair: tuple(
                _parse_delta_node(tok, indexed) for tok in pair
            )
            delta = EdgeDelta.from_edges(
                insert=[parse(pair) for pair in args.insert],
                delete=[parse(pair) for pair in args.delete],
            )

        start = time.perf_counter()
        updated, outcome = problem.apply_delta(delta, constant=args.constant)
        elapsed = time.perf_counter() - start
    except (DeltaError, PersistenceError) as error:
        print(f"apply-delta: {error}", file=sys.stderr)
        return 1
    from repro.persistence import save_snapshot

    path = save_snapshot(args.output, outcome.index, updated.constant)
    print(
        f"applied {outcome.edges_inserted} insert(s) / "
        f"{outcome.edges_deleted} delete(s) in {elapsed:.3f}s: "
        f"{outcome.instances_added} target subgraph(s) created, "
        f"{outcome.instances_removed} destroyed, "
        f"{len(outcome.changed_targets)} of {len(index.targets)} targets "
        f"changed ({outcome.targets_reenumerated} re-enumerated)"
    )
    print(f"updated snapshot written to {path} ({path.stat().st_size} bytes)")
    if args.save_delta:
        delta_path = save_delta_snapshot(
            args.save_delta, delta, index, outcome.index
        )
        print(f"delta recorded to {delta_path} ({delta_path.stat().st_size} bytes)")
    return 0


def _command_verify_index(args: argparse.Namespace) -> int:
    from repro.exceptions import PersistenceError
    from repro.persistence import verify_snapshot_file

    failures = 0
    for file in args.files:
        try:
            info = verify_snapshot_file(file)
        except PersistenceError as error:
            failures += 1
            print(f"{file}: INVALID — {error}", file=sys.stderr)
            continue
        counts = ", ".join(f"{k}={v}" for k, v in info["counts"].items())
        if info["kind"] == "snapshot":
            print(
                f"{file}: OK snapshot v{info['format_version']} "
                f"motif={info['motif'].get('name')} ({counts}) "
                f"content={info['content_hash'][:12]}…"
            )
        else:
            print(
                f"{file}: OK delta v{info['format_version']} ({counts}) "
                f"parent={info['parent_content_hash'][:12]}… "
                f"result={info['result_content_hash'][:12]}…"
            )
    return 1 if failures else 0


def _bundle_is_sharded(path: str) -> bool:
    """Whether a zip bundle's manifest declares a sharded session."""
    import json
    import zipfile

    try:
        with zipfile.ZipFile(path) as archive:
            manifest = json.loads(archive.read("manifest.json").decode("utf-8"))
    except (KeyError, ValueError, OSError):
        return False
    return isinstance(manifest, dict) and manifest.get("kind") == "sharded-session"


def _serve_session(args: argparse.Namespace):
    """Open the session ``repro-tpp serve`` will put behind HTTP."""
    import zipfile

    shards = args.shards if args.shards is not None else shards_from_env()
    if args.index_file:
        if zipfile.is_zipfile(args.index_file):
            if _bundle_is_sharded(args.index_file):
                sharded = ShardedProtectionService.from_session(
                    args.index_file,
                    build_workers=args.build_workers,
                    kernel=args.kernel,
                )
                print(
                    f"sharded session cold-started from bundle "
                    f"{args.index_file} ({sharded.shard_count} shard(s), "
                    f"{len(sharded.targets)} targets)"
                )
                return sharded
            service = ProtectionService.from_session(
                args.index_file,
                build_workers=args.build_workers,
                kernel=args.kernel,
            )
            print(
                f"session cold-started from bundle {args.index_file} "
                f"({len(service.cached_subset_sessions())} subset "
                "sub-session(s) restored)"
            )
        else:
            service = ProtectionService.from_snapshot(
                args.index_file,
                build_workers=args.build_workers,
                kernel=args.kernel,
            )
            print(f"session cold-started from {args.index_file}")
        if shards > 1:
            # a plain snapshot holds one combined index; dealing its
            # targets into shards re-enumerates each shard's sub-index
            print(
                f"re-sharding the restored session into {shards} shard(s) "
                "(per-shard indexes are rebuilt; serve a *.tppshards "
                "bundle to cold-start a sharded layout directly)"
            )
            sharded = ShardedProtectionService(
                service.problem,
                shards=shards,
                build_workers=args.build_workers,
                kernel=args.kernel,
            )
            return sharded
        return service
    graph, targets = _load_instance(args)
    if shards > 1:
        sharded = ShardedProtectionService(
            graph,
            targets,
            motif=args.motif,
            shards=shards,
            build_workers=args.build_workers,
            kernel=args.kernel,
        )
        print(
            f"sharded session built: {graph.number_of_nodes()} nodes, "
            f"{len(targets)} targets over {sharded.shard_count} shard(s), "
            f"motif {args.motif} ({sharded.build_seconds:.3f}s)"
        )
        return sharded
    service = ProtectionService(
        graph,
        targets,
        motif=args.motif,
        build_workers=args.build_workers,
        kernel=args.kernel,
    )
    print(
        f"session built: {graph.number_of_nodes()} nodes, "
        f"{len(targets)} targets, motif {args.motif} "
        f"({service.build_seconds:.3f}s)"
    )
    return service


def _command_serve(args: argparse.Namespace) -> int:
    from repro.server import ArtifactStore, ProtectionServer, serve_in_background

    service = _serve_session(args)
    store = ArtifactStore(args.artifact_dir) if args.artifact_dir else None
    server = ProtectionServer(
        service,
        store=store,
        max_pending=args.max_pending,
        solver_threads=args.solver_threads,
        poll_interval=args.follow_store,
    )
    handle = serve_in_background(server, host=args.host, port=args.port)
    print(
        f"serving {len(service.targets)} targets at {handle.url} "
        f"(content hash {server.content_hash()[:12]}…); endpoints: "
        "POST /solve, GET /healthz, GET /stats, POST /reload"
        + (", /artifacts" if store is not None else "")
    )
    print("Ctrl-C stops the server (in-flight queries drain first)")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("draining...", file=sys.stderr)
        handle.stop()
        stats = server.stats()
        print(
            f"served {stats['queries_served']} queries "
            f"({stats['coalesced_hits']} coalesced, "
            f"{stats['rejected']} rejected, {stats['reloads']} reloads)"
        )
    return 0


def _command_publish(args: argparse.Namespace) -> int:
    from repro.exceptions import PersistenceError, ServerError

    if bool(args.store) == bool(args.url):
        print(
            "publish: pass exactly one destination — --store DIR or --url URL",
            file=sys.stderr,
        )
        return 2
    failures = 0
    published: List[dict] = []
    if args.store:
        from repro.server import ArtifactStore

        store = ArtifactStore(args.store)
        for file in args.files:
            try:
                record = store.publish_file(file)
            except (PersistenceError, OSError) as error:
                failures += 1
                print(f"{file}: REFUSED — {error}", file=sys.stderr)
                continue
            published.append(record.to_dict())
            print(
                f"{file}: published {record.kind} "
                f"{record.content_hash[:12]}… ({record.size} bytes)"
            )
        if args.set_latest and published:
            latest = store.set_latest(str(published[-1]["content_hash"]))
            print(f"latest -> {latest.content_hash[:12]}…")
    else:
        from repro.server import ServingClient

        client = ServingClient(args.url)
        for file in args.files:
            try:
                record = client.publish_file(file)
            except (ServerError, OSError) as error:
                failures += 1
                print(f"{file}: REFUSED — {error}", file=sys.stderr)
                continue
            published.append(dict(record))
            print(
                f"{file}: published {record['kind']} "
                f"{str(record['content_hash'])[:12]}… to {client.base_url}"
            )
        if args.set_latest and published:
            latest_record = client.set_latest(str(published[-1]["content_hash"]))
            print(f"latest -> {str(latest_record['content_hash'])[:12]}…")
    return 1 if failures else 0


def _command_experiment(args: argparse.Namespace) -> int:
    runner = EXPERIMENT_RUNNERS[args.name]
    if args.name in _PARALLEL_EXPERIMENTS and (
        args.workers > 1 or args.build_workers > 1
    ):
        results = runner(
            scale=args.scale,
            workers=args.workers,
            build_workers=args.build_workers,
        )
    else:
        if args.workers > 1 or args.build_workers > 1:
            print(
                f"note: --workers/--build-workers only apply to "
                f"{', '.join(_PARALLEL_EXPERIMENTS)}; running {args.name} serially",
                file=sys.stderr,
            )
        results = runner(scale=args.scale)
    if not isinstance(results, list):
        results = [results]
    for result in results:
        print(_format_result(result))
        print()
    if args.json:
        save_json(results if len(results) > 1 else results[0], args.json)
        print(f"results saved to {args.json}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "protect":
        return _command_protect(args)
    if args.command == "build-index":
        return _command_build_index(args)
    if args.command == "apply-delta":
        return _command_apply_delta(args)
    if args.command == "verify-index":
        return _command_verify_index(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "publish":
        return _command_publish(args)
    if args.command == "experiment":
        return _command_experiment(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
