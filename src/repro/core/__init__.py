"""TPP core: problem model, greedy algorithms, budgets, baselines, verification."""

from repro.core.baselines import random_deletion, random_target_subgraph_deletion
from repro.core.budget import (
    BudgetDivision,
    BudgetUnderAllocationWarning,
    degree_product_budget_division,
    make_budget_division,
    target_subgraph_budget_division,
    uniform_budget_division,
    validate_budget_division,
)
from repro.core.ct import ct_greedy
from repro.core.dissimilarity import (
    LocalIndexDissimilarity,
    SubgraphDissimilarity,
    apply_link_addition,
    apply_link_switching,
)
from repro.core.engines import (
    CoverageEngine,
    EngineLike,
    MarginalGainEngine,
    RecountEngine,
    make_engine,
)
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.node_protection import (
    NodeProtectionResult,
    node_targets,
    protect_target_nodes,
)
from repro.core.optimal import greedy_optimality_gap, optimal_protectors
from repro.core.refine import sgb_greedy_bb
from repro.core.sgb import sgb_greedy
from repro.core.verification import (
    critical_budget,
    is_fully_protected,
    protection_ratio,
    verify_result,
)
from repro.core.wt import wt_greedy

__all__ = [
    "TPPProblem",
    "ProtectionResult",
    "sgb_greedy",
    "sgb_greedy_bb",
    "ct_greedy",
    "wt_greedy",
    "random_deletion",
    "random_target_subgraph_deletion",
    "BudgetDivision",
    "BudgetUnderAllocationWarning",
    "target_subgraph_budget_division",
    "degree_product_budget_division",
    "uniform_budget_division",
    "make_budget_division",
    "validate_budget_division",
    "MarginalGainEngine",
    "CoverageEngine",
    "RecountEngine",
    "EngineLike",
    "make_engine",
    "SubgraphDissimilarity",
    "LocalIndexDissimilarity",
    "apply_link_addition",
    "apply_link_switching",
    "is_fully_protected",
    "verify_result",
    "protection_ratio",
    "critical_budget",
    "NodeProtectionResult",
    "node_targets",
    "protect_target_nodes",
    "optimal_protectors",
    "greedy_optimality_gap",
]
