"""SGB-Greedy: the Single-Global-Budget greedy protector selection.

Algorithm 1 of the paper.  All targets share one deletion budget ``k``; at
every step the edge breaking the largest number of still-alive target
subgraphs (over *all* targets) is deleted.  Because the dissimilarity is
monotone and submodular (Lemmas 1–2), the greedy selection is a ``1 - 1/e``
approximation of the optimal protector set (Theorem 3).

Three evaluation strategies are available (see :mod:`repro.core.engines`):

* ``engine="recount"`` reproduces the paper's non-scalable SGB-Greedy;
* ``engine="coverage"`` is the scalable SGB-Greedy-R of Lemma 5, and by
  default runs the *lazy* selection: the array kernel maintains exact
  per-edge live-gain counters, so the maximum-gain edge pops straight off a
  heap instead of being found by a full candidate sweep.  This is CELF taken
  to its limit — with exact incremental gains no re-evaluation is ever
  needed — and it selects the identical protector sequence as the plain
  sweep (tie-breaking included);
* ``engine="coverage-set"`` is the original hash-set implementation, kept as
  the reference; its lazy mode uses the classic CELF stale-upper-bound heap.

Pass ``lazy=False`` to force the full evaluation sweep on any engine.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.engines import CoverageEngine, EngineLike, MarginalGainEngine, make_engine
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.selection import Stopwatch, argmax_edge, edge_sort_key
from repro.exceptions import BudgetError, EngineError
from repro.graphs.graph import Edge

__all__ = ["sgb_greedy"]


def sgb_greedy(
    problem: TPPProblem,
    budget: int,
    engine: EngineLike = "coverage",
    lazy: Optional[bool] = None,
) -> ProtectionResult:
    """Select up to ``budget`` protectors with the single-global-budget greedy.

    Parameters
    ----------
    problem:
        The TPP instance.
    budget:
        Maximum number of protector deletions ``k``.
    engine:
        ``"coverage"`` (scalable, SGB-Greedy-R), ``"coverage-set"`` (the
        hash-set reference implementation), ``"recount"`` (naive,
        SGB-Greedy), or an already-constructed
        :class:`~repro.core.engines.MarginalGainEngine` (the session API
        passes engines built on a copy of its pristine coverage state).
    lazy:
        Use lazy (CELF-style) evaluation instead of a full candidate sweep
        per step.  Defaults to ``True`` on the coverage engines and ``False``
        on the recount engine (which does not support it).  Produces the same
        protector selection as the plain sweep (identical tie-breaking on the
        array kernel, identical up to ties on the set state); typically much
        faster on large graphs.

    Returns
    -------
    ProtectionResult
        Selected protectors, similarity trace and runtime.  The selection
        stops early if every remaining candidate has zero gain (either all
        targets are fully protected or no useful edge remains).
    """
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    stopwatch = Stopwatch()
    gain_engine = make_engine(problem, engine)
    algorithm = (
        "SGB-Greedy-R" if isinstance(gain_engine, CoverageEngine) else "SGB-Greedy"
    )
    if lazy is None:
        lazy = isinstance(gain_engine, CoverageEngine)
    if lazy and not isinstance(gain_engine, CoverageEngine):
        raise EngineError("lazy evaluation requires the coverage engine")

    protectors: List[Edge] = []
    trace: List[int] = [gain_engine.total_similarity()]

    if lazy and gain_engine.supports_fast_top:
        # the kernel's heap holds *exact* live gains: pop, commit, repeat
        while len(protectors) < budget:
            best = gain_engine.top_gain_edge()
            if best is None:
                break
            edge, _ = best
            gain_engine.commit(edge)
            protectors.append(edge)
            trace.append(gain_engine.total_similarity())
    elif lazy:
        protectors, trace = _celf_selection(gain_engine, budget, trace)
    else:
        while len(protectors) < budget:
            best = argmax_edge(gain_engine.candidate_edges(), gain_engine.total_gain)
            if best is None or best[1] <= 0:
                break
            edge, _ = best
            gain_engine.commit(edge)
            protectors.append(edge)
            trace.append(gain_engine.total_similarity())

    return ProtectionResult(
        algorithm=algorithm + ("+lazy" if lazy else ""),
        motif=problem.motif.name,
        budget=budget,
        protectors=tuple(protectors),
        similarity_trace=tuple(trace),
        initial_similarity=problem.initial_similarity(),
        runtime_seconds=stopwatch.elapsed(),
        extra={"engine": gain_engine.name, "lazy": lazy},
    )


def _celf_selection(
    engine: MarginalGainEngine, budget: int, trace: List[int]
) -> Tuple[List[Edge], List[int]]:
    """Classic CELF lazy greedy over stale upper bounds.

    Used for engines without exact incremental counters (the hash-set
    reference state).  Maintains a max-heap of (stale) upper bounds on each
    candidate's gain; submodularity guarantees a candidate whose refreshed
    gain still tops the heap is the true argmax, so most candidates are never
    re-evaluated.
    """
    protectors: List[Edge] = []
    heap = []
    # reprolint: disable=R1-set-iteration(heap entries carry the total key (-gain, edge_sort_key, edge), so pop order is independent of push order)
    for edge in engine.candidate_edges():
        gain = engine.total_gain(edge)
        if gain > 0:
            # negative gain for max-heap behaviour; round counter marks freshness
            heapq.heappush(heap, (-gain, edge_sort_key(edge), edge, 0))

    current_round = 0
    while len(protectors) < budget and heap:
        neg_gain, _, edge, evaluated_round = heapq.heappop(heap)
        if evaluated_round == current_round:
            if -neg_gain <= 0:
                break
            engine.commit(edge)
            protectors.append(edge)
            trace.append(engine.total_similarity())
            current_round += 1
        else:
            refreshed = engine.total_gain(edge)
            if refreshed > 0:
                heapq.heappush(
                    heap, (-refreshed, edge_sort_key(edge), edge, current_round)
                )
    return protectors, trace
