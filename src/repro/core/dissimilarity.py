"""Dissimilarity functions.

The paper's objective is the subgraph-pattern dissimilarity
``f(P, T) = C - Σ_t s(P, t)`` which is monotone and submodular
(Lemmas 1–4) and therefore admits greedy guarantees.  Section VI-D shows
that swapping the subgraph count for the classic local similarity indices
(Jaccard, Salton, ...) breaks monotonicity, and that link *addition* and
link *switching* perturbations break it as well.

This module provides both families so the counter-examples from the paper
can be reproduced and tested:

* :class:`SubgraphDissimilarity` — the paper's objective (delegates to the
  motif machinery), and
* :class:`LocalIndexDissimilarity` — ``f(P, T) = C - Σ_t index(u, v)`` for
  any :mod:`repro.prediction` local index; *not* monotone in general.

Plus the two alternative perturbation mechanisms discussed (and rejected) by
the paper: :func:`apply_link_addition` and :func:`apply_link_switching`.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Sequence, Tuple, Union

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.motifs.base import MotifPattern, coerce_motif
from repro.motifs.similarity import total_similarity

__all__ = [
    "SubgraphDissimilarity",
    "LocalIndexDissimilarity",
    "apply_link_addition",
    "apply_link_switching",
]

#: A local similarity index: callable (graph, u, v) -> float.
LocalIndex = Callable[[Graph, object, object], float]


class SubgraphDissimilarity:
    """The paper's dissimilarity ``f(P, T) = C - Σ_t s(P, t)``.

    Instances are evaluated on *graphs* (the phase-1 graph minus whatever
    protectors the caller removed), which keeps the class independent of how
    the protector set was chosen.
    """

    def __init__(
        self,
        targets: Sequence[Edge],
        motif: Union[str, MotifPattern],
        constant: int,
    ) -> None:
        self._targets = tuple(canonical_edge(*target) for target in targets)
        self._motif = coerce_motif(motif)
        self._constant = constant

    @property
    def constant(self) -> int:
        """The constant ``C``."""
        return self._constant

    def similarity(self, graph: Graph) -> int:
        """Return ``s(P, T)`` evaluated on ``graph``."""
        return total_similarity(graph, self._targets, self._motif)

    def __call__(self, graph: Graph) -> float:
        """Return ``f(P, T) = C - s(P, T)`` evaluated on ``graph``."""
        return self._constant - self.similarity(graph)

    def marginal_gain(self, graph: Graph, edge: Edge) -> float:
        """Return ``f`` after deleting ``edge`` minus ``f`` on ``graph``."""
        perturbed = graph.without_edges([edge])
        return self(perturbed) - self(graph)


class LocalIndexDissimilarity:
    """Dissimilarity built from a classic local similarity index.

    ``f(P, T) = C - Σ_{(u,v) in T} index(G', u, v)`` where ``G'`` is the
    released graph.  The paper proves (by counter-example, §VI-D) that this
    family is not monotone under link deletion for the Jaccard, Salton,
    Sørensen, Hub-Promoted, Hub-Depressed, LHN, Adamic-Adar and Resource
    Allocation indices, hence the greedy guarantees do not transfer.  The
    class exists so those counter-examples are executable.
    """

    def __init__(
        self,
        targets: Sequence[Edge],
        index: LocalIndex,
        constant: float = 0.0,
    ) -> None:
        self._targets = tuple(canonical_edge(*target) for target in targets)
        self._index = index
        self._constant = constant

    def similarity(self, graph: Graph) -> float:
        """Return the summed index value over all targets."""
        return sum(self._index(graph, u, v) for u, v in self._targets)

    def __call__(self, graph: Graph) -> float:
        """Return ``C - Σ_t index(t)`` evaluated on ``graph``."""
        return self._constant - self.similarity(graph)

    def marginal_gain(self, graph: Graph, edge: Edge) -> float:
        """Return the dissimilarity change caused by deleting ``edge``."""
        perturbed = graph.without_edges([edge])
        return self(perturbed) - self(graph)


def apply_link_addition(
    graph: Graph,
    count: int,
    seed: Union[int, random.Random, None] = None,
) -> Tuple[Graph, List[Edge]]:
    """Add ``count`` random links between currently unconnected node pairs.

    Returns the perturbed copy and the list of added edges.  The paper shows
    link addition can never break existing target subgraphs, so the subgraph
    dissimilarity is non-increasing under it — this helper exists to make
    that argument testable, and as a building block of link switching.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    nodes = sorted(graph.nodes(), key=str)
    perturbed = graph.copy()
    added: List[Edge] = []
    attempts = 0
    limit = 100 * max(count, 1)
    while len(added) < count and attempts < limit and len(nodes) >= 2:
        attempts += 1
        u, v = rng.sample(nodes, 2)
        if not perturbed.has_edge(u, v):
            perturbed.add_edge(u, v)
            added.append(canonical_edge(u, v))
    return perturbed, added


def apply_link_switching(
    graph: Graph,
    count: int,
    seed: Union[int, random.Random, None] = None,
    protected_edges: Iterable[Edge] = (),
) -> Tuple[Graph, List[Edge], List[Edge]]:
    """Randomly delete ``count`` links and add ``count`` new ones (switching).

    This is the structural perturbation mechanism of the related work the
    paper discusses in §VI-D: it gives no monotonicity guarantee for the
    dissimilarity.  ``protected_edges`` (e.g. already-selected protectors)
    are never deleted.  Returns ``(perturbed_graph, deleted, added)``.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    protected = {canonical_edge(*edge) for edge in protected_edges}
    deletable = [edge for edge in graph.edges() if edge not in protected]
    rng.shuffle(deletable)
    to_delete = deletable[: min(count, len(deletable))]
    perturbed = graph.without_edges(to_delete)
    perturbed, added = apply_link_addition(perturbed, len(to_delete), seed=rng)
    return perturbed, list(to_delete), added
