"""SGB-Greedy+BB: branch-and-bound refinement of the greedy tail.

The ``1 - 1/e`` guarantee of SGB-Greedy (Theorem 3) leaves room at the end
of the selection: the last few greedy picks are the ones most likely to be
beaten by a coordinated exchange, because early picks are near-forced while
late picks choose among many near-tied candidates.  This module keeps the
greedy prefix (cheap, near-optimal) and re-solves only the final ``depth``
picks exactly-ish with a depth-first branch and bound over the coverage
state:

* **branching** — at each node the children are the ``shortlist`` best
  live candidates by current gain (``top_gain_edges``), applied to a
  ``copy()`` of the node's state;
* **bounding** — by submodularity the marginal gain of any future pick is
  at most its *current* individual gain, so ``broken so far + sum of the
  top r current gains`` (``r`` = picks left) upper-bounds every completion
  of the node.  Nodes whose bound cannot beat the incumbent are pruned;
* **incumbent** — the greedy suffix itself, which is always the chain of
  first children, so the refinement can only match or improve it.  Only a
  *strictly* better suffix replaces the incumbent, which keeps the method
  deterministic and never worse than SGB-Greedy.

The search runs entirely on array-kernel coverage states (cheap ``copy()``,
heap-backed ``top_gain_edges``); the chosen sequence is then committed into
the caller's engine so the similarity trace is produced by the same
evaluation strategy the caller asked for.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.engines import CoverageEngine, EngineLike, make_engine
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.selection import Stopwatch
from repro.exceptions import BudgetError
from repro.graphs.graph import Edge
from repro.motifs.enumeration import CoverageState

__all__ = ["sgb_greedy_bb"]

#: Default number of trailing greedy picks the branch and bound re-solves.
DEFAULT_DEPTH = 3

#: Default branching factor (candidates considered per search node).
DEFAULT_SHORTLIST = 6


def sgb_greedy_bb(
    problem: TPPProblem,
    budget: int,
    engine: EngineLike = "coverage",
    depth: int = DEFAULT_DEPTH,
    shortlist: int = DEFAULT_SHORTLIST,
) -> ProtectionResult:
    """Select protectors with SGB-Greedy, then refine the last picks by B&B.

    Parameters
    ----------
    problem:
        The TPP instance.
    budget:
        Maximum number of protector deletions ``k``.
    engine:
        Engine name or instance; the refined sequence is committed into this
        engine to produce the trace.  The branch-and-bound search itself
        always runs on array-kernel coverage states (every engine is
        answer-identical, so the search result is valid for all of them).
    depth:
        How many trailing greedy picks to re-solve (default 3).  ``0``
        degenerates to plain SGB-Greedy.
    shortlist:
        Branching factor: how many of the best live candidates each search
        node expands (default 6).  The greedy pick is always among them, so
        any value ``>= 1`` preserves the never-worse guarantee.

    Returns
    -------
    ProtectionResult
        ``extra`` records the search effort (``bb_nodes``), whether the
        bound search actually changed the greedy tail (``refined``), and the
        search parameters.  The result is deterministic and its final
        similarity is never higher than plain SGB-Greedy's on the same
        problem, budget and engine.
    """
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    depth = max(0, depth)
    shortlist = max(1, shortlist)
    stopwatch = Stopwatch()

    gain_engine = make_engine(problem, engine)
    algorithm = (
        "SGB-Greedy-R+BB" if isinstance(gain_engine, CoverageEngine) else "SGB-Greedy+BB"
    )

    origin = _search_state(problem, gain_engine)

    # phase 1: plain greedy on a throwaway copy of the search state
    greedy: List[Edge] = []
    work = origin.copy()
    while len(greedy) < budget:
        best = work.top_gain_edge()
        if best is None:
            break
        edge, _ = best
        work.delete_edge(edge)
        greedy.append(edge)

    # phase 2: branch and bound over the last ``depth`` picks.  Skipped when
    # greedy stopped early — then the greedy state ran out of positive-gain
    # candidates, i.e. the targets are as protected as this budget allows.
    chosen = list(greedy)
    nodes = 0
    improved = False
    if depth > 0 and budget > 0 and len(greedy) == budget:
        tail = min(depth, len(greedy))
        prefix = greedy[: len(greedy) - tail]
        suffix, nodes, improved = _refine_tail(
            origin, prefix, greedy[len(greedy) - tail :], shortlist
        )
        chosen = prefix + suffix

    # commit the refined sequence into the caller's engine for the trace
    trace: List[int] = [gain_engine.total_similarity()]
    for edge in chosen:
        gain_engine.commit(edge)
        trace.append(gain_engine.total_similarity())

    return ProtectionResult(
        algorithm=algorithm,
        motif=problem.motif.name,
        budget=budget,
        protectors=tuple(chosen),
        similarity_trace=tuple(trace),
        initial_similarity=problem.initial_similarity(),
        runtime_seconds=stopwatch.elapsed(),
        extra={
            "engine": gain_engine.name,
            "depth": depth,
            "shortlist": shortlist,
            "bb_nodes": nodes,
            "refined": improved,
        },
    )


def _search_state(problem: TPPProblem, gain_engine) -> CoverageState:
    """Return an array coverage state mirroring the engine's current graph.

    An injected coverage engine contributes its already-committed deletions
    (the session API passes engines built on a copy of its pristine state);
    its own state is reused via ``copy()`` when it is already the array
    kind, so no re-enumeration happens on the hot path.
    """
    if isinstance(gain_engine, CoverageEngine):
        state = gain_engine.coverage_state
        if isinstance(state, CoverageState):
            return state.copy()
        fresh = problem.build_index().new_state()
        fresh.delete_edges(state.deleted_edges)
        return fresh
    return problem.build_index().new_state()


def _refine_tail(
    origin: CoverageState,
    prefix: List[Edge],
    greedy_suffix: List[Edge],
    shortlist: int,
) -> Tuple[List[Edge], int, bool]:
    """Branch-and-bound search for the best ``len(greedy_suffix)`` picks
    after ``prefix``; returns ``(best suffix, nodes explored, improved)``.
    """
    root = origin.copy()
    root.delete_edges(prefix)
    root_similarity = root.total_similarity()

    # incumbent: the greedy suffix (always reachable as the chain of first
    # children, so the search result can never be worse)
    incumbent_state = root.copy()
    incumbent_state.delete_edges(greedy_suffix)
    best_broken = root_similarity - incumbent_state.total_similarity()
    best_suffix: Optional[List[Edge]] = None

    tail = len(greedy_suffix)
    nodes = 0
    # DFS stack of (state, chosen-so-far); depth is bounded by ``tail``
    stack: List[Tuple[CoverageState, List[Edge]]] = [(root, [])]
    while stack:
        state, picked = stack.pop()
        nodes += 1
        broken = root_similarity - state.total_similarity()
        remaining = tail - len(picked)
        if remaining == 0:
            if broken > best_broken:
                best_broken = broken
                best_suffix = picked
            continue
        candidates = state.top_gain_edges(max(shortlist, remaining))
        if not candidates:
            # no positive-gain edge left: this branch is complete early
            if broken > best_broken:
                best_broken = broken
                best_suffix = picked
            continue
        # submodular bound: no completion can break more than the sum of
        # the ``remaining`` best current individual gains
        bound = broken + sum(gain for _, gain in candidates[:remaining])
        if bound <= best_broken:
            continue
        # push in reverse so the best candidate (the greedy pick) is
        # explored first — it establishes tight incumbents early
        for edge, _ in reversed(candidates[:shortlist]):
            child = state.copy()
            child.delete_edge(edge)
            stack.append((child, picked + [edge]))

    if best_suffix is None:
        return list(greedy_suffix), nodes, False
    return best_suffix, nodes, True
