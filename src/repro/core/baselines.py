"""Baseline protector selections from the paper's evaluation.

The paper compares its greedy algorithms against two randomized baselines:

* **RD** — delete ``k`` links chosen uniformly at random from the whole edge
  set of the phase-1 graph, and
* **RDT** — delete ``k`` links chosen uniformly at random from the links
  participating in target subgraphs (the same candidate set the ``-R``
  algorithms restrict themselves to).

Both are implemented on top of the coverage index so their similarity traces
are produced exactly like the greedy algorithms'.  Candidate pools come from
the index in deterministic ``edge_sort_key`` order (no per-edge gain rescans
and no dependence on set iteration order), so a fixed seed reproduces the
same deletions across processes and hash seeds.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro.core.model import ProtectionResult, TPPProblem
from repro.core.selection import Stopwatch, edge_sort_key
from repro.exceptions import BudgetError
from repro.graphs.graph import Edge
from repro.motifs.enumeration import CoverageState, SetCoverageState

__all__ = ["random_deletion", "random_target_subgraph_deletion"]

RandomLike = Union[int, random.Random, None]

#: A prepared coverage state the baseline traces deletions on (the session
#: API passes a copy of its pristine prototype; ``None`` builds a fresh one).
StateLike = Union[CoverageState, SetCoverageState, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _run_random_baseline(
    problem: TPPProblem,
    budget: int,
    candidates: List[Edge],
    algorithm: str,
    seed: RandomLike,
    deterministic_order: bool = False,
    state: StateLike = None,
) -> ProtectionResult:
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    stopwatch = Stopwatch()
    rng = _rng(seed)
    if state is None:
        state = problem.build_index().new_state()

    pool = list(candidates)
    if not deterministic_order:
        pool.sort(key=edge_sort_key)
    rng.shuffle(pool)
    chosen = pool[: min(budget, len(pool))]

    trace = [state.total_similarity()]
    for edge in chosen:
        state.delete_edge(edge)
        trace.append(state.total_similarity())

    return ProtectionResult(
        algorithm=algorithm,
        motif=problem.motif.name,
        budget=budget,
        protectors=tuple(chosen),
        similarity_trace=tuple(trace),
        initial_similarity=problem.initial_similarity(),
        runtime_seconds=stopwatch.elapsed(),
        extra={"seed": seed if not isinstance(seed, random.Random) else None},
    )


def random_deletion(
    problem: TPPProblem, budget: int, seed: RandomLike = None, state: StateLike = None
) -> ProtectionResult:
    """RD baseline: delete ``budget`` edges sampled uniformly from the graph.

    Target links are already absent (phase 1), so the sample is drawn from
    the phase-1 edge set.  ``state`` optionally supplies a prepared coverage
    state to trace the deletions on (avoids rebuilding one from the index).
    """
    candidates = list(problem.phase1_graph.edges())
    return _run_random_baseline(problem, budget, candidates, "RD", seed, state=state)


def random_target_subgraph_deletion(
    problem: TPPProblem, budget: int, seed: RandomLike = None, state: StateLike = None
) -> ProtectionResult:
    """RDT baseline: delete ``budget`` edges sampled from target subgraphs.

    The candidate pool is the union of all edges participating in at least
    one target subgraph — taken from the index in its deterministic
    ``edge_sort_key`` order, so no re-sort (and no hash-order hazard) is
    needed.  If the pool is smaller than the budget every pool edge is
    deleted.
    """
    candidates = problem.build_index().candidate_edge_list()
    return _run_random_baseline(
        problem, budget, candidates, "RDT", seed, deterministic_order=True, state=state
    )
