"""Budget division strategies for the Multi-Local-Budget TPP problem (MLBT).

Given a global budget ``k`` and the target set ``T``, a budget division
produces the sub-budget vector ``K = {k_t}`` with ``sum_t k_t <= k``.  The
paper studies two strategies:

* **TBD** — target-subgraph-based division: ``k_t`` proportional to the
  number of target subgraphs ``|W_t|`` of the target, and
* **DBD** — degree-product-based division: ``k_t`` proportional to
  ``d_u * d_v`` for the target ``t = (u, v)``.

Both honour the constraint ``k_t <= |W_t|`` (spending more than ``|W_t|``
deletions on one target can never help it further), with the capped surplus
redistributed to targets that can still absorb budget.  A uniform division is
provided as an additional baseline.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Mapping, Sequence, Union

from repro.core.model import TPPProblem
from repro.exceptions import BudgetError
from repro.graphs.graph import Edge, canonical_edge

__all__ = [
    "BudgetDivision",
    "BudgetUnderAllocationWarning",
    "proportional_allocation",
    "target_subgraph_budget_division",
    "degree_product_budget_division",
    "uniform_budget_division",
    "make_budget_division",
    "validate_budget_division",
]


class BudgetUnderAllocationWarning(UserWarning):
    """A budget division leaves budget unspent although targets have headroom.

    The built-in strategies (TBD/DBD/uniform) always allocate
    ``min(budget, sum_t |W_t|)`` units, so this warning only fires for
    explicit user-supplied divisions that strand budget which could still be
    absorbed by some target.
    """

#: A budget division: mapping target -> sub budget.
BudgetDivision = Dict[Edge, int]


def _proportional_allocation(
    weights: Mapping[Edge, float],
    caps: Mapping[Edge, int],
    budget: int,
) -> BudgetDivision:
    """Allocate ``budget`` integer units proportionally to ``weights``.

    Uses largest-remainder apportionment, then redistributes any units lost
    to the per-target ``caps`` round-robin (in largest-remainder order) over
    the targets that still have headroom.  The loop terminates only when the
    budget is spent or no target can absorb another unit, so the result
    always allocates exactly ``min(budget, sum(caps))`` units.
    """
    targets = list(weights)
    allocation = {target: 0 for target in targets}
    total_weight = sum(weights.values())
    if budget <= 0 or total_weight <= 0:
        return allocation

    # ideal (real-valued) shares
    shares = {target: budget * weights[target] / total_weight for target in targets}
    for target in targets:
        allocation[target] = min(int(shares[target]), caps[target])

    remaining = budget - sum(allocation.values())
    # hand out remaining units by largest fractional remainder, respecting
    # caps; saturated targets drop out of the rotation instead of burning
    # passes, so no budget is ever stranded while headroom exists
    open_targets = sorted(
        targets, key=lambda t: (shares[t] - int(shares[t]), weights[t]), reverse=True
    )
    while remaining > 0:
        open_targets = [t for t in open_targets if allocation[t] < caps[t]]
        if not open_targets:
            break
        if len(open_targets) == 1:
            target = open_targets[0]
            grant = min(remaining, caps[target] - allocation[target])
            allocation[target] += grant
            remaining -= grant
            continue
        for target in open_targets:
            if remaining == 0:
                break
            if allocation[target] < caps[target]:
                allocation[target] += 1
                remaining -= 1
    return allocation


def proportional_allocation(
    weights: Mapping[Edge, float],
    caps: Mapping[Edge, int],
    budget: int,
) -> BudgetDivision:
    """Public entry to the largest-remainder apportionment.

    The same deterministic allocator the TBD/DBD/uniform strategies are
    built on, exposed for callers that split a budget over *groups* of
    targets rather than a problem's own target set — notably the
    cross-shard budget split in :mod:`repro.service.sharding`, which
    apportions a request's budget over the requested targets by initial
    similarity and then sums each shard's share.  Deterministic given the
    iteration order of ``weights``; allocates exactly
    ``min(budget, sum(caps))`` units.
    """
    return _proportional_allocation(weights, caps, budget)


def target_subgraph_budget_division(problem: TPPProblem, budget: int) -> BudgetDivision:
    """Return the TBD division: sub budgets proportional to ``|W_t|``.

    Targets with more target subgraphs are more exposed and receive more of
    the budget; a target never receives more than ``|W_t|``.
    """
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    initial = problem.initial_similarity_by_target()
    weights = {target: float(count) for target, count in initial.items()}
    caps = dict(initial)
    return _proportional_allocation(weights, caps, budget)


def degree_product_budget_division(problem: TPPProblem, budget: int) -> BudgetDivision:
    """Return the DBD division: sub budgets proportional to ``d_u * d_v``.

    Degrees are taken in the original graph (before phase 1), matching the
    intuition that a link between two hubs is more important.  Sub budgets
    remain capped by ``|W_t|`` because extra deletions beyond the number of
    target subgraphs cannot improve that target's protection.
    """
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    graph = problem.graph
    initial = problem.initial_similarity_by_target()
    weights = {
        target: float(graph.degree(target[0]) * graph.degree(target[1]))
        for target in problem.targets
    }
    caps = dict(initial)
    return _proportional_allocation(weights, caps, budget)


def uniform_budget_division(problem: TPPProblem, budget: int) -> BudgetDivision:
    """Return an even split of the budget across targets (capped by ``|W_t|``)."""
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    initial = problem.initial_similarity_by_target()
    weights = {target: 1.0 for target in problem.targets}
    caps = dict(initial)
    return _proportional_allocation(weights, caps, budget)


_STRATEGIES: Dict[str, Callable[[TPPProblem, int], BudgetDivision]] = {
    "tbd": target_subgraph_budget_division,
    "dbd": degree_product_budget_division,
    "uniform": uniform_budget_division,
}


def make_budget_division(
    problem: TPPProblem,
    budget: int,
    strategy: Union[str, Mapping[Edge, int]] = "tbd",
) -> BudgetDivision:
    """Return a budget division from a strategy name or an explicit mapping.

    Accepts ``"tbd"``, ``"dbd"``, ``"uniform"`` or a pre-computed mapping
    (whose keys are canonicalised, then validated and copied — so callers may
    spell a target ``(v, u)`` even though the problem stores ``(u, v)``).
    """
    if isinstance(strategy, str):
        name = strategy.lower()
        if name not in _STRATEGIES:
            raise BudgetError(
                f"unknown budget division {strategy!r}; expected one of "
                f"{sorted(_STRATEGIES)} or an explicit mapping"
            )
        division = _STRATEGIES[name](problem, budget)
    else:
        division = {
            canonical_edge(*target): int(value) for target, value in strategy.items()
        }
        if len(division) != len(strategy):
            raise BudgetError(
                "budget division lists the same target more than once "
                "(keys collide after canonicalisation)"
            )
    validate_budget_division(problem, budget, division)
    return division


def validate_budget_division(
    problem: TPPProblem, budget: int, division: Mapping[Edge, int]
) -> None:
    """Validate a budget division against the problem and total budget.

    Raises
    ------
    BudgetError
        If a sub budget is negative, references an unknown target, or the
        sub budgets sum to more than ``budget``.

    Warns
    -----
    BudgetUnderAllocationWarning
        If the division leaves budget unspent even though some target could
        still absorb more (``k_t < |W_t|``).  Spending those units can only
        improve protection, so stranding them is almost always a mistake.
        The headroom check reads the problem's cached target-subgraph index
        and is skipped when none has been built yet, so validating a
        division never triggers the enumeration (the built-in strategies
        build the index to compute their caps, hence are always checked).
    """
    known = set(problem.targets)
    total = 0
    for target, sub_budget in division.items():
        if target not in known:
            raise BudgetError(f"budget division references unknown target {target!r}")
        if sub_budget < 0:
            raise BudgetError(f"sub budget for {target!r} is negative: {sub_budget}")
        total += sub_budget
    if total > budget:
        raise BudgetError(
            f"sub budgets sum to {total}, exceeding the global budget {budget}"
        )
    if total < budget and problem.has_cached_index:
        caps = problem.initial_similarity_by_target()
        headroom = sum(
            max(0, caps[target] - division.get(target, 0))
            for target in problem.targets
        )
        if headroom > 0:
            warnings.warn(
                f"budget division allocates {total} of {budget} units while "
                f"targets could still absorb {headroom} more",
                BudgetUnderAllocationWarning,
                stacklevel=2,
            )


def describe_division(division: Mapping[Edge, int]) -> str:
    """Return a compact human-readable description of a budget division."""
    parts = [f"{target}: {value}" for target, value in sorted(division.items(), key=str)]
    return "{" + ", ".join(parts) + "}"
