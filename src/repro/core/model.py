"""Problem and result models for Target Privacy Preserving.

:class:`TPPProblem` captures the inputs of Definition 1 / 2 of the paper —
the original social graph, the set of sensitive target links and the motif
the adversary exploits — and provides the phase-1 graph (targets removed)
every algorithm works on.

:class:`ProtectionResult` records the output of a protector-selection
algorithm: which protectors were deleted in which order, how the total
similarity evolved, how the budget was split across targets (for the
multi-local-budget variants) and how long the selection took.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import BudgetError, InvalidTargetError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.motifs.base import MotifPattern, coerce_motif
from repro.motifs.enumeration import TargetSubgraphIndex
from repro.motifs.similarity import total_similarity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    import repro.motifs.updates

__all__ = ["TPPProblem", "ProtectionResult"]


class TPPProblem:
    """A Target Privacy Preserving instance.

    Parameters
    ----------
    graph:
        The original social graph ``G = (V, E)`` (targets still present).
    targets:
        The sensitive links ``T ⊆ E`` that must stay hidden.
    motif:
        The subgraph pattern the adversary's link prediction exploits
        (``"triangle"``, ``"rectangle"``, ``"rectri"`` or a custom
        :class:`~repro.motifs.MotifPattern`).
    constant:
        The constant ``C`` of the dissimilarity ``f(P, T) = C - s(P, T)``.
        Defaults to the initial similarity ``s(∅, T)`` so ``f(∅, T) = 0``.
    index:
        Optional prebuilt :class:`TargetSubgraphIndex` for this exact
        instance (e.g. restored from a snapshot).  Adopted via
        :meth:`adopt_index` before the initial similarity is computed, so
        construction runs **no enumeration** — this is the cold-start path
        :meth:`from_snapshot` uses.

    Raises
    ------
    InvalidTargetError
        If any target is not an edge of ``graph``, targets are duplicated,
        or a supplied ``index`` was built for a different instance.
    """

    def __init__(
        self,
        graph: Graph,
        targets: Sequence[Edge],
        motif: Union[str, MotifPattern] = "triangle",
        constant: Optional[int] = None,
        index: Optional[TargetSubgraphIndex] = None,
    ) -> None:
        self._graph = graph
        self._motif = coerce_motif(motif)

        canonical_targets = []
        seen = set()
        for target in targets:
            edge = canonical_edge(*target)
            if not graph.has_edge(*edge):
                raise InvalidTargetError(
                    f"target {edge!r} is not an edge of the original graph"
                )
            if edge in seen:
                raise InvalidTargetError(f"duplicate target {edge!r}")
            seen.add(edge)
            canonical_targets.append(edge)
        if not canonical_targets:
            raise InvalidTargetError("the target set T must not be empty")
        self._targets: Tuple[Edge, ...] = tuple(canonical_targets)

        self._phase1_graph = graph.without_edges(self._targets)
        self._index: Optional[TargetSubgraphIndex] = None
        if index is not None:
            self.adopt_index(index)

        initial = self.initial_similarity()
        if constant is None:
            constant = initial
        elif constant < initial:
            raise InvalidTargetError(
                f"constant C={constant} must be >= the initial similarity {initial}"
            )
        self._constant = constant

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The original graph (targets included).

        Snapshot-restored problems materialise it lazily (phase-1 graph
        plus the target links) on first access — serving queries from the
        kernel never needs it, so a cold start does not pay for it.
        """
        if self._graph is None:
            graph = self.phase1_graph.copy()
            graph.add_edges_from(self._targets)
            self._graph = graph
        return self._graph

    @property
    def targets(self) -> Tuple[Edge, ...]:
        """The canonical target links, in input order."""
        return self._targets

    @property
    def motif(self) -> MotifPattern:
        """The motif pattern of the threat model."""
        return self._motif

    @property
    def constant(self) -> int:
        """The dissimilarity constant ``C``."""
        return self._constant

    @property
    def phase1_graph(self) -> Graph:
        """The graph after phase 1 (all targets deleted).  Do not mutate.

        Snapshot-restored problems materialise it lazily from the restored
        :class:`~repro.graphs.indexed.IndexedGraph` on first access.
        """
        if self._phase1_graph is None:
            self._phase1_graph = self._index.indexed_graph.to_graph()
        return self._phase1_graph

    def target_set(self) -> frozenset:
        """Return the targets as a frozen set of canonical edges."""
        return frozenset(self._targets)

    def build_index(
        self, build_workers: Optional[int] = None
    ) -> TargetSubgraphIndex:
        """Return (and cache) the target-subgraph index on the phase-1 graph.

        ``build_workers > 1`` fans the per-target enumeration out over that
        many worker processes (bit-identical result for every worker count);
        it only applies to the build that actually runs — a cached index is
        returned as-is.
        """
        if self._index is None:
            self._index = TargetSubgraphIndex(
                self._phase1_graph,
                self._targets,
                self._motif,
                build_workers=build_workers,
            )
        return self._index

    def adopt_index(self, index: TargetSubgraphIndex) -> TargetSubgraphIndex:
        """Adopt a prebuilt target-subgraph index as this problem's cache.

        Lets callers that built an index out-of-band (a parallel build, a
        deserialised snapshot, the build benchmark) serve this problem from
        it without re-enumerating.  The index must have been built for this
        problem's targets and motif on its phase-1 graph; targets, motif and
        graph size are validated, the graph contents are the caller's
        responsibility.
        """
        if index.targets != self._targets:
            raise InvalidTargetError(
                "adopted index was built for different targets"
            )
        if index.motif.name != self._motif.name:
            raise InvalidTargetError(
                f"adopted index was built for motif {index.motif.name!r}, "
                f"problem uses {self._motif.name!r}"
            )
        if index.indexed_graph.number_of_edges() != self.phase1_graph.number_of_edges():
            raise InvalidTargetError(
                "adopted index was built on a different phase-1 graph"
            )
        self._index = index
        return index

    def save_index(
        self,
        path: Union[str, "Path"],
        build_workers: Optional[int] = None,
    ) -> "Path":
        """Persist this problem's built index as a snapshot file.

        Builds the index first if it is not cached yet (``build_workers``
        fans that build out, exactly like :meth:`build_index`), then writes
        a versioned snapshot — flat arrays, motif identity, targets,
        constant ``C`` and content hash — that
        :meth:`from_snapshot` / :meth:`ProtectionService.from_snapshot
        <repro.service.ProtectionService.from_snapshot>` can cold-start
        from without enumerating.

        Parameters
        ----------
        path:
            Destination snapshot file (conventionally ``*.tppsnap``).
        build_workers:
            Worker-process fan-out for the build, if one still has to run.

        Returns
        -------
        pathlib.Path
            The written path.
        """
        from repro.persistence.snapshot import save_snapshot

        index = self.build_index(build_workers=build_workers)
        return save_snapshot(path, index, self._constant)

    @classmethod
    def from_snapshot(
        cls, path: Union[str, "Path"], allow_pickle: bool = True
    ) -> "TPPProblem":
        """Reconstruct a problem — index included — from a snapshot file.

        The phase-1 graph is materialised from the snapshot's
        :class:`~repro.graphs.indexed.IndexedGraph`, the original graph is
        that plus the target links, and the restored index is adopted
        before any similarity is computed — so **no motif enumeration runs**
        and every greedy trace matches the session that saved the snapshot
        byte for byte.

        Parameters
        ----------
        path:
            A file written by :meth:`save_index` (or
            :func:`repro.persistence.save_snapshot`).
        allow_pickle:
            Forwarded to :func:`repro.persistence.load_snapshot`; refuse
            snapshots with pickled sections (custom motifs, exotic node
            labels) when ``False``.

        Returns
        -------
        TPPProblem
            With the snapshot's targets, motif, constant and built index.

        Raises
        ------
        repro.exceptions.SnapshotFormatError
            If the file is unreadable, truncated, corrupted or from an
            incompatible format version / platform.
        """
        from repro.persistence.snapshot import load_snapshot

        snapshot = load_snapshot(path, allow_pickle=allow_pickle)
        index = snapshot.index
        # fast restore path: the snapshot's IndexedGraph *is* the phase-1
        # graph, so both Graph views stay lazy (see the ``graph`` /
        # ``phase1_graph`` properties) and nothing per-edge runs here.  The
        # skipped __init__ validation (targets are edges, C >= s(∅, T))
        # held when the snapshot was saved and is preserved verbatim by the
        # hash-checked file.
        problem = cls.__new__(cls)
        problem._graph = None
        problem._motif = index.motif
        problem._targets = index.targets
        problem._phase1_graph = None
        problem._index = index
        problem._constant = snapshot.constant
        return problem

    def apply_delta(
        self, delta: "repro.motifs.updates.EdgeDelta", constant: Optional[int] = None
    ) -> Tuple["TPPProblem", "repro.motifs.updates.DeltaOutcome"]:
        """Apply an :class:`~repro.motifs.updates.EdgeDelta` to the graph.

        Returns ``(updated_problem, outcome)``: a **new** problem over the
        updated graph whose index was maintained incrementally (bit-identical
        to rebuilding on the updated phase-1 graph — see
        :mod:`repro.motifs.updates`), and the
        :class:`~repro.motifs.updates.DeltaOutcome` describing what changed.
        This problem is untouched and keeps answering for the pre-delta
        graph.

        Parameters
        ----------
        delta:
            The ordered edge insertions/deletions.  Target links cannot be
            touched (they are not edges of the phase-1 graph the delta
            applies to; inserting one raises
            :class:`~repro.exceptions.DeltaError`).
        constant:
            The dissimilarity constant ``C`` of the updated problem.  By
            default the current constant is kept, auto-bumped to the new
            initial similarity if insertions pushed ``s(∅, T)`` above it
            (``f(∅, T) = 0`` again, matching the default of a fresh
            problem).  An explicit value below the new initial similarity
            raises :class:`~repro.exceptions.DeltaError`.
        """
        from repro.exceptions import DeltaError

        outcome = self.build_index().apply_delta(delta)
        initial = outcome.index.initial_total_similarity()
        if constant is None:
            constant = max(self._constant, initial)
        elif constant < initial:
            raise DeltaError(
                f"constant C={constant} is below the post-delta initial "
                f"similarity {initial}"
            )
        # same lazy-graph construction as from_snapshot: the updated index
        # carries the spliced phase-1 graph, both Graph views materialise on
        # demand
        problem = type(self).__new__(type(self))
        problem._graph = None
        problem._motif = self._motif
        problem._targets = self._targets
        problem._phase1_graph = None
        problem._index = outcome.index
        problem._constant = constant
        return problem, outcome

    def with_constant(self, constant: int) -> "TPPProblem":
        """Return this problem with the dissimilarity constant rebased.

        The graph, targets, motif and (already built) index are shared with
        this problem — nothing is re-enumerated; only ``C`` changes.  This
        is what keeps a sharded session's shards on one common ``C``:
        after a delta raises some shard's initial similarity, every shard
        is rebased to the new combined constant so per-shard dissimilarity
        traces still sum to the whole session's (see
        :mod:`repro.service.sharding`).

        Raises
        ------
        ConstantError
            If ``constant`` is below this problem's initial similarity
            (``f(∅, T)`` would go negative).
        """
        from repro.exceptions import ConstantError

        initial = self.initial_similarity()
        if constant < initial:
            raise ConstantError(
                f"constant C={constant} must be >= the initial similarity "
                f"{initial}"
            )
        if constant == self._constant:
            return self
        problem = type(self).__new__(type(self))
        problem._graph = self._graph
        problem._motif = self._motif
        problem._targets = self._targets
        problem._phase1_graph = self._phase1_graph
        problem._index = self._index
        problem._constant = constant
        return problem

    @property
    def has_cached_index(self) -> bool:
        """Whether the target-subgraph index has already been built.

        Lets callers offer index-dependent extras (diagnostics, warnings)
        without triggering the enumeration on workloads — e.g. the naive
        recount baseline — that never needed it.
        """
        return self._index is not None

    def initial_similarity(self) -> int:
        """Return ``s(∅, T)`` on the phase-1 graph."""
        if self._index is not None:
            return self._index.initial_total_similarity()
        return total_similarity(self.phase1_graph, self._targets, self._motif)

    def initial_similarity_by_target(self) -> Dict[Edge, int]:
        """Return ``s(∅, t)`` for every target."""
        index = self.build_index()
        return {target: index.initial_similarity(target) for target in self._targets}

    def dissimilarity_of(self, protectors: Sequence[Edge]) -> int:
        """Return ``f(P, T)`` for an explicit protector set (recounted)."""
        released = self.phase1_graph.without_edges(protectors)
        return self._constant - total_similarity(released, self._targets, self._motif)

    def released_graph(self, protectors: Sequence[Edge]) -> Graph:
        """Return the released graph: phase-1 graph minus the protector set."""
        return self.phase1_graph.without_edges(protectors)

    def __repr__(self) -> str:
        if self._graph is None:  # snapshot-restored, graph not materialised
            indexed = self._index.indexed_graph
            n = indexed.number_of_nodes()
            m = indexed.number_of_edges() + len(self._targets)
        else:
            n = self._graph.number_of_nodes()
            m = self._graph.number_of_edges()
        return (
            f"TPPProblem(n={n}, m={m}, targets={len(self._targets)}, "
            f"motif={self._motif.name!r})"
        )


@dataclass(frozen=True)
class ProtectionResult:
    """The outcome of one protector-selection run.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm label, e.g. ``"SGB-Greedy-R"``.
    motif:
        Motif name the run protected against.
    budget:
        The deletion budget ``k`` the run was given.
    protectors:
        Protector edges in deletion order (``|P| <= k``).
    similarity_trace:
        ``s(P, T)`` after 0, 1, 2, ... deletions; index ``i`` is the total
        similarity once the first ``i`` protectors are deleted.
    initial_similarity:
        ``s(∅, T)``.
    budget_division:
        Per-target sub budgets ``k_t`` (multi-local-budget runs only).
    allocation:
        Per-target protector sets ``P_t`` (multi-local-budget runs only).
    runtime_seconds:
        Wall-clock selection time.
    """

    algorithm: str
    motif: str
    budget: int
    protectors: Tuple[Edge, ...]
    similarity_trace: Tuple[int, ...]
    initial_similarity: int
    budget_division: Optional[Mapping[Edge, int]] = None
    allocation: Optional[Mapping[Edge, Tuple[Edge, ...]]] = None
    runtime_seconds: float = 0.0
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def final_similarity(self) -> int:
        """Return ``s(P, T)`` after all selected deletions."""
        return self.similarity_trace[-1] if self.similarity_trace else self.initial_similarity

    @property
    def dissimilarity_gain(self) -> int:
        """Return the total dissimilarity increase ``s(∅, T) - s(P, T)``."""
        return self.initial_similarity - self.final_similarity

    @property
    def fully_protected(self) -> bool:
        """Return whether every target subgraph was broken (``s(P, T) = 0``)."""
        return self.final_similarity == 0

    @property
    def budget_used(self) -> int:
        """Return how many protectors were actually deleted."""
        return len(self.protectors)

    def released_graph(self, problem: TPPProblem) -> Graph:
        """Return the released graph produced by applying this result."""
        return problem.released_graph(self.protectors)

    def similarity_at(self, deletions: int) -> int:
        """Return ``s(P, T)`` after the first ``deletions`` protector removals.

        Values beyond the recorded trace clamp to the final similarity, which
        makes plotting different methods over a common budget axis easy.
        """
        if deletions < 0:
            raise BudgetError("deletions must be >= 0")
        if deletions < len(self.similarity_trace):
            return self.similarity_trace[deletions]
        return self.final_similarity

    def summary(self) -> str:
        """Return a short one-line human-readable summary."""
        return (
            f"{self.algorithm}[{self.motif}] k={self.budget} "
            f"used={self.budget_used} s: {self.initial_similarity} -> "
            f"{self.final_similarity} ({self.runtime_seconds:.3f}s)"
        )

    # ------------------------------------------------------------------
    # serialization (JSON-friendly: edge tuples become 2-element lists)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable dictionary of this result.

        Edge tuples become two-element lists; the edge-keyed mappings
        (``budget_division``, ``allocation``) become lists of
        ``[edge, value]`` pairs because JSON objects only take string keys.
        :meth:`from_dict` reverses the conversion exactly, so
        ``ProtectionResult.from_dict(result.to_dict()) == result`` (also
        after a ``json.dumps``/``json.loads`` round trip, provided the node
        labels are JSON scalars, which every built-in dataset's are).
        """
        payload: Dict[str, object] = {
            "algorithm": self.algorithm,
            "motif": self.motif,
            "budget": self.budget,
            "protectors": [list(edge) for edge in self.protectors],
            "similarity_trace": list(self.similarity_trace),
            "initial_similarity": self.initial_similarity,
            "runtime_seconds": self.runtime_seconds,
            "extra": dict(self.extra),
        }
        if self.budget_division is not None:
            payload["budget_division"] = [
                [list(target), value] for target, value in self.budget_division.items()
            ]
        if self.allocation is not None:
            payload["allocation"] = [
                [list(target), [list(edge) for edge in edges]]
                for target, edges in self.allocation.items()
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ProtectionResult":
        """Rebuild a result from a :meth:`to_dict` payload (or parsed JSON)."""
        division = payload.get("budget_division")
        allocation = payload.get("allocation")
        return cls(
            algorithm=payload["algorithm"],
            motif=payload["motif"],
            budget=int(payload["budget"]),
            protectors=tuple(tuple(edge) for edge in payload["protectors"]),
            similarity_trace=tuple(int(v) for v in payload["similarity_trace"]),
            initial_similarity=int(payload["initial_similarity"]),
            budget_division=None
            if division is None
            else {tuple(target): int(value) for target, value in division},
            allocation=None
            if allocation is None
            else {
                tuple(target): tuple(tuple(edge) for edge in edges)
                for target, edges in allocation
            },
            runtime_seconds=float(payload.get("runtime_seconds", 0.0)),
            extra=dict(payload.get("extra", {})),
        )
