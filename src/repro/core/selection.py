"""Shared helpers for the greedy protector-selection algorithms."""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Tuple

from repro.graphs.graph import Edge, edge_sort_key

__all__ = ["argmax_edge", "edge_sort_key", "Stopwatch"]


def argmax_edge(
    candidates: Iterable[Edge], score: Callable[[Edge], float]
) -> Optional[Tuple[Edge, float]]:
    """Return the ``(edge, score)`` pair with maximal score.

    Ties are broken by :func:`edge_sort_key` so runs are reproducible across
    Python hash seeds.  Returns ``None`` when ``candidates`` is empty.
    """
    best_edge: Optional[Edge] = None
    best_score = float("-inf")
    for edge in sorted(candidates, key=edge_sort_key):
        value = score(edge)
        if value > best_score:
            best_score = value
            best_edge = edge
    if best_edge is None:
        return None
    return best_edge, best_score


class Stopwatch:
    """Tiny wall-clock stopwatch used to fill ``ProtectionResult.runtime_seconds``."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Return the seconds elapsed since construction."""
        return time.perf_counter() - self._start
