"""WT-Greedy: the Within-Target greedy protector selection for MLBT.

Algorithm 3 of the paper.  Targets are processed one after another; while a
target's sub budget lasts, the edge maximising

``Δ_t^p = [subgraphs of t broken by p] + [subgraphs of other targets broken by p] / C``

is deleted and charged to that target.  The within-target setting is also
submodular maximisation under per-target budgets and achieves a
``1 - e^-(1-1/e) ≈ 0.46`` approximation (Theorem 5).

Because the selection never looks across targets, it can spend budget on a
target whose remaining subgraphs were already broken "for free" by earlier
targets' protectors; this is exactly why the paper finds WT-Greedy slightly
weaker than CT-Greedy (Fig. 2 example, Figs. 3–4).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.budget import make_budget_division
from repro.core.engines import CoverageEngine, EngineLike, make_engine
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.selection import Stopwatch
from repro.exceptions import BudgetError
from repro.graphs.graph import Edge

__all__ = ["wt_greedy"]


def wt_greedy(
    problem: TPPProblem,
    budget: int,
    budget_division: Union[str, Mapping[Edge, int]] = "tbd",
    engine: EngineLike = "coverage",
    target_order: Optional[Sequence[Edge]] = None,
) -> ProtectionResult:
    """Select protectors with the within-target greedy under per-target budgets.

    Parameters
    ----------
    problem:
        The TPP instance.
    budget:
        Global budget ``k``; the division strategy splits it into ``k_t``.
    budget_division:
        ``"tbd"``, ``"dbd"``, ``"uniform"`` or an explicit target -> budget
        mapping.
    engine:
        ``"coverage"`` (WT-Greedy-R, array kernel), ``"coverage-set"``
        (reference hash-set state), ``"recount"`` (WT-Greedy), or an
        already-constructed engine instance.
    target_order:
        Optional explicit processing order of the targets; defaults to the
        problem's target order.

    Returns
    -------
    ProtectionResult
        With ``budget_division`` and per-target ``allocation`` filled in.
    """
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    stopwatch = Stopwatch()
    division = make_budget_division(problem, budget, budget_division)
    gain_engine = make_engine(problem, engine)
    constant = max(problem.constant, 1)
    algorithm = (
        "WT-Greedy-R" if isinstance(gain_engine, CoverageEngine) else "WT-Greedy"
    )
    if isinstance(budget_division, str):
        algorithm = f"{algorithm}:{budget_division.upper()}"

    order: Tuple[Edge, ...] = (
        tuple(target_order) if target_order is not None else problem.targets
    )
    if set(order) != set(problem.targets):
        raise BudgetError("target_order must be a permutation of the problem targets")

    allocation: Dict[Edge, List[Edge]] = {target: [] for target in problem.targets}
    protectors: List[Edge] = []
    trace: List[int] = [gain_engine.total_similarity()]

    for target in order:
        sub_budget = division.get(target, 0)
        for _ in range(sub_budget):
            if len(protectors) >= budget:
                break
            # only edges touching an alive subgraph of *this* target can
            # have a positive own-gain; the kernel engine answers the
            # single-target argmax from the target's lazy max-heap over
            # the per-(edge, target) counter matrix, other engines run a
            # deterministic sweep in edge_sort_key order — identical results
            best = gain_engine.best_scored_pair((target,), constant)
            best_edge: Optional[Edge] = best[2] if best is not None else None
            if best_edge is None:
                # nothing left to break for this target (possibly already
                # protected by earlier deletions): move on to the next target
                break
            gain_engine.commit(best_edge)
            protectors.append(best_edge)
            allocation[target].append(best_edge)
            trace.append(gain_engine.total_similarity())

    return ProtectionResult(
        algorithm=algorithm,
        motif=problem.motif.name,
        budget=budget,
        protectors=tuple(protectors),
        similarity_trace=tuple(trace),
        initial_similarity=problem.initial_similarity(),
        budget_division=dict(division),
        allocation={t: tuple(edges) for t, edges in allocation.items()},
        runtime_seconds=stopwatch.elapsed(),
        extra={"engine": gain_engine.name},
    )
