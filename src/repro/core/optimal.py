"""Exact (exponential-time) protector selection for small instances.

The optimal protector set is NP-hard to find in general (Theorems 1-2), but
on small instances it can be computed by branch-and-bound over the candidate
edges of the coverage index.  The exact optimum is useful for two things:

* empirically validating the greedy approximation guarantees
  (``1 - 1/e`` for SGB-Greedy), which the test suite does, and
* protecting tiny, highly sensitive subgraphs where the user wants the true
  optimum rather than an approximation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.model import ProtectionResult, TPPProblem
from repro.core.selection import Stopwatch, edge_sort_key
from repro.exceptions import BudgetError, TPPError
from repro.graphs.graph import Edge

__all__ = ["optimal_protectors", "greedy_optimality_gap"]

#: Refuse brute force beyond this many candidate edges unless overridden.
DEFAULT_MAX_CANDIDATES = 30


def optimal_protectors(
    problem: TPPProblem,
    budget: int,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> ProtectionResult:
    """Return an optimal protector set of size at most ``budget``.

    Uses depth-first branch and bound over the candidate edges (only edges in
    some target subgraph can ever help, Lemma 5), pruning with the admissible
    bound "remaining budget × best single-edge gain".

    Raises
    ------
    TPPError
        If the instance has more candidate edges than ``max_candidates``
        (the search is exponential; raise the limit explicitly if you really
        want to wait).
    BudgetError
        If the budget is negative.
    """
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    stopwatch = Stopwatch()
    index = problem.build_index()
    candidates: List[Edge] = sorted(index.candidate_edges(), key=edge_sort_key)
    if len(candidates) > max_candidates:
        raise TPPError(
            f"instance has {len(candidates)} candidate edges; exact search is "
            f"exponential and limited to {max_candidates} (raise max_candidates "
            "to override)"
        )

    base_state = index.new_state()
    initial = base_state.total_similarity()

    # order candidates by decreasing initial gain: better incumbents earlier
    candidates.sort(key=lambda edge: (-base_state.gain(edge), edge_sort_key(edge)))

    best_gain = -1
    best_set: Tuple[Edge, ...] = ()

    def search(start: int, chosen: List[Edge], state, gain_so_far: int) -> None:
        nonlocal best_gain, best_set
        if gain_so_far > best_gain:
            best_gain = gain_so_far
            best_set = tuple(chosen)
        if len(chosen) >= budget or start >= len(candidates):
            return
        remaining_budget = budget - len(chosen)
        # admissible bound: every remaining pick breaks at most the current
        # best single-edge gain
        best_single = 0
        for edge in candidates[start:]:
            best_single = max(best_single, state.gain(edge))
        if gain_so_far + remaining_budget * best_single <= best_gain:
            return
        for position in range(start, len(candidates)):
            edge = candidates[position]
            gain = state.gain(edge)
            if gain <= 0:
                continue
            next_state = state.copy()
            next_state.delete_edge(edge)
            chosen.append(edge)
            search(position + 1, chosen, next_state, gain_so_far + gain)
            chosen.pop()

    search(0, [], base_state, 0)

    # rebuild the trace for the winning set (order by decreasing marginal gain)
    replay = index.new_state()
    trace = [replay.total_similarity()]
    for edge in best_set:
        replay.delete_edge(edge)
        trace.append(replay.total_similarity())

    return ProtectionResult(
        algorithm="Optimal (branch-and-bound)",
        motif=problem.motif.name,
        budget=budget,
        protectors=best_set,
        similarity_trace=tuple(trace),
        initial_similarity=initial,
        runtime_seconds=stopwatch.elapsed(),
        extra={"candidates": len(candidates)},
    )


def greedy_optimality_gap(
    problem: TPPProblem,
    budget: int,
    greedy_result: ProtectionResult,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> Optional[float]:
    """Return ``greedy gain / optimal gain`` for a small instance.

    Returns ``None`` when the optimum gained nothing (both are trivially
    optimal).  Values are in ``(0, 1]``; Theorem 3 guarantees at least
    ``1 - 1/e ≈ 0.632`` for SGB-Greedy.
    """
    optimum = optimal_protectors(problem, budget, max_candidates=max_candidates)
    if optimum.dissimilarity_gain == 0:
        return None
    return greedy_result.dissimilarity_gain / optimum.dissimilarity_gain
