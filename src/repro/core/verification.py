"""Verification helpers: full protection and the critical budget ``k*``.

The paper calls a release *fully protected* when deleting the protector set
drives the total similarity to zero — no target subgraph survives, so the
motif-based adversary assigns probability zero to every target.  The
*critical budget* ``k*`` is the smallest budget at which a given algorithm
reaches full protection; the paper sweeps budgets up to ``k*`` in Figs. 3–4.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Union

from repro.core.model import ProtectionResult, TPPProblem
from repro.exceptions import TPPError
from repro.graphs.graph import Edge, Graph
from repro.motifs.base import MotifPattern
from repro.motifs.similarity import total_similarity

__all__ = [
    "is_fully_protected",
    "verify_result",
    "critical_budget",
    "protection_ratio",
]

#: An algorithm callable taking (problem, budget) and returning a result.
Algorithm = Callable[[TPPProblem, int], ProtectionResult]


def is_fully_protected(
    graph: Graph, targets: Iterable[Edge], motif: Union[str, MotifPattern]
) -> bool:
    """Return whether no target subgraph survives in ``graph``.

    ``graph`` is the candidate released graph (targets and protectors already
    removed).
    """
    return total_similarity(graph, list(targets), motif) == 0


def verify_result(problem: TPPProblem, result: ProtectionResult) -> bool:
    """Independently recount the released graph and check the result's claim.

    Returns ``True`` when the recomputed total similarity matches the final
    value of the result's similarity trace.  This guards against engine bugs:
    the trace is produced incrementally, the verification recounts from
    scratch.
    """
    released = result.released_graph(problem)
    recounted = total_similarity(released, problem.targets, problem.motif)
    return recounted == result.final_similarity


def protection_ratio(result: ProtectionResult) -> float:
    """Return the fraction of initial target subgraphs broken (0.0 - 1.0)."""
    if result.initial_similarity == 0:
        return 1.0
    return result.dissimilarity_gain / result.initial_similarity


def critical_budget(
    problem: TPPProblem,
    algorithm: Algorithm,
    max_budget: int = 10_000,
) -> int:
    """Return ``k*``: the smallest budget at which ``algorithm`` fully protects.

    The algorithm is run once with ``max_budget``; because every selection in
    this library stops as soon as no candidate has positive gain, the number
    of protectors actually used at that point *is* the critical budget for
    that algorithm.

    Raises
    ------
    TPPError
        If even ``max_budget`` deletions do not reach full protection
        (which indicates the candidate pool cannot cover every instance —
        impossible for the greedy algorithms, but possible for baselines).
    """
    result = algorithm(problem, max_budget)
    if not result.fully_protected:
        raise TPPError(
            f"{result.algorithm} did not reach full protection within "
            f"{max_budget} deletions (residual similarity {result.final_similarity})"
        )
    return result.budget_used


def minimum_protectors_upper_bound(problem: TPPProblem) -> int:
    """Return a trivial upper bound on ``k*``: one deletion per target subgraph.

    Useful as a sanity cap when sweeping budgets.
    """
    return problem.initial_similarity()
