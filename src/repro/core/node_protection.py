"""Target *node* privacy preserving (the paper's future-work extension).

The paper closes by listing "target node privacy preserving technologies" as
open work.  This module provides the natural lift of the link-level TPP
machinery to nodes: a target node's privacy concern is the set of its
incident relationships, so protecting the node means (1) hiding all of its
incident links (phase 1) and (2) deleting protectors so that subgraph-based
link prediction cannot re-infer *any* of them (phase 2).  All link-level
algorithms, budgets and guarantees carry over unchanged because the node
problem is exactly a link problem with a structured target set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.ct import ct_greedy
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.wt import wt_greedy
from repro.exceptions import InvalidTargetError
from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.motifs.base import MotifPattern

__all__ = ["NodeProtectionResult", "node_targets", "protect_target_nodes"]


def node_targets(graph: Graph, nodes: Sequence[Node]) -> Tuple[Edge, ...]:
    """Return the incident links of ``nodes`` as a canonical target tuple.

    Raises
    ------
    InvalidTargetError
        If a node is missing from the graph or has no incident links (there
        is nothing to hide for an isolated node).
    """
    targets = []
    seen = set()
    for node in nodes:
        if not graph.has_node(node):
            raise InvalidTargetError(f"target node {node!r} is not in the graph")
        neighbors = graph.neighbors(node)
        if not neighbors:
            raise InvalidTargetError(f"target node {node!r} has no incident links")
        for neighbor in sorted(neighbors, key=str):
            edge = canonical_edge(node, neighbor)
            if edge not in seen:
                seen.add(edge)
                targets.append(edge)
    return tuple(targets)


@dataclass(frozen=True)
class NodeProtectionResult:
    """Outcome of a node-level protection run.

    Wraps the underlying link-level :class:`ProtectionResult` and adds the
    node-level bookkeeping (which nodes were protected and how exposed each
    of them remains).
    """

    nodes: Tuple[Node, ...]
    link_result: ProtectionResult
    problem: TPPProblem

    @property
    def fully_protected(self) -> bool:
        """Return whether no incident link of any target node is inferable."""
        return self.link_result.fully_protected

    @property
    def protectors(self) -> Tuple[Edge, ...]:
        """The deleted protector links."""
        return self.link_result.protectors

    def released_graph(self) -> Graph:
        """Return the released graph (incident links and protectors removed)."""
        return self.link_result.released_graph(self.problem)

    def exposure_by_node(self) -> Dict[Node, int]:
        """Return, per target node, how many of its links remain inferable.

        A link counts as inferable when at least one target subgraph around
        it survives in the released graph.
        """
        released = self.released_graph()
        motif = self.problem.motif
        exposure: Dict[Node, int] = {node: 0 for node in self.nodes}
        for target in self.problem.targets:
            if motif.count(released, target) == 0:
                continue
            for node in self.nodes:
                if node in target:
                    exposure[node] += 1
        return exposure

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        exposure = sum(self.exposure_by_node().values())
        return (
            f"node-TPP over {len(self.nodes)} nodes "
            f"({len(self.problem.targets)} incident links): "
            f"{self.link_result.summary()}; residual exposed links: {exposure}"
        )


def protect_target_nodes(
    graph: Graph,
    nodes: Sequence[Node],
    budget: int,
    motif: Union[str, MotifPattern] = "triangle",
    algorithm: str = "sgb",
    budget_division: Union[str, Mapping[Edge, int]] = "tbd",
    engine: str = "coverage",
    lazy: Optional[bool] = None,
) -> NodeProtectionResult:
    """Protect every incident link of the given target nodes.

    Parameters
    ----------
    graph:
        The original social graph.
    nodes:
        The nodes whose relationships must stay hidden.
    budget:
        Protector deletion budget ``k`` (on top of hiding the incident links).
    motif:
        Adversary's subgraph pattern.
    algorithm:
        ``"sgb"``, ``"ct"`` or ``"wt"`` — which link-level greedy to run.
    budget_division:
        Budget division for the multi-local-budget algorithms.
    engine:
        Marginal-gain engine (``"coverage"``, ``"coverage-set"`` or
        ``"recount"``).
    lazy:
        Lazy evaluation for the SGB greedy (default: on for the coverage
        engines); ignored by the other algorithms.
    """
    targets = node_targets(graph, nodes)
    problem = TPPProblem(graph, targets, motif=motif)
    name = algorithm.lower()
    if name == "sgb":
        link_result = sgb_greedy(problem, budget, engine=engine, lazy=lazy)
    elif name == "ct":
        link_result = ct_greedy(
            problem, budget, budget_division=budget_division, engine=engine
        )
    elif name == "wt":
        link_result = wt_greedy(
            problem, budget, budget_division=budget_division, engine=engine
        )
    else:
        raise InvalidTargetError(
            f"unknown algorithm {algorithm!r}; expected 'sgb', 'ct' or 'wt'"
        )
    return NodeProtectionResult(
        nodes=tuple(nodes), link_result=link_result, problem=problem
    )
