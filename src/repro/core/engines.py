"""Marginal-gain evaluation engines.

Every greedy algorithm in the paper repeatedly asks the same two questions:

* "if I delete edge ``p`` now, how many target subgraphs break (overall and
  per target)?" and
* "which edges are worth asking that question about?"

The answers can be produced two ways, and the difference between them *is*
the difference between the paper's plain algorithms and their scalable
``-R`` variants:

* :class:`RecountEngine` — the paper's non-scalable formulation: every edge
  of the current graph is a candidate and each query recounts motif
  instances from the graph.  Faithful, simple, and slow (this is what
  Figs. 5–6 measure as SGB/CT/WT-Greedy).
* :class:`CoverageEngine` — the scalable formulation of Lemma 5: target
  subgraphs are enumerated once into a coverage state over the index and
  candidates are restricted to edges of target subgraphs.  With the default
  array kernel (``state="array"``, :class:`~repro.motifs.CoverageState`)
  gains are O(1) counter reads and the maximum-gain edge pops from a lazy
  max-heap; with ``state="set"`` the original hash-set bookkeeping
  (:class:`~repro.motifs.SetCoverageState`) is used — same answers, kept as
  the reference implementation for differential tests and old-vs-new
  benchmarks.

Beyond the point queries, the engine protocol exposes batched entry points
(:meth:`MarginalGainEngine.top_gain_edge`,
:meth:`~MarginalGainEngine.top_k_edges`,
:meth:`~MarginalGainEngine.iter_gain_breakdowns`,
:meth:`~MarginalGainEngine.target_gain_map`,
:meth:`~MarginalGainEngine.best_scored_pair`) with generic full-scan default
implementations; :class:`CoverageEngine` overrides them with the kernel's
incremental counterparts so SGB/CT/WT share one fast path.  In particular
``best_scored_pair`` — the argmax of the MLBT score ``Δ_t^p`` over
``(target, edge)`` pairs — is answered by the array kernel from per-target
lazy max-heaps over the per-(edge, target) counter matrix, which is what
makes the CT/WT greedy steps sublinear in the candidate count.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.model import TPPProblem
from repro.core.selection import argmax_edge, edge_sort_key
from repro.exceptions import EngineError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.motifs.base import MotifPattern
from repro.motifs.enumeration import CoverageState, SetCoverageState

__all__ = [
    "MarginalGainEngine",
    "RecountEngine",
    "CoverageEngine",
    "ENGINE_NAMES",
    "EngineLike",
    "make_engine",
]


class MarginalGainEngine(ABC):
    """Common interface of the marginal-gain evaluation strategies."""

    @property
    @abstractmethod
    def name(self) -> str:
        """The registry name of this engine (one of :data:`ENGINE_NAMES`)."""

    @abstractmethod
    def candidate_edges(self) -> Set[Edge]:
        """Return the edges the greedy algorithm should evaluate this step."""

    @abstractmethod
    def total_gain(self, edge: Edge) -> int:
        """Return how many target subgraphs deleting ``edge`` would break now."""

    @abstractmethod
    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        """Return the per-target breakdown of :meth:`total_gain`."""

    @abstractmethod
    def commit(self, edge: Edge) -> Dict[Edge, int]:
        """Delete ``edge`` for real and return the per-target broken counts."""

    @abstractmethod
    def total_similarity(self) -> int:
        """Return the current ``s(P, T)``."""

    @abstractmethod
    def similarity_of(self, target: Edge) -> int:
        """Return the current ``s(P, t)``."""

    def gain_for_target(self, edge: Edge, target: Edge) -> int:
        """Return how many subgraphs of ``target`` deleting ``edge`` breaks now."""
        return self.gain_by_target(edge).get(canonical_edge(*target), 0)

    def is_fully_protected(self) -> bool:
        """Return whether all target subgraphs are already broken."""
        return self.total_similarity() == 0

    # ------------------------------------------------------------------
    # batched queries (generic full-scan defaults; engines may override
    # with incremental implementations)
    # ------------------------------------------------------------------
    def top_gain_edge(self) -> Optional[Tuple[Edge, int]]:
        """Return the candidate with maximal positive gain, or ``None``.

        Ties break toward the smallest ``edge_sort_key``.  The default is a
        full evaluation sweep; kernel-backed engines answer from a heap.
        """
        best = argmax_edge(self.candidate_edges(), self.total_gain)
        if best is None or best[1] <= 0:
            return None
        return best

    def top_k_edges(self, k: int) -> List[Tuple[Edge, int]]:
        """Return up to ``k`` positive-gain candidates, best first.

        Gains are individual (overlapping) marginal gains — a shortlist for
        pruning, not a batch selection.  Ordered by descending gain with
        ``edge_sort_key`` tie-breaking.
        """
        if k <= 0:
            return []
        scored = [
            (edge, gain)
            # reprolint: disable=R1-set-iteration(scored is fully re-sorted below by the total key (-gain, edge_sort_key), which erases the set's hash order)
            for edge in self.candidate_edges()
            if (gain := self.total_gain(edge)) > 0
        ]
        scored.sort(key=lambda pair: (-pair[1], edge_sort_key(pair[0])))
        return scored[:k]

    def iter_gain_breakdowns(self) -> Iterator[Tuple[Edge, int, Dict[Edge, int]]]:
        """Yield ``(edge, total gain, per-target gains)`` for every candidate
        with positive total gain, in deterministic ``edge_sort_key`` order.

        This is the cross-target greedy's inner loop: one deterministic sweep
        that exposes both the total and the attribution of each gain.
        """
        for edge in sorted(self.candidate_edges(), key=edge_sort_key):
            gains = self.gain_by_target(edge)
            if not gains:
                continue
            yield edge, sum(gains.values()), gains

    def target_gain_map(self, target: Edge) -> Dict[Edge, int]:
        """Return ``{edge: own gain}`` for edges breaking subgraphs of ``target``.

        Keys are emitted in deterministic ``edge_sort_key`` order; only
        positive own-gains are included.  The within-target greedy scores
        exactly these edges instead of probing the whole candidate set.
        """
        gains: Dict[Edge, int] = {}
        for edge in sorted(self.candidate_edges(), key=edge_sort_key):
            own = self.gain_for_target(edge, target)
            if own > 0:
                gains[edge] = own
        return gains

    def best_scored_pair(
        self, targets: Sequence[Edge], constant: int
    ) -> Optional[Tuple[int, Edge, Edge]]:
        """Return the ``(key, target, edge)`` maximising the MLBT greedy score
        over the given targets, or ``None`` if no pair has a positive
        own-gain.

        The integer key is ``own * (constant - 1) + total``; dividing by
        ``constant`` gives the paper's ``Δ_t^p = own + (total - own) / C``,
        so maximising the key maximises the score with exact integer
        arithmetic (no float rounding near ties).  Ties break toward the
        smallest ``edge_sort_key`` and then toward the earliest target —
        the order a deterministic edge-major sweep produces.  Callers must
        pass ``targets`` as a subsequence of the problem's target order so
        the generic sweep and the kernel heaps resolve ties identically.

        CT-Greedy queries all its non-exhausted targets at once; WT-Greedy
        queries a single target.  The default sweeps every positive-gain
        candidate; the array kernel answers from per-target lazy max-heaps.
        """
        wanted = set(targets)
        best: Optional[Tuple[int, Edge, Edge]] = None
        # edge-major sweep with strict improvement: ties resolve to the first
        # pair encountered, i.e. smallest edge_sort_key then target order
        # (gain_by_target lists targets in problem order on every engine)
        for edge, total, gains in self.iter_gain_breakdowns():
            for target, own in gains.items():
                if target not in wanted or own <= 0:
                    continue
                key = own * (constant - 1) + total
                if best is None or key > best[0]:
                    best = (key, target, edge)
        return best


class CoverageEngine(MarginalGainEngine):
    """Scalable engine backed by the enumerated target-subgraph index.

    Parameters
    ----------
    problem:
        The TPP instance.
    restrict_candidates:
        When true (default, the ``-R`` behaviour of Lemma 5) only edges that
        participate in some target subgraph are offered as candidates.  When
        false every remaining edge of the phase-1 graph is offered; gains are
        still answered from the index (edges outside any target subgraph
        simply report zero gain), so this setting only changes how much work
        the greedy loop does per step.
    state:
        ``"array"`` (default) uses the incremental array kernel
        (:class:`~repro.motifs.CoverageState`): O(1) gains, heap-backed
        :meth:`top_gain_edge`.  ``"set"`` uses the original hash-set
        bookkeeping (:class:`~repro.motifs.SetCoverageState`), kept as the
        slow reference implementation.  A prepared :class:`CoverageState` /
        :class:`SetCoverageState` instance (typically a cheap ``copy()`` of a
        session's pristine prototype, see
        :class:`repro.service.ProtectionService`) may be passed instead of a
        kind name; it must be layered on this problem's index and is adopted
        as-is — no enumeration and no counter rebuild happens.
    """

    def __init__(
        self,
        problem: TPPProblem,
        restrict_candidates: bool = True,
        state: Union[str, CoverageState, SetCoverageState] = "array",
    ) -> None:
        self._problem = problem
        self._restrict = restrict_candidates
        if isinstance(state, (CoverageState, SetCoverageState)):
            if state.index is not problem.build_index():
                raise EngineError(
                    "prepared coverage state is layered on a different "
                    "TargetSubgraphIndex than the problem's"
                )
            self._state: Union[CoverageState, SetCoverageState] = state
            self._state_kind = "array" if isinstance(state, CoverageState) else "set"
            self._deleted = set(state.deleted_edges)
        else:
            if state not in ("array", "set"):
                raise EngineError(
                    f"unknown state kind {state!r}; expected 'array' or 'set'"
                )
            index = problem.build_index()
            self._state = index.new_state() if state == "array" else index.new_set_state()
            self._state_kind = state
            self._deleted = set()
        # full edge set only matters for restrict_candidates=False; build lazily
        self._all_edges: Optional[Set[Edge]] = None

    @property
    def name(self) -> str:
        return "coverage" if self._state_kind == "array" else "coverage-set"

    @property
    def state_kind(self) -> str:
        """``"array"`` (incremental kernel) or ``"set"`` (reference)."""
        return self._state_kind

    @property
    def coverage_state(self) -> Union[CoverageState, SetCoverageState]:
        """The mutable coverage state this engine commits deletions into."""
        return self._state

    @property
    def supports_fast_top(self) -> bool:
        """Whether :meth:`top_gain_edge` is answered incrementally (O(log m))
        rather than by a full evaluation sweep."""
        return self._state_kind == "array"

    def candidate_edges(self) -> Set[Edge]:
        if self._restrict:
            return self._state.candidate_edges()
        if self._all_edges is None:
            self._all_edges = self._problem.phase1_graph.edge_set()
        return self._all_edges - self._deleted

    def total_gain(self, edge: Edge) -> int:
        return self._state.gain(edge)

    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        return self._state.gain_by_target(edge)

    def gain_for_target(self, edge: Edge, target: Edge) -> int:
        return self._state.gain_for_target(edge, target)

    def commit(self, edge: Edge) -> Dict[Edge, int]:
        edge = canonical_edge(*edge)
        self._deleted.add(edge)
        return self._state.delete_edge(edge)

    def total_similarity(self) -> int:
        return self._state.total_similarity()

    def similarity_of(self, target: Edge) -> int:
        return self._state.similarity_of(target)

    # ------------------------------------------------------------------
    # batched queries: kernel fast paths
    # ------------------------------------------------------------------
    def top_gain_edge(self) -> Optional[Tuple[Edge, int]]:
        if self._state_kind == "array":
            return self._state.top_gain_edge()
        return super().top_gain_edge()

    def top_k_edges(self, k: int) -> List[Tuple[Edge, int]]:
        if self._state_kind == "array":
            return self._state.top_gain_edges(k)
        return super().top_k_edges(k)

    def iter_gain_breakdowns(self) -> Iterator[Tuple[Edge, int, Dict[Edge, int]]]:
        if self._state_kind == "array":
            for edge, total in self._state.iter_positive_gains():
                yield edge, total, self._state.gain_by_target(edge)
            return
        yield from super().iter_gain_breakdowns()

    def target_gain_map(self, target: Edge) -> Dict[Edge, int]:
        if self._state_kind == "array":
            return self._state.gains_for_target(target)
        return super().target_gain_map(target)

    def best_scored_pair(
        self, targets: Sequence[Edge], constant: int
    ) -> Optional[Tuple[int, Edge, Edge]]:
        if self._state_kind == "array":
            return self._state.best_scored_pair(targets, constant)
        return super().best_scored_pair(targets, constant)


class RecountEngine(MarginalGainEngine):
    """Naive engine recounting motif instances from the working graph.

    This reproduces the cost profile of the paper's non-scalable algorithms:
    the candidate set is the whole remaining edge set and each marginal gain
    recounts the similarity of every target with the candidate edge
    temporarily removed.  The batched protocol methods intentionally keep
    their generic full-sweep defaults — that cost profile *is* what the
    Fig. 5 naive curves measure.
    """

    def __init__(self, problem: TPPProblem) -> None:
        self._problem = problem
        self._motif: MotifPattern = problem.motif
        self._targets = problem.targets
        self._working: Graph = problem.phase1_graph.copy()
        self._similarity: Dict[Edge, int] = {
            target: self._motif.count(self._working, target) for target in self._targets
        }

    @property
    def name(self) -> str:
        return "recount"

    def candidate_edges(self) -> Set[Edge]:
        return self._working.edge_set()

    def _gains(self, edge: Edge) -> Dict[Edge, int]:
        u, v = edge
        if not self._working.has_edge(u, v):
            return {}
        self._working.remove_edge(u, v)
        try:
            gains: Dict[Edge, int] = {}
            for target in self._targets:
                before = self._similarity[target]
                if before == 0:
                    continue
                after = self._motif.count(self._working, target)
                if after != before:
                    gains[target] = before - after
            return gains
        finally:
            self._working.add_edge(u, v)

    def total_gain(self, edge: Edge) -> int:
        return sum(self._gains(edge).values())

    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        return self._gains(edge)

    def commit(self, edge: Edge) -> Dict[Edge, int]:
        edge = canonical_edge(*edge)
        gains = self._gains(edge)
        self._working.remove_edge(*edge)
        for target, gain in gains.items():
            self._similarity[target] -= gain
        return gains

    def total_similarity(self) -> int:
        return sum(self._similarity.values())

    def similarity_of(self, target: Edge) -> int:
        return self._similarity[canonical_edge(*target)]


#: Names accepted by :func:`make_engine`.
ENGINE_NAMES = ("coverage", "coverage-set", "recount")

#: Either an engine name or an already-constructed engine instance.
EngineLike = Union[str, MarginalGainEngine]


def make_engine(problem: TPPProblem, engine: EngineLike = "coverage") -> MarginalGainEngine:
    """Return a marginal-gain engine by name (or pass an instance through).

    ``"coverage"`` builds the scalable :class:`CoverageEngine` on the array
    kernel (the ``-R`` algorithms); ``"coverage-set"`` builds the same engine
    on the original hash-set state (reference implementation, used by the
    differential tests and old-vs-new benchmarks); ``"recount"`` builds the
    naive :class:`RecountEngine` (the paper's base algorithms).

    An already-constructed :class:`MarginalGainEngine` is returned unchanged —
    this is how :class:`repro.service.ProtectionService` injects engines built
    on a cheap ``copy()`` of its pristine coverage state instead of letting
    every greedy call rebuild one.
    """
    if isinstance(engine, MarginalGainEngine):
        return engine
    name = engine.lower()
    if name == "coverage":
        return CoverageEngine(problem)
    if name == "coverage-set":
        return CoverageEngine(problem, state="set")
    if name == "recount":
        return RecountEngine(problem)
    raise EngineError(f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}")
