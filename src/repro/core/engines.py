"""Marginal-gain evaluation engines.

Every greedy algorithm in the paper repeatedly asks the same two questions:

* "if I delete edge ``p`` now, how many target subgraphs break (overall and
  per target)?" and
* "which edges are worth asking that question about?"

The answers can be produced two ways, and the difference between them *is*
the difference between the paper's plain algorithms and their scalable
``-R`` variants:

* :class:`RecountEngine` — the paper's non-scalable formulation: every edge
  of the current graph is a candidate and each query recounts motif
  instances from the graph.  Faithful, simple, and slow (this is what
  Figs. 5–6 measure as SGB/CT/WT-Greedy).
* :class:`CoverageEngine` — the scalable formulation of Lemma 5: target
  subgraphs are enumerated once into a :class:`~repro.motifs.CoverageState`;
  candidates are restricted to edges of target subgraphs and queries are
  answered from the inverted index.  Equivalent results, orders of magnitude
  faster (SGB/CT/WT-Greedy-R).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Set

from repro.core.model import TPPProblem
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.motifs.base import MotifPattern

__all__ = ["MarginalGainEngine", "RecountEngine", "CoverageEngine", "make_engine"]


class MarginalGainEngine(ABC):
    """Common interface of the two marginal-gain evaluation strategies."""

    @abstractmethod
    def candidate_edges(self) -> Set[Edge]:
        """Return the edges the greedy algorithm should evaluate this step."""

    @abstractmethod
    def total_gain(self, edge: Edge) -> int:
        """Return how many target subgraphs deleting ``edge`` would break now."""

    @abstractmethod
    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        """Return the per-target breakdown of :meth:`total_gain`."""

    @abstractmethod
    def commit(self, edge: Edge) -> Dict[Edge, int]:
        """Delete ``edge`` for real and return the per-target broken counts."""

    @abstractmethod
    def total_similarity(self) -> int:
        """Return the current ``s(P, T)``."""

    @abstractmethod
    def similarity_of(self, target: Edge) -> int:
        """Return the current ``s(P, t)``."""

    def gain_for_target(self, edge: Edge, target: Edge) -> int:
        """Return how many subgraphs of ``target`` deleting ``edge`` breaks now."""
        return self.gain_by_target(edge).get(canonical_edge(*target), 0)

    def is_fully_protected(self) -> bool:
        """Return whether all target subgraphs are already broken."""
        return self.total_similarity() == 0


class CoverageEngine(MarginalGainEngine):
    """Scalable engine backed by the enumerated target-subgraph index.

    Parameters
    ----------
    problem:
        The TPP instance.
    restrict_candidates:
        When true (default, the ``-R`` behaviour of Lemma 5) only edges that
        participate in some target subgraph are offered as candidates.  When
        false every remaining edge of the phase-1 graph is offered; gains are
        still answered from the index (edges outside any target subgraph
        simply report zero gain), so this setting only changes how much work
        the greedy loop does per step.
    """

    def __init__(self, problem: TPPProblem, restrict_candidates: bool = True) -> None:
        self._problem = problem
        self._restrict = restrict_candidates
        self._state = problem.build_index().new_state()
        self._deleted: Set[Edge] = set()
        self._all_edges = problem.phase1_graph.edge_set()

    def candidate_edges(self) -> Set[Edge]:
        if self._restrict:
            return self._state.candidate_edges()
        return self._all_edges - self._deleted

    def total_gain(self, edge: Edge) -> int:
        return self._state.gain(edge)

    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        return self._state.gain_by_target(edge)

    def gain_for_target(self, edge: Edge, target: Edge) -> int:
        return self._state.gain_for_target(edge, target)

    def commit(self, edge: Edge) -> Dict[Edge, int]:
        edge = canonical_edge(*edge)
        self._deleted.add(edge)
        return self._state.delete_edge(edge)

    def total_similarity(self) -> int:
        return self._state.total_similarity()

    def similarity_of(self, target: Edge) -> int:
        return self._state.similarity_of(target)


class RecountEngine(MarginalGainEngine):
    """Naive engine recounting motif instances from the working graph.

    This reproduces the cost profile of the paper's non-scalable algorithms:
    the candidate set is the whole remaining edge set and each marginal gain
    recounts the similarity of every target with the candidate edge
    temporarily removed.
    """

    def __init__(self, problem: TPPProblem) -> None:
        self._problem = problem
        self._motif: MotifPattern = problem.motif
        self._targets = problem.targets
        self._working: Graph = problem.phase1_graph.copy()
        self._similarity: Dict[Edge, int] = {
            target: self._motif.count(self._working, target) for target in self._targets
        }

    def candidate_edges(self) -> Set[Edge]:
        return self._working.edge_set()

    def _gains(self, edge: Edge) -> Dict[Edge, int]:
        u, v = edge
        if not self._working.has_edge(u, v):
            return {}
        self._working.remove_edge(u, v)
        try:
            gains: Dict[Edge, int] = {}
            for target in self._targets:
                before = self._similarity[target]
                if before == 0:
                    continue
                after = self._motif.count(self._working, target)
                if after != before:
                    gains[target] = before - after
            return gains
        finally:
            self._working.add_edge(u, v)

    def total_gain(self, edge: Edge) -> int:
        return sum(self._gains(edge).values())

    def gain_by_target(self, edge: Edge) -> Dict[Edge, int]:
        return self._gains(edge)

    def commit(self, edge: Edge) -> Dict[Edge, int]:
        edge = canonical_edge(*edge)
        gains = self._gains(edge)
        self._working.remove_edge(*edge)
        for target, gain in gains.items():
            self._similarity[target] -= gain
        return gains

    def total_similarity(self) -> int:
        return sum(self._similarity.values())

    def similarity_of(self, target: Edge) -> int:
        return self._similarity[canonical_edge(*target)]


#: Names accepted by :func:`make_engine`.
ENGINE_NAMES = ("coverage", "recount")


def make_engine(problem: TPPProblem, engine: str = "coverage") -> MarginalGainEngine:
    """Return a marginal-gain engine by name.

    ``"coverage"`` builds the scalable :class:`CoverageEngine` (the ``-R``
    algorithms); ``"recount"`` builds the naive :class:`RecountEngine` (the
    paper's base algorithms).
    """
    name = engine.lower()
    if name == "coverage":
        return CoverageEngine(problem)
    if name == "recount":
        return RecountEngine(problem)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}")
