"""CT-Greedy: the Cross-Target greedy protector selection for MLBT.

Algorithm 2 of the paper.  Every target ``t`` owns a sub budget ``k_t``
(produced by a budget division, see :mod:`repro.core.budget`).  At each step
the algorithm scores every pair ``(t, p)`` of a non-exhausted target and a
candidate edge with

``Δ_t^p = [subgraphs of t broken by p] + [subgraphs of other targets broken by p] / C``

and charges the winning deletion to the winning target's sub budget.  The
cross-target setting is submodular maximisation over a partition matroid, so
the greedy achieves a 1/2 approximation (Theorem 4).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.core.budget import make_budget_division
from repro.core.engines import CoverageEngine, EngineLike, make_engine
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.selection import Stopwatch, edge_sort_key
from repro.exceptions import BudgetError
from repro.graphs.graph import Edge

__all__ = ["ct_greedy"]


def ct_greedy(
    problem: TPPProblem,
    budget: int,
    budget_division: Union[str, Mapping[Edge, int]] = "tbd",
    engine: EngineLike = "coverage",
) -> ProtectionResult:
    """Select protectors with the cross-target greedy under per-target budgets.

    Parameters
    ----------
    problem:
        The TPP instance.
    budget:
        Global budget ``k``; the division strategy splits it into ``k_t``.
    budget_division:
        ``"tbd"``, ``"dbd"``, ``"uniform"`` or an explicit target -> budget
        mapping.
    engine:
        ``"coverage"`` (CT-Greedy-R, array kernel), ``"coverage-set"``
        (reference hash-set state), ``"recount"`` (CT-Greedy), or an
        already-constructed engine instance.

    Returns
    -------
    ProtectionResult
        With ``budget_division`` and the per-target ``allocation`` filled in.
    """
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    stopwatch = Stopwatch()
    division = make_budget_division(problem, budget, budget_division)
    gain_engine = make_engine(problem, engine)
    constant = max(problem.constant, 1)
    algorithm = (
        "CT-Greedy-R" if isinstance(gain_engine, CoverageEngine) else "CT-Greedy"
    )
    if isinstance(budget_division, str):
        algorithm = f"{algorithm}:{budget_division.upper()}"

    allocation: Dict[Edge, List[Edge]] = {target: [] for target in problem.targets}
    exhausted: Set[Edge] = {
        target for target in problem.targets if division.get(target, 0) == 0
    }
    protectors: List[Edge] = []
    trace: List[int] = [gain_engine.total_similarity()]

    while True:
        active_targets = [t for t in problem.targets if t not in exhausted]
        if not active_targets or len(protectors) >= budget:
            break
        # the argmax over (active target, candidate edge) pairs scored
        # Δ_t^p = own + (total - own) / C; the kernel engine answers from
        # per-target lazy max-heaps (sublinear in the candidate count),
        # other engines run a deterministic full sweep — identical results
        best: Optional[Tuple[int, Edge, Edge]] = gain_engine.best_scored_pair(
            active_targets, constant
        )
        if best is None:
            # no remaining edge has an own-gain for any active target, so
            # every positive edge scores Δ_t^p = total / C for every active
            # target: take the max-total edge and charge it to the active
            # target with the most remaining sub-budget (deterministic
            # tie-break by edge_sort_key), keeping the tightest sub-budgets
            # free for deletions that still break their own subgraphs
            top = gain_engine.top_gain_edge()
            if top is None:
                break
            target = min(
                active_targets,
                key=lambda t: (
                    len(allocation[t]) - division.get(t, 0),
                    edge_sort_key(t),
                ),
            )
            edge = top[0]
        else:
            _, target, edge = best
        gain_engine.commit(edge)
        protectors.append(edge)
        allocation[target].append(edge)
        trace.append(gain_engine.total_similarity())
        if len(allocation[target]) >= division.get(target, 0):
            exhausted.add(target)

    return ProtectionResult(
        algorithm=algorithm,
        motif=problem.motif.name,
        budget=budget,
        protectors=tuple(protectors),
        similarity_trace=tuple(trace),
        initial_similarity=problem.initial_similarity(),
        budget_division=dict(division),
        allocation={t: tuple(edges) for t, edges in allocation.items()},
        runtime_seconds=stopwatch.elapsed(),
        extra={"engine": gain_engine.name},
    )
