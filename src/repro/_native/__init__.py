"""Native (C) implementation of the coverage-kernel hot loops.

The package ships one hand-written C file (``coverage_kernel.c``) and a
:mod:`ctypes` loader (:mod:`repro._native.build`) that compiles it on
demand into a per-user cache keyed by the source SHA-256 — or reuses the
optional setuptools extension artifact when one was built at install
time.  :class:`~repro.motifs.coverage.CoverageState` dispatches to the
loaded kernel when ``kernel="native"`` resolves; the numpy path remains
the executable reference and the automatic fallback
(``REPRO_NATIVE=0`` forces it).
"""

from repro._native.build import (
    KERNEL_NAMES,
    NativeKernel,
    build_library,
    find_compiler,
    kernel_cache_dir,
    kernel_source_path,
    load_kernel,
    native_available,
    native_disabled,
    resolve_kernel,
)

__all__ = [
    "KERNEL_NAMES",
    "NativeKernel",
    "build_library",
    "find_compiler",
    "kernel_cache_dir",
    "kernel_source_path",
    "load_kernel",
    "native_available",
    "native_disabled",
    "resolve_kernel",
]
