/* Native coverage kernel: the three hot loops of CoverageState.
 *
 * This file is deliberately dependency-free C99 over the exact flat
 * buffers the Python kernel already owns (C `long` == numpy NP_LONG,
 * `unsigned char` == the uint8 alive bitmask), so the Python and native
 * paths share one memory layout and can be differential-tested for
 * bit-identical behaviour.
 *
 * Heap representation: a binary min-heap over parallel (keys, ids)
 * arrays ordered lexicographically by (key, id) — exactly the total
 * order Python's heapq applies to its (-gain, edge_id) tuples.  Because
 * every (key, id) pair is distinct (ids are unique within a heap), the
 * validated pop sequence depends only on the heap *contents*, never on
 * the internal array layout, which is what makes this implementation
 * observably identical to heapq.
 *
 * Compiled on demand by repro._native.build (ctypes, per-user cache
 * keyed by the SHA-256 of this source) or ahead of time as the optional
 * setuptools extension; both load paths bind the same symbols.
 */

#if defined(_WIN32)
#define REPRO_EXPORT __declspec(dllexport)
#else
#define REPRO_EXPORT __attribute__((visibility("default")))
#endif

/* PyInit shim so the file can double as an "extension module" for the
 * optional setuptools build: the resulting artifact is still loaded via
 * ctypes (never imported), the entry point only has to exist so wheel
 * builds do not reject the module. */
REPRO_EXPORT void *PyInit__coverage_kernel(void) { return 0; }

/* ------------------------------------------------------------------ */
/* kill walk                                                           */
/* ------------------------------------------------------------------ */

/* Delete `edge_id`: kill every alive instance containing it, decrement
 * the per-edge and per-(edge, target) live counters of every sibling
 * membership, maintain the per-target alive counts, and accumulate the
 * per-target broken counts into `broken`.  The caller keeps `broken`
 * all-zero between calls (it re-zeroes exactly the touched entries), so
 * no O(n_targets) clear happens here; the indices of the touched
 * entries come back through `touched` (touched[0] = count, then the
 * target indices in ascending order).  Returns the total number of
 * instances killed.
 *
 * The buffer addresses arrive packed in `ctx` (one pointer argument
 * instead of twelve: per-argument ctypes conversion is measurable at
 * this call rate).  Layout:
 *   ctx[0] edge_indptr   ctx[1] edge_inst_ids  ctx[2] inst_indptr
 *   ctx[3] inst_edge_ids ctx[4] inst_slot      ctx[5] inst_target_idx
 *   ctx[6] alive         ctx[7] gain           ctx[8] et_count
 *   ctx[9] alive_by_tidx ctx[10] broken        ctx[11] touched */
REPRO_EXPORT long repro_kill_instances(const long *ctx, long edge_id)
{
    const long *edge_indptr = (const long *) ctx[0];
    const long *edge_inst_ids = (const long *) ctx[1];
    const long *inst_indptr = (const long *) ctx[2];
    const long *inst_edge_ids = (const long *) ctx[3];
    const long *inst_slot = (const long *) ctx[4];
    const long *inst_target_idx = (const long *) ctx[5];
    unsigned char *alive = (unsigned char *) ctx[6];
    long *gain = (long *) ctx[7];
    long *et_count = (long *) ctx[8];
    long *alive_by_tidx = (long *) ctx[9];
    long *broken = (long *) ctx[10];
    long *touched = (long *) ctx[11];
    long killed = 0;
    long n_touched = 0;
    long position, stop, i;

    stop = edge_indptr[edge_id + 1];
    for (position = edge_indptr[edge_id]; position < stop; position++) {
        long instance_id = edge_inst_ids[position];
        long tidx, lo, hi, member;
        if (!alive[instance_id])
            continue;
        alive[instance_id] = 0;
        tidx = inst_target_idx[instance_id];
        if (broken[tidx] == 0)
            touched[1 + n_touched++] = tidx;
        broken[tidx] += 1;
        alive_by_tidx[tidx] -= 1;
        killed += 1;
        lo = inst_indptr[instance_id];
        hi = inst_indptr[instance_id + 1];
        for (member = lo; member < hi; member++) {
            gain[inst_edge_ids[member]] -= 1;
            et_count[inst_slot[member]] -= 1;
        }
    }
    /* ascending target order (insertion sort: the list is tiny and
     * near-sorted, instances are stored grouped by target) */
    for (i = 2; i <= n_touched; i++) {
        long value = touched[i];
        long j = i - 1;
        while (j >= 1 && touched[j] > value) {
            touched[j + 1] = touched[j];
            j--;
        }
        touched[j + 1] = value;
    }
    touched[0] = n_touched;
    return killed;
}

/* ------------------------------------------------------------------ */
/* lexicographic (key, id) binary min-heap helpers                     */
/* ------------------------------------------------------------------ */

static int heap_less(const long *keys, const long *ids, long a, long b)
{
    if (keys[a] != keys[b])
        return keys[a] < keys[b];
    return ids[a] < ids[b];
}

static void heap_swap(long *keys, long *ids, long a, long b)
{
    long key = keys[a], id = ids[a];
    keys[a] = keys[b];
    ids[a] = ids[b];
    keys[b] = key;
    ids[b] = id;
}

static void heap_sift_down(long *keys, long *ids, long size, long root)
{
    for (;;) {
        long child = 2 * root + 1;
        if (child >= size)
            return;
        if (child + 1 < size && heap_less(keys, ids, child + 1, child))
            child += 1;
        if (!heap_less(keys, ids, child, root))
            return;
        heap_swap(keys, ids, root, child);
        root = child;
    }
}

static void heap_sift_up(long *keys, long *ids, long node)
{
    while (node > 0) {
        long parent = (node - 1) / 2;
        if (!heap_less(keys, ids, node, parent))
            return;
        heap_swap(keys, ids, node, parent);
        node = parent;
    }
}

/* Floyd heap construction over `size` (key, id) pairs. */
REPRO_EXPORT void repro_heap_init(long *keys, long *ids, long size)
{
    long root;
    for (root = size / 2 - 1; root >= 0; root--)
        heap_sift_down(keys, ids, size, root);
}

/* Pop the root (caller reads keys[0]/ids[0] first); returns the new size. */
REPRO_EXPORT long repro_heap_pop(long *keys, long *ids, long size)
{
    size -= 1;
    if (size > 0) {
        keys[0] = keys[size];
        ids[0] = ids[size];
        heap_sift_down(keys, ids, size, 0);
    }
    return size;
}

/* Push one (key, id); the caller guarantees capacity.  Returns the new
 * size. */
REPRO_EXPORT long repro_heap_push(long *keys, long *ids, long size,
                                  long key, long id)
{
    keys[size] = key;
    ids[size] = id;
    heap_sift_up(keys, ids, size);
    return size + 1;
}

/* ------------------------------------------------------------------ */
/* lazy-heap validation loops                                          */
/* ------------------------------------------------------------------ */

/* Validate the top of the global max-gain heap (keys hold -gain, so the
 * min-heap root is the max-gain candidate).  Pops dead entries, repairs
 * stale keys in place (sound: gains only ever decrease), and stops at
 * the first root whose key matches the live counter.  Writes the
 * validated edge id and its gain into out[0]/out[1] (out[0] = -1 when
 * the heap runs empty) and returns the new heap size. */
REPRO_EXPORT long repro_top_validate(long *keys, long *ids, long size,
                                     const long *gain, long *out)
{
    while (size > 0) {
        long edge_id = ids[0];
        long current = gain[edge_id];
        if (current <= 0) {
            size = repro_heap_pop(keys, ids, size);
        } else if (-keys[0] != current) {
            keys[0] = -current;
            heap_sift_down(keys, ids, size, 0);
        } else {
            out[0] = edge_id;
            out[1] = current;
            return size;
        }
    }
    out[0] = -1;
    out[1] = 0;
    return 0;
}

/* Live own-gain of (edge_id, tidx): one scan of the edge's row of the
 * per-(edge, target) counter matrix; rows are tidx-ascending so the
 * scan stops early.  Mirrors CoverageState._own_gain exactly. */
static long own_gain(const long *et_indptr, const long *et_tidx,
                     const long *et_count, long edge_id, long tidx)
{
    long slot, stop = et_indptr[edge_id + 1];
    for (slot = et_indptr[edge_id]; slot < stop; slot++) {
        long entry = et_tidx[slot];
        if (entry == tidx)
            return et_count[slot];
        if (entry > tidx)
            break;
    }
    return 0;
}

/* Build one target's best_scored_pair heap: count the live own-gain of
 * every edge appearing in the target's alive instances (`start..stop` is
 * the target's instance-id range; instance ids are grouped by target),
 * then heapify (key, id) = (-(own * weight + total), edge id) in place.
 *
 * `counts` is an all-zero n_edges scratch the caller reuses across
 * builds; it is re-zeroed on the way out.  `ids` doubles as the
 * first-touch edge list during counting, so only the used prefix is
 * written.  Heap *contents* are what the validation order depends on,
 * so the first-touch insertion order is immaterial.  Returns the heap
 * size. */
REPRO_EXPORT long repro_pair_heap_build(
    const long *inst_indptr, const long *inst_edge_ids,
    const unsigned char *alive, long start, long stop,
    const long *gain, long weight, long *counts, long *keys, long *ids)
{
    long n = 0;
    long inst, member, i;
    for (inst = start; inst < stop; inst++) {
        long lo, hi;
        if (!alive[inst])
            continue;
        lo = inst_indptr[inst];
        hi = inst_indptr[inst + 1];
        for (member = lo; member < hi; member++) {
            long edge_id = inst_edge_ids[member];
            if (counts[edge_id] == 0)
                ids[n++] = edge_id;
            counts[edge_id] += 1;
        }
    }
    for (i = 0; i < n; i++) {
        long edge_id = ids[i];
        keys[i] = -(counts[edge_id] * weight + gain[edge_id]);
        counts[edge_id] = 0;
    }
    repro_heap_init(keys, ids, n);
    return n;
}

/* Validate the best_scored_pair heaps of the `n` queried targets and
 * return the arg-max pair across all of them in one call (this is the
 * CT/WT greedy inner loop: per-target ctypes round-trips would dominate
 * the walltime otherwise).
 *
 * `keys_tab`/`ids_tab`/`sizes` are tables indexed by target index; the
 * query lists the target indices to visit in `tidxs[0..n)`.  Each heap
 * holds keys of -(own * weight + total) with weight = constant - 1;
 * entries whose own gain dropped to zero are popped, stale keys are
 * recomputed from the live counters and sifted back (keys only ever
 * decrease), and the first exact match is the current arg-max pair for
 * that target.  New heap sizes are written back into `sizes`.
 *
 * Across targets the best pair wins by the highest key, ties toward the
 * smallest edge id and then the earliest query position — identical to
 * the numpy path's left-to-right strict-improvement sweep.  Writes
 * out[0] = key, out[1] = edge id, out[2] = query position and returns
 * the winning query position (-1 when every queried heap ran empty).
 *
 * Like the kill walk, the buffer addresses arrive packed in `ctx`:
 *   ctx[0] keys_tab  ctx[1] ids_tab  ctx[2] sizes      ctx[3] tidxs
 *   ctx[4] gain      ctx[5] et_indptr ctx[6] et_tidx   ctx[7] et_count
 *   ctx[8] out */
REPRO_EXPORT long repro_pair_validate_many(const long *ctx, long n,
                                           long weight)
{
    long **keys_tab = (long **) ctx[0];
    long **ids_tab = (long **) ctx[1];
    long *sizes = (long *) ctx[2];
    const long *tidxs = (const long *) ctx[3];
    const long *gain = (const long *) ctx[4];
    const long *et_indptr = (const long *) ctx[5];
    const long *et_tidx = (const long *) ctx[6];
    const long *et_count = (const long *) ctx[7];
    long *out = (long *) ctx[8];
    long best_key = -1, best_id = -1, best_pos = -1;
    long i;

    for (i = 0; i < n; i++) {
        long tidx = tidxs[i];
        long *keys = keys_tab[tidx];
        long *ids = ids_tab[tidx];
        long size = sizes[tidx];
        long top_key = -1, top_id = -1;
        while (size > 0) {
            long edge_id = ids[0];
            long own = own_gain(et_indptr, et_tidx, et_count, edge_id, tidx);
            long key;
            if (own <= 0) {
                size = repro_heap_pop(keys, ids, size);
                continue;
            }
            key = own * weight + gain[edge_id];
            if (-keys[0] == key) {
                top_key = key;
                top_id = edge_id;
                break;
            }
            keys[0] = -key;
            heap_sift_down(keys, ids, size, 0);
        }
        sizes[tidx] = size;
        if (top_key < 0)
            continue;
        if (best_pos < 0 || top_key > best_key ||
            (top_key == best_key && top_id < best_id)) {
            best_key = top_key;
            best_id = top_id;
            best_pos = i;
        }
    }
    out[0] = best_key;
    out[1] = best_id;
    out[2] = best_pos;
    return best_pos;
}
