"""Build + load the native coverage kernel behind :mod:`ctypes`.

This module is the **only** place in the package allowed to import
``ctypes`` (reprolint rule R7 enforces the boundary).  It provides:

* :func:`find_compiler` — locate a C compiler (``$CC``, the compiler
  Python was built with, then ``cc``/``gcc``/``clang`` on ``$PATH``).
* :func:`build_library` — compile ``coverage_kernel.c`` into a per-user
  cache directory, keyed by the SHA-256 of the source so editing the C
  file (or upgrading the package) transparently recompiles, while
  repeat imports reuse the cached artifact.
* :func:`load_kernel` — resolve a :class:`NativeKernel` once per
  process: a prebuilt setuptools extension artifact next to the package
  if one exists (never *imported* — always opened via ``ctypes``),
  otherwise the cache build.  No compiler (or ``REPRO_NATIVE=0``) means
  ``None`` — callers fall back to the numpy kernel; the first silent
  fallback is logged once at INFO level.
* :func:`resolve_kernel` — turn a user-facing selector (``"auto"`` /
  ``"native"`` / ``"numpy"`` / ``None``) into the effective kernel
  name, raising :class:`~repro.exceptions.NativeKernelError` only for
  an *explicit* ``"native"`` request that cannot be satisfied.

No new runtime dependencies: everything here is stdlib.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shutil
import subprocess
import sysconfig
import tempfile
import threading
from pathlib import Path
from typing import List, Optional

from repro.exceptions import NativeKernelError

__all__ = [
    "KERNEL_NAMES",
    "NativeKernel",
    "build_library",
    "find_compiler",
    "kernel_cache_dir",
    "kernel_source_path",
    "load_kernel",
    "native_available",
    "native_disabled",
    "resolve_kernel",
]

logger = logging.getLogger("repro._native")

#: User-facing kernel selectors accepted by ``CoverageState`` / the CLI.
KERNEL_NAMES = ("auto", "native", "numpy")

#: ``REPRO_NATIVE`` values that force the numpy fallback.
_DISABLED_VALUES = frozenset({"0", "false", "off", "no"})

_c_long = ctypes.c_long
_c_void_p = ctypes.c_void_p


def native_disabled() -> bool:
    """Return whether ``REPRO_NATIVE`` forces the numpy fallback."""
    return os.environ.get("REPRO_NATIVE", "").strip().lower() in _DISABLED_VALUES


def kernel_source_path() -> Path:
    """Return the path of the bundled ``coverage_kernel.c`` source."""
    return Path(__file__).resolve().with_name("coverage_kernel.c")


def kernel_cache_dir() -> Path:
    """Return the per-user cache directory for compiled kernels.

    ``$REPRO_NATIVE_CACHE`` overrides the default
    ``~/.cache/repro-tpp/native`` (tests point it at a tmpdir).
    """
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-tpp" / "native"


def find_compiler() -> Optional[List[str]]:
    """Return the C compiler command to use, or ``None`` if there is none.

    Order: ``$CC``, the compiler recorded in Python's build config, then
    ``cc`` / ``gcc`` / ``clang`` on ``$PATH``.  The result is the argv
    prefix (the env/config entries may carry flags, e.g. ``"gcc
    -pthread"``).
    """
    candidates: List[List[str]] = []
    env_cc = os.environ.get("CC")
    if env_cc:
        candidates.append(env_cc.split())
    config_cc = sysconfig.get_config_var("CC")
    if config_cc:
        candidates.append(str(config_cc).split())
    for name in ("cc", "gcc", "clang"):
        candidates.append([name])
    for command in candidates:
        if command and shutil.which(command[0]):
            return command
    return None


def _source_digest(source: Path) -> str:
    return hashlib.sha256(source.read_bytes()).hexdigest()


def _shared_suffix() -> str:
    if os.name == "nt":
        return ".dll"
    return ".so"


def build_library(force: bool = False) -> Path:
    """Compile the kernel into the per-user cache; return the artifact path.

    The artifact name embeds the first 16 hex digits of the source
    SHA-256, so a changed source never collides with a stale build and a
    stale cache entry is simply ignored (recompiled under its new key).
    Compilation goes through a temp file + ``os.replace`` so concurrent
    builders race benignly.

    Raises
    ------
    NativeKernelError
        If no C compiler is available or compilation fails.
    """
    source = kernel_source_path()
    digest = _source_digest(source)
    cache_dir = kernel_cache_dir()
    artifact = cache_dir / f"coverage_kernel-{digest[:16]}{_shared_suffix()}"
    if artifact.exists() and not force:
        return artifact
    compiler = find_compiler()
    if compiler is None:
        raise NativeKernelError(
            "no C compiler found (tried $CC, the Python build compiler, "
            "cc/gcc/clang); set CC or install a toolchain, or use the "
            "numpy kernel"
        )
    cache_dir.mkdir(parents=True, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(
        suffix=_shared_suffix(), prefix="coverage_kernel-", dir=str(cache_dir)
    )
    os.close(fd)
    command = compiler + [
        "-O3",
        "-fPIC",
        "-shared",
        "-o",
        temp_path,
        str(source),
    ]
    try:
        completed = subprocess.run(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        if completed.returncode != 0:
            raise NativeKernelError(
                f"native kernel compilation failed ({' '.join(command)}):\n"
                f"{completed.stdout}"
            )
        os.replace(temp_path, artifact)
    finally:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
    return artifact


def _prebuilt_library() -> Optional[Path]:
    """Return the setuptools-built extension artifact next to the package.

    ``pip install`` with a toolchain compiles the ``optional=True``
    extension ``repro._native._coverage_kernel``; the resulting shared
    object lives beside this module.  It is opened with ``ctypes`` and
    never imported — the C file has no real CPython module init.
    """
    package_dir = Path(__file__).resolve().parent
    for candidate in sorted(package_dir.glob("_coverage_kernel*")):
        if candidate.suffix in (".so", ".pyd", ".dll", ".dylib"):
            return candidate
    return None


class NativeKernel:
    """The bound symbols of one loaded coverage-kernel shared library.

    Every symbol is bound with explicit ``argtypes``/``restype`` (rule
    R7); pointer arguments are ``c_void_p`` so call sites pass the cached
    ``ndarray.ctypes.data`` integers without per-call adapter objects.
    """

    def __init__(self, library_path: Path) -> None:
        self.library_path = library_path
        lib = ctypes.CDLL(str(library_path))
        self._lib = lib

        kill_instances = lib.repro_kill_instances
        kill_instances.argtypes = [_c_void_p, _c_long]
        kill_instances.restype = _c_long
        self.kill_instances = kill_instances

        heap_init = lib.repro_heap_init
        heap_init.argtypes = [_c_void_p, _c_void_p, _c_long]
        heap_init.restype = None
        self.heap_init = heap_init

        heap_pop = lib.repro_heap_pop
        heap_pop.argtypes = [_c_void_p, _c_void_p, _c_long]
        heap_pop.restype = _c_long
        self.heap_pop = heap_pop

        heap_push = lib.repro_heap_push
        heap_push.argtypes = [_c_void_p, _c_void_p, _c_long, _c_long, _c_long]
        heap_push.restype = _c_long
        self.heap_push = heap_push

        top_validate = lib.repro_top_validate
        top_validate.argtypes = [_c_void_p, _c_void_p, _c_long, _c_void_p, _c_void_p]
        top_validate.restype = _c_long
        self.top_validate = top_validate

        pair_heap_build = lib.repro_pair_heap_build
        pair_heap_build.argtypes = (
            [_c_void_p] * 3
            + [_c_long] * 2
            + [_c_void_p, _c_long]
            + [_c_void_p] * 3
        )
        pair_heap_build.restype = _c_long
        self.pair_heap_build = pair_heap_build

        pair_validate_many = lib.repro_pair_validate_many
        pair_validate_many.argtypes = [_c_void_p, _c_long, _c_long]
        pair_validate_many.restype = _c_long
        self.pair_validate_many = pair_validate_many


_LOAD_LOCK = threading.Lock()
_LOADED: Optional[NativeKernel] = None
_LOAD_FAILED = False
_FALLBACK_LOGGED = False


def load_kernel() -> Optional[NativeKernel]:
    """Return the process-wide :class:`NativeKernel`, or ``None``.

    Resolution happens once per process (the failure is cached too):
    ``REPRO_NATIVE=0`` → ``None``; a prebuilt extension artifact → load
    it; otherwise compile into the user cache.  Any failure (no
    compiler, bad toolchain, unloadable artifact) degrades to ``None``
    with a one-time INFO log — never an exception.
    """
    global _LOADED, _LOAD_FAILED, _FALLBACK_LOGGED
    if native_disabled():
        return None
    if _LOADED is not None:
        return _LOADED
    if _LOAD_FAILED:
        return None
    with _LOAD_LOCK:
        if _LOADED is not None or _LOAD_FAILED:
            return _LOADED
        try:
            library = _prebuilt_library()
            if library is not None:
                kernel = NativeKernel(library)
            else:
                kernel = NativeKernel(build_library())
        except (NativeKernelError, OSError) as error:
            _LOAD_FAILED = True
            if not _FALLBACK_LOGGED:
                _FALLBACK_LOGGED = True
                logger.info(
                    "native coverage kernel unavailable (%s); "
                    "falling back to the numpy kernel",
                    error,
                )
            return None
        _LOADED = kernel
        return kernel


def native_available() -> bool:
    """Return whether the native kernel can be loaded in this process."""
    return load_kernel() is not None


def resolve_kernel(kernel: Optional[str]) -> str:
    """Resolve a kernel selector to the effective ``"native"``/``"numpy"``.

    ``None``/``"auto"`` prefer native when loadable, else numpy.
    ``"native"`` demands it: unavailability raises
    :class:`NativeKernelError` — except under ``REPRO_NATIVE=0``, where
    the kill switch wins silently (so a forced-fallback run of a suite
    that requests ``"native"`` explicitly still exercises the numpy
    path instead of erroring).
    """
    if kernel is None or kernel == "auto":
        return "native" if native_available() else "numpy"
    if kernel == "numpy":
        return "numpy"
    if kernel == "native":
        if native_disabled():
            return "numpy"
        if not native_available():
            raise NativeKernelError(
                "kernel='native' requested but the native coverage kernel "
                "could not be loaded (no C compiler / build failure); use "
                "kernel='auto' to fall back automatically"
            )
        return "native"
    raise NativeKernelError(
        f"unknown kernel {kernel!r}; valid kernels: {', '.join(KERNEL_NAMES)}"
    )
