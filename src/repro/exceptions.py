"""Exception hierarchy for the ``repro`` package.

Every error raised on purpose by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations

from typing import Iterable, Optional


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Base class for graph-substrate errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by the caller is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by the caller is not present in the graph."""

    def __init__(self, edge: object) -> None:
        super().__init__(f"edge {edge!r} is not in the graph")
        self.edge = edge


class GraphFormatError(GraphError, ValueError):
    """An edge-list file or serialized graph could not be parsed."""


class SelfLoopError(GraphError, ValueError):
    """A self-loop ``(u, u)`` was passed where a proper edge is required."""


class GraphGenerationError(GraphError, ValueError):
    """A synthetic-graph generator was called with invalid parameters."""


class AssemblyModeError(GraphError, ValueError):
    """An unknown CSR assembly mode was requested for ``IndexedGraph``."""


class MotifError(ReproError):
    """Base class for motif / target-subgraph errors."""


class UnknownMotifError(MotifError, KeyError):
    """A motif name was requested that is not in the registry."""

    def __init__(self, name: object, known: Iterable[str]) -> None:
        super().__init__(
            f"unknown motif {name!r}; known motifs: {sorted(known)}"
        )
        self.name = name
        self.known = tuple(sorted(known))


class MotifDefinitionError(MotifError, ValueError):
    """A parametrised motif was constructed with invalid parameters."""


class TPPError(ReproError):
    """Base class for errors in the TPP core (problem setup / solving)."""


class EngineError(TPPError, ValueError):
    """A gain engine was selected or configured inconsistently."""


class NativeKernelError(TPPError, RuntimeError):
    """The native coverage kernel was requested but cannot be provided.

    Raised only when ``kernel="native"`` is selected *explicitly* and the
    shared library can neither be found prebuilt nor compiled (no C
    compiler, compilation failure).  The default ``kernel="auto"`` never
    raises — it falls back to the numpy kernel with a one-time log line.
    """


class ConstantError(TPPError, ValueError):
    """The dissimilarity constant ``C`` violates ``C >= s(∅, T)``."""


class InvalidTargetError(TPPError, ValueError):
    """A target link is invalid (e.g. not an edge of the original graph)."""


class BudgetError(TPPError, ValueError):
    """A budget or budget division is invalid (negative, inconsistent...)."""


class DeltaError(TPPError, ValueError):
    """An edge delta cannot be applied to the live index.

    Raised when a batch of graph updates is inconsistent with the state it
    is applied to: inserting an edge that already exists (or a self-loop,
    or a hidden target link), deleting an edge that is absent, or shrinking
    the dissimilarity constant ``C`` below the post-delta similarity.
    """


class PredictionError(ReproError):
    """Base class for link-prediction / attack-simulation errors."""


class PredictorConfigError(PredictionError, ValueError):
    """A link predictor was constructed with invalid parameters."""


class AnonymizationError(ReproError):
    """Base class for anonymization-baseline errors."""


class PerturbationError(AnonymizationError, ValueError):
    """An anonymization perturbation was configured with invalid parameters."""


class UtilityError(ReproError):
    """Base class for graph-utility computation errors."""


class DatasetError(ReproError):
    """Base class for dataset loading / generation errors."""


class PersistenceError(ReproError):
    """Base class for index-snapshot persistence errors."""


class SnapshotFormatError(PersistenceError, ValueError):
    """A snapshot file could not be read back.

    Raised on a bad magic marker, an unsupported format version, a
    truncated or corrupted payload, or inconsistent flat arrays — anything
    that means the bytes on disk cannot be trusted to reproduce the index
    that was saved.
    """


class SnapshotMismatchError(PersistenceError, ValueError):
    """A snapshot does not describe the given ``(graph, targets, motif)``.

    Raised when a loaded snapshot's content hash disagrees with the live
    objects it is checked against — a stale snapshot (the graph, targets,
    motif or constant changed since it was written) must never silently
    serve wrong gains.
    """


class ServerError(ReproError):
    """Base class for HTTP serving-layer errors (:mod:`repro.server`)."""


class ServerProtocolError(ServerError, ValueError):
    """An HTTP request or response violates the wire protocol.

    Raised while parsing a malformed request line, header block or body —
    anything the minimal HTTP/1.1 front cannot interpret.  The server
    answers such requests with ``400 Bad Request``.
    """


class PayloadTooLargeError(ServerProtocolError):
    """A request body exceeds the server's byte limit.

    A well-formed request that is simply too big is distinguishable from a
    malformed one, so the server answers ``413 Payload Too Large`` instead
    of ``400`` — a client seeing 413 should shrink the request, not fix
    its syntax.  Carries the declared ``content_length`` and the ``limit``
    it exceeded.
    """

    def __init__(self, content_length: int, limit: int) -> None:
        super().__init__(
            f"request body of {content_length} bytes exceeds the "
            f"{limit}-byte limit"
        )
        self.content_length = content_length
        self.limit = limit


class ServerOverloadedError(ServerError):
    """The serving front refused a request under backpressure.

    Raised client-side on a ``429 Too Many Requests`` (the bounded
    admission queue is full) or ``503 Service Unavailable`` (the server is
    draining before shutdown) response.  Carries the HTTP ``status`` and
    the server's suggested ``retry_after`` seconds, so callers can back
    off instead of hammering a saturated replica.
    """

    def __init__(self, status: int, reason: str, retry_after: float = 1.0) -> None:
        super().__init__(f"server refused the request ({status}): {reason}")
        self.status = status
        self.retry_after = retry_after


class ArtifactNotFoundError(ServerError, KeyError):
    """A content hash does not name any published artifact in the store."""

    def __init__(self, content_hash: object) -> None:
        super().__init__(
            f"no published artifact with content hash {content_hash!r}"
        )
        self.content_hash = content_hash


class ExperimentError(ReproError):
    """Base class for experiment-harness errors."""


class ShardError(ExperimentError):
    """A sharded session could not be configured or answer atomically.

    Raised by :class:`~repro.service.sharding.ShardedProtectionService`
    when the shard layout is invalid (``shards < 1``, duplicate targets,
    inconsistent restored shards) or when any shard fails mid
    scatter-gather — the whole request fails with this error and no
    partial merge is ever returned.  ``shard`` names the failing shard
    index when one is known (``None`` for layout errors).
    """

    def __init__(self, message: str, shard: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard = shard
