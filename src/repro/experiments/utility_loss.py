"""Utility-loss experiments (Tables III, IV and V).

For every motif and every greedy method, the protector set is selected, the
released graph is built (targets plus protectors removed) and the utility
loss ratio against the original graph is averaged over the evaluated metrics
(Table II).  On Arenas-scale graphs the budget is pushed to full protection
(``k = k*``), mirroring Tables III/IV; on DBLP-scale graphs a fixed budget is
used and only the scalable metrics are evaluated, mirroring Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.model import TPPProblem
from repro.datasets.registry import load_dataset
from repro.datasets.targets import sample_random_targets
from repro.experiments.config import ExperimentConfig
from repro.graphs.graph import Graph
from repro.service import ProtectionRequest, ProtectionService
from repro.service.registry import is_greedy_method
from repro.utility.loss import compare_graphs

__all__ = ["UtilityLossTable", "run_utility_loss"]


@dataclass(frozen=True)
class UtilityLossTable:
    """Average utility loss (in percent) per motif and method.

    ``values[motif][method]`` is the mean utility loss ratio (× 100) over the
    repetitions; ``phase1_only[motif]`` is the loss of the graph that only
    removed the targets (the paper's ``G \\ T`` column, labelled
    "SGD-Greedy(-R)" baseline column in Tables III-V is the loss *including*
    protector deletions — the target-only column is provided separately here
    for completeness).
    """

    dataset: str
    num_targets: int
    metrics: Tuple[str, ...]
    values: Mapping[str, Mapping[str, float]]
    phase1_only: Mapping[str, float]
    budgets_used: Mapping[str, Mapping[str, float]]

    def methods(self) -> Tuple[str, ...]:
        """Return the method (column) names."""
        first = next(iter(self.values.values()), {})
        return tuple(first)

    def as_rows(self) -> List[Tuple]:
        """Return one row per motif: ``(motif, loss per method...)``."""
        methods = self.methods()
        return [
            (motif, *(self.values[motif][m] for m in methods)) for motif in self.values
        ]


def run_utility_loss(
    config: ExperimentConfig,
    budget: Optional[int] = None,
    metrics: Optional[Sequence[str]] = None,
    methods: Optional[Sequence[str]] = None,
    graph: Optional[Graph] = None,
    path_length_sample: Optional[int] = None,
) -> UtilityLossTable:
    """Run the Tables III-V experiment.

    Parameters
    ----------
    config:
        Shared experiment parameters.
    budget:
        Fixed deletion budget; ``None`` means "protect fully" (budget large
        enough for the greedy to stop on its own), which is how Tables III
        and IV are produced.
    metrics:
        Utility metrics to evaluate; defaults to an automatic choice based on
        graph size (all metrics for small graphs, clustering + core number
        for DBLP-scale graphs as in Table V).
    methods:
        Greedy methods to include; defaults to all of them.
    graph:
        Optional pre-loaded graph.
    path_length_sample:
        Optional BFS-source sample size for the average path length metric.
    """
    if graph is None:
        graph = load_dataset(config.dataset, **config.dataset_options())
    if methods is None:
        methods = [m for m in config.methods if is_greedy_method(m)]

    loss_sums: Dict[str, Dict[str, float]] = {}
    budget_sums: Dict[str, Dict[str, float]] = {}
    phase1_sums: Dict[str, float] = {}
    metric_names: Tuple[str, ...] = ()

    for motif in config.motifs:
        loss_sums[motif] = {method: 0.0 for method in methods}
        budget_sums[motif] = {method: 0.0 for method in methods}
        phase1_sums[motif] = 0.0

    for repetition in range(config.repetitions):
        seed = config.seed + repetition
        targets = sample_random_targets(graph, config.num_targets, seed=seed)
        for motif in config.motifs:
            session = ProtectionService(TPPProblem(graph, targets, motif=motif))
            problem = session.problem
            effective_budget = (
                budget if budget is not None else session.pristine_similarity() + 1
            )

            phase1_report = compare_graphs(
                graph,
                problem.phase1_graph,
                metrics=metrics,
                path_length_sample=path_length_sample,
            )
            metric_names = tuple(phase1_report.loss_ratios)
            phase1_sums[motif] += phase1_report.average_loss_percent

            for method in methods:
                result = session.solve(
                    ProtectionRequest(
                        method, effective_budget, engine=config.engine, seed=seed
                    )
                )
                released = result.released_graph(problem)
                report = compare_graphs(
                    graph,
                    released,
                    metrics=metrics,
                    path_length_sample=path_length_sample,
                )
                loss_sums[motif][method] += report.average_loss_percent
                budget_sums[motif][method] += result.budget_used

    repetitions = config.repetitions
    values = {
        motif: {m: loss_sums[motif][m] / repetitions for m in methods}
        for motif in config.motifs
    }
    budgets_used = {
        motif: {m: budget_sums[motif][m] / repetitions for m in methods}
        for motif in config.motifs
    }
    phase1_only = {motif: phase1_sums[motif] / repetitions for motif in config.motifs}

    return UtilityLossTable(
        dataset=config.dataset,
        num_targets=config.num_targets,
        metrics=metric_names,
        values=values,
        phase1_only=phase1_only,
        budgets_used=budgets_used,
    )
