"""Attack-defense experiment (extension of §VI-D).

The paper argues that a fully protected graph defends not only the motif
predictor used during protection but the whole family of triangle-related
indices (Jaccard, Adamic-Adar, Resource Allocation, ...), and leaves
longer-range predictors such as Katz as future work.  This experiment
quantifies both: for a protected release it measures, per predictor, the
attack AUC and the number of targets still exposed, before and after the
protector deletions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.model import TPPProblem
from repro.datasets.registry import load_dataset
from repro.datasets.targets import sample_random_targets
from repro.experiments.config import ExperimentConfig
from repro.graphs.graph import Graph
from repro.prediction.attack import AttackSimulator
from repro.service import ProtectionRequest, ProtectionService

__all__ = ["AttackDefenseResult", "run_attack_defense", "DEFAULT_PREDICTORS"]

#: Predictors evaluated by default: the paper's triangle family plus Katz.
DEFAULT_PREDICTORS: Tuple[str, ...] = (
    "common_neighbors",
    "jaccard",
    "adamic_adar",
    "resource_allocation",
    "salton",
    "katz",
)


@dataclass(frozen=True)
class AttackDefenseResult:
    """Per-predictor attack success before and after TPP protection.

    ``auc_before`` / ``auc_after`` map predictor name to the attack AUC on
    the phase-1 graph (targets merely deleted) and on the protected release;
    ``exposed_before`` / ``exposed_after`` count targets with a positive
    prediction score.
    """

    dataset: str
    motif: str
    num_targets: int
    budget_used: float
    auc_before: Mapping[str, float]
    auc_after: Mapping[str, float]
    exposed_before: Mapping[str, float]
    exposed_after: Mapping[str, float]

    def predictors(self) -> Tuple[str, ...]:
        """Return the evaluated predictor names."""
        return tuple(self.auc_before)

    def as_rows(self):
        """Return ``(predictor, auc before, auc after, exposed before, exposed after)`` rows."""
        return [
            (
                name,
                self.auc_before[name],
                self.auc_after[name],
                self.exposed_before[name],
                self.exposed_after[name],
            )
            for name in self.auc_before
        ]


def run_attack_defense(
    config: ExperimentConfig,
    motif: str = "triangle",
    predictors: Sequence[str] = DEFAULT_PREDICTORS,
    negative_samples: int = 200,
    graph: Optional[Graph] = None,
) -> AttackDefenseResult:
    """Protect sampled targets and measure every predictor's attack success.

    The protection uses SGB-Greedy with a full-protection budget (the paper's
    "full protection" setting), so the triangle-family predictors are
    expected to end at zero exposure, while path-based predictors (Katz)
    retain some signal — the gap this experiment is designed to expose.
    """
    if graph is None:
        graph = load_dataset(config.dataset, **config.dataset_options())

    sums = {
        "auc_before": {name: 0.0 for name in predictors},
        "auc_after": {name: 0.0 for name in predictors},
        "exposed_before": {name: 0.0 for name in predictors},
        "exposed_after": {name: 0.0 for name in predictors},
    }
    budget_total = 0.0

    for repetition in range(config.repetitions):
        seed = config.seed + repetition
        targets = sample_random_targets(graph, config.num_targets, seed=seed)
        session = ProtectionService(TPPProblem(graph, targets, motif=motif))
        problem = session.problem
        result = session.solve(
            ProtectionRequest(
                "SGB-Greedy",
                session.pristine_similarity() + 1,
                engine=config.engine,
            )
        )
        budget_total += result.budget_used
        released = result.released_graph(problem)

        for name in predictors:
            simulator = AttackSimulator(
                name, negative_samples=negative_samples, seed=seed
            )
            before = simulator.run(problem.phase1_graph, targets)
            after = simulator.run(released, targets)
            sums["auc_before"][name] += before.auc
            sums["auc_after"][name] += after.auc
            sums["exposed_before"][name] += len(before.exposed_targets)
            sums["exposed_after"][name] += len(after.exposed_targets)

    repetitions = config.repetitions
    return AttackDefenseResult(
        dataset=config.dataset,
        motif=motif,
        num_targets=config.num_targets,
        budget_used=budget_total / repetitions,
        auc_before={k: v / repetitions for k, v in sums["auc_before"].items()},
        auc_after={k: v / repetitions for k, v in sums["auc_after"].items()},
        exposed_before={k: v / repetitions for k, v in sums["exposed_before"].items()},
        exposed_after={k: v / repetitions for k, v in sums["exposed_after"].items()},
    )
