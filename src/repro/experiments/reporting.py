"""Textual reporting helpers for experiment results.

Experiments return plain dataclasses; these helpers render them as aligned
text tables (the same rows/series the paper's figures and tables show) and
serialise them to JSON so benchmark output can be archived and compared
across runs without any plotting dependency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.core.model import ProtectionResult
from repro.experiments.runtime import RuntimeComparison
from repro.experiments.similarity_evolution import SimilarityEvolution
from repro.experiments.utility_loss import UtilityLossTable

__all__ = [
    "format_table",
    "format_similarity_evolution",
    "format_runtime_comparison",
    "format_utility_loss_table",
    "results_to_json",
    "save_json",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], float_format: str = "{:.2f}"
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_similarity_evolution(result: SimilarityEvolution) -> str:
    """Render a Fig. 3 / Fig. 4 style series as a text table."""
    headers = ["k", *result.method_names()]
    title = (
        f"Existing target subgraphs vs budget — {result.dataset}, "
        f"{result.motif} motif (s(∅,T) = {result.initial_similarity:.1f})"
    )
    return f"{title}\n{format_table(headers, result.as_rows())}"


def format_runtime_comparison(result: RuntimeComparison) -> str:
    """Render a Fig. 5 / Fig. 6 style running-time series as a text table."""
    headers = ["k", *result.curves.keys()]
    rows = []
    for index, budget in enumerate(result.budgets):
        rows.append((budget, *(result.curves[label][index] for label in result.curves)))
    title = f"Running time (seconds) vs budget — {result.dataset}, {result.motif} motif"
    return f"{title}\n{format_table(headers, rows, float_format='{:.4f}')}"


def format_utility_loss_table(result: UtilityLossTable) -> str:
    """Render a Tables III-V style utility-loss table (values in percent)."""
    headers = ["motif", *result.methods()]
    title = (
        f"Average utility loss ratio (%) — {result.dataset}, |T| = "
        f"{result.num_targets}, metrics = {', '.join(result.metrics)}"
    )
    return f"{title}\n{format_table(headers, result.as_rows(), float_format='{:.3f}')}"


def results_to_json(
    result: Union[
        SimilarityEvolution, RuntimeComparison, UtilityLossTable, ProtectionResult
    ],
) -> dict:
    """Return a JSON-serialisable dictionary for any experiment result.

    Individual :class:`~repro.core.model.ProtectionResult` objects (as
    returned by :meth:`repro.service.ProtectionService.solve`) serialise via
    their own round-trippable :meth:`~repro.core.model.ProtectionResult.to_dict`.
    """
    if isinstance(result, ProtectionResult):
        return {"kind": "protection_result", **result.to_dict()}
    if isinstance(result, SimilarityEvolution):
        return {
            "kind": "similarity_evolution",
            "dataset": result.dataset,
            "motif": result.motif,
            "budgets": list(result.budgets),
            "initial_similarity": result.initial_similarity,
            "curves": {name: list(values) for name, values in result.curves.items()},
            "critical_budget": dict(result.critical_budget),
        }
    if isinstance(result, RuntimeComparison):
        return {
            "kind": "runtime_comparison",
            "dataset": result.dataset,
            "motif": result.motif,
            "budgets": list(result.budgets),
            "curves": {name: list(values) for name, values in result.curves.items()},
        }
    if isinstance(result, UtilityLossTable):
        return {
            "kind": "utility_loss",
            "dataset": result.dataset,
            "num_targets": result.num_targets,
            "metrics": list(result.metrics),
            "values": {m: dict(v) for m, v in result.values.items()},
            "phase1_only": dict(result.phase1_only),
            "budgets_used": {m: dict(v) for m, v in result.budgets_used.items()},
        }
    raise TypeError(f"unsupported result type: {type(result)!r}")


def save_json(result, path: Union[str, Path]) -> Path:
    """Serialise an experiment result (or list of results) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(result, (list, tuple)):
        payload = [results_to_json(item) for item in result]
    else:
        payload = results_to_json(result)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path
