"""Back-compat façade over the service-layer method registry.

The seven methods of the paper's evaluation (Figs. 3-6, Tables III-V) used
to be hard-coded here in two hand-maintained dicts plus a duplicated
ordering tuple.  They now live in the decorator-based registry of
:mod:`repro.service.registry` (registered in :mod:`repro.service.builtin`),
which downstream users can extend with
:func:`~repro.service.register_method`; this module re-exports the old
names — derived live from the registry, so plugins show up — and keeps
:func:`run_method` as a thin deprecation shim.

New code should go through :class:`repro.service.ProtectionService`, which
builds the target-subgraph index once and serves every query from a copy of
its pristine coverage state::

    service = ProtectionService(problem)
    result = service.solve(ProtectionRequest("CT-Greedy:TBD", budget=30))
"""

from __future__ import annotations

import warnings
from typing import Dict, Tuple

from repro.core.engines import EngineLike
from repro.core.model import ProtectionResult, TPPProblem
from repro.service import builtin  # noqa: F401  (registers the built-in methods)
from repro.service.registry import (
    MethodRunner,
    get_method,
    is_greedy_method,
    iter_methods,
    method_names,
)

__all__ = [
    "GREEDY_METHODS",
    "BASELINE_METHODS",
    "ALL_METHODS",
    "run_method",
    "is_greedy_method",
]


def __getattr__(name: str):
    """Expose the legacy collections as live views of the registry.

    ``ALL_METHODS`` (a tuple in the paper's legend order) and the
    ``GREEDY_METHODS`` / ``BASELINE_METHODS`` dicts are computed from the
    registration metadata on every access, so methods registered by
    downstream plugins appear without any hand-maintained duplicate list.
    """
    if name == "ALL_METHODS":
        return method_names()
    if name == "GREEDY_METHODS":
        return {spec.name: spec.runner for spec in iter_methods() if spec.is_greedy}
    if name == "BASELINE_METHODS":
        return {spec.name: spec.runner for spec in iter_methods() if not spec.is_greedy}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# typing-only declarations for the module __getattr__ views above
ALL_METHODS: Tuple[str, ...]
GREEDY_METHODS: Dict[str, MethodRunner]
BASELINE_METHODS: Dict[str, MethodRunner]


def run_method(
    name: str,
    problem: TPPProblem,
    budget: int,
    engine: EngineLike = "coverage",
    seed: int = 0,
) -> ProtectionResult:
    """Run the method registered under ``name`` (deprecated shim).

    .. deprecated::
        Build a :class:`repro.service.ProtectionService` and call
        :meth:`~repro.service.ProtectionService.solve` instead — it reuses
        the enumerated index across queries instead of rebuilding state per
        call.  This shim stays for one-off scripting compatibility.
    """
    warnings.warn(
        "run_method() is deprecated; use ProtectionService.solve() — it builds "
        "the target-subgraph index once and serves every query from a copy of "
        "its pristine coverage state",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = get_method(name)
    return spec.runner(problem, budget, engine, seed)
