"""Registry of the protection methods compared in the paper's evaluation.

Figures 3-6 and Tables III-V compare seven curves:

* ``SGB-Greedy(-R)`` — single global budget greedy,
* ``CT-Greedy(-R):TBD`` / ``CT-Greedy(-R):DBD`` — cross-target greedy under
  the two budget divisions,
* ``WT-Greedy(-R):TBD`` / ``WT-Greedy(-R):DBD`` — within-target greedy under
  the two budget divisions,
* ``RD`` and ``RDT`` — the random baselines.

:func:`run_method` dispatches a method name to the corresponding algorithm
with a chosen marginal-gain engine, so every experiment and benchmark speaks
the same vocabulary as the paper's legends.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.baselines import random_deletion, random_target_subgraph_deletion
from repro.core.ct import ct_greedy
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.wt import wt_greedy
from repro.exceptions import ExperimentError

__all__ = [
    "GREEDY_METHODS",
    "BASELINE_METHODS",
    "ALL_METHODS",
    "run_method",
    "is_greedy_method",
]

MethodRunner = Callable[[TPPProblem, int, str, int], ProtectionResult]


def _run_sgb(problem: TPPProblem, budget: int, engine: str, seed: int) -> ProtectionResult:
    return sgb_greedy(problem, budget, engine=engine)


def _run_ct_tbd(problem: TPPProblem, budget: int, engine: str, seed: int) -> ProtectionResult:
    return ct_greedy(problem, budget, budget_division="tbd", engine=engine)


def _run_ct_dbd(problem: TPPProblem, budget: int, engine: str, seed: int) -> ProtectionResult:
    return ct_greedy(problem, budget, budget_division="dbd", engine=engine)


def _run_wt_tbd(problem: TPPProblem, budget: int, engine: str, seed: int) -> ProtectionResult:
    return wt_greedy(problem, budget, budget_division="tbd", engine=engine)


def _run_wt_dbd(problem: TPPProblem, budget: int, engine: str, seed: int) -> ProtectionResult:
    return wt_greedy(problem, budget, budget_division="dbd", engine=engine)


def _run_rd(problem: TPPProblem, budget: int, engine: str, seed: int) -> ProtectionResult:
    return random_deletion(problem, budget, seed=seed)


def _run_rdt(problem: TPPProblem, budget: int, engine: str, seed: int) -> ProtectionResult:
    return random_target_subgraph_deletion(problem, budget, seed=seed)


#: Greedy methods (legend labels of Figs. 3-6, without the engine suffix).
GREEDY_METHODS: Dict[str, MethodRunner] = {
    "SGB-Greedy": _run_sgb,
    "CT-Greedy:TBD": _run_ct_tbd,
    "CT-Greedy:DBD": _run_ct_dbd,
    "WT-Greedy:TBD": _run_wt_tbd,
    "WT-Greedy:DBD": _run_wt_dbd,
}

#: Random baselines.
BASELINE_METHODS: Dict[str, MethodRunner] = {
    "RD": _run_rd,
    "RDT": _run_rdt,
}

#: Every method in the order the paper's legends use.
ALL_METHODS: Tuple[str, ...] = (
    "SGB-Greedy",
    "CT-Greedy:DBD",
    "WT-Greedy:DBD",
    "CT-Greedy:TBD",
    "WT-Greedy:TBD",
    "RD",
    "RDT",
)


def is_greedy_method(name: str) -> bool:
    """Return whether ``name`` refers to one of the greedy methods."""
    return name in GREEDY_METHODS


def run_method(
    name: str,
    problem: TPPProblem,
    budget: int,
    engine: str = "coverage",
    seed: int = 0,
) -> ProtectionResult:
    """Run the method registered under ``name``.

    Parameters
    ----------
    name:
        A key of :data:`GREEDY_METHODS` or :data:`BASELINE_METHODS`.
    problem:
        The TPP instance.
    budget:
        Deletion budget ``k``.
    engine:
        ``"coverage"`` (the scalable ``-R`` implementations) or ``"recount"``
        (the naive implementations); ignored by the random baselines.
    seed:
        Random seed for the baselines (ignored by the greedy methods).
    """
    runner = GREEDY_METHODS.get(name) or BASELINE_METHODS.get(name)
    if runner is None:
        raise ExperimentError(
            f"unknown method {name!r}; known methods: {sorted(ALL_METHODS)}"
        )
    return runner(problem, budget, engine, seed)
