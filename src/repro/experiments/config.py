"""Experiment configuration objects.

Every figure/table reproduction is parameterised by the same handful of
knobs (dataset, motif, number of targets, budgets, repetitions, engine).
Collecting them in a frozen dataclass keeps the experiment runners, the
benchmarks and the CLI in sync, and makes the "quick" (CI-sized) and "paper"
(full-sized) profiles explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.service.registry import method_names

__all__ = ["ExperimentConfig", "PAPER_METHODS", "quick_profile", "paper_profile"]

#: The paper's seven curves, in legend order — the default sweep.  Pinned
#: explicitly (not a live registry view) so plugin methods registered before
#: this module is imported never silently join the default figure/table
#: reproductions; pass ``methods=...`` to sweep extras.
PAPER_METHODS: Tuple[str, ...] = (
    "SGB-Greedy",
    "CT-Greedy:DBD",
    "WT-Greedy:DBD",
    "CT-Greedy:TBD",
    "WT-Greedy:TBD",
    "RD",
    "RDT",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by every experiment runner.

    Attributes
    ----------
    dataset:
        Registered dataset name (see :func:`repro.datasets.available_datasets`).
    motifs:
        Motif names to evaluate (each produces one sub-figure / table row).
    num_targets:
        ``|T|`` — how many target links are sampled.
    budgets:
        The budget values ``k`` to sweep.  ``None`` means "up to the critical
        budget k*" where the runner supports it.
    repetitions:
        Number of independent target samplings averaged (the paper uses >= 10).
    engine:
        Marginal-gain engine: ``"coverage"`` (scalable) or ``"recount"``.
    methods:
        Method names (default :data:`PAPER_METHODS`; any name in the live
        registry — :func:`repro.service.method_names` — is accepted).
    seed:
        Base random seed; repetition ``i`` uses ``seed + i``.
    dataset_kwargs:
        Extra keyword arguments forwarded to the dataset loader (e.g.
        ``{"nodes": 2000}`` to shrink the DBLP stand-in).
    """

    dataset: str = "arenas-email"
    motifs: Tuple[str, ...] = ("triangle", "rectangle", "rectri")
    num_targets: int = 20
    budgets: Optional[Tuple[int, ...]] = None
    repetitions: int = 3
    engine: str = "coverage"
    methods: Tuple[str, ...] = PAPER_METHODS
    seed: int = 0
    dataset_kwargs: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.num_targets < 1:
            raise ExperimentError("num_targets must be >= 1")
        if self.repetitions < 1:
            raise ExperimentError("repetitions must be >= 1")
        if self.engine not in ("coverage", "recount"):
            raise ExperimentError(
                f"engine must be 'coverage' or 'recount', got {self.engine!r}"
            )
        # validate against the live registry so plugin-registered methods pass
        known = set(method_names())
        unknown = [name for name in self.methods if name not in known]
        if unknown:
            raise ExperimentError(
                f"unknown methods in config: {unknown}; registered methods: "
                f"{', '.join(sorted(known))}"
            )

    def dataset_options(self) -> dict:
        """Return ``dataset_kwargs`` as a regular dictionary."""
        return dict(self.dataset_kwargs)

    def with_overrides(self, **changes) -> "ExperimentConfig":
        """Return a copy of the config with the given fields replaced."""
        return replace(self, **changes)


def quick_profile(**overrides) -> ExperimentConfig:
    """Return a configuration sized for CI / benchmark runs (minutes, not hours).

    Uses a shrunken synthetic graph, a handful of targets and few
    repetitions; the *shape* of the paper's results already shows at this
    scale.
    """
    config = ExperimentConfig(
        dataset="arenas-email",
        motifs=("triangle", "rectangle", "rectri"),
        num_targets=10,
        repetitions=2,
        engine="coverage",
        dataset_kwargs=(("nodes", 400), ("seed", 1)),
    )
    return config.with_overrides(**overrides) if overrides else config


def paper_profile(**overrides) -> ExperimentConfig:
    """Return the configuration matching the paper's experimental setup."""
    config = ExperimentConfig(
        dataset="arenas-email",
        motifs=("triangle", "rectangle", "rectri"),
        num_targets=20,
        repetitions=10,
        engine="coverage",
    )
    return config.with_overrides(**overrides) if overrides else config
