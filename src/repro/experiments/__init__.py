"""Experiment harness regenerating every figure and table of the paper."""

from repro.experiments.attack_defense import (
    DEFAULT_PREDICTORS,
    AttackDefenseResult,
    run_attack_defense,
)
from repro.experiments.config import ExperimentConfig, paper_profile, quick_profile
from repro.experiments.methods import is_greedy_method, run_method
from repro.experiments.reporting import (
    format_runtime_comparison,
    format_similarity_evolution,
    format_table,
    format_utility_loss_table,
    results_to_json,
    save_json,
)
from repro.experiments.runner import (
    EXPERIMENT_RUNNERS,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.runtime import RuntimeComparison, run_runtime_comparison
from repro.experiments.similarity_evolution import (
    SimilarityEvolution,
    evolution_for_problem,
    run_similarity_evolution,
)
from repro.experiments.utility_loss import UtilityLossTable, run_utility_loss


def __getattr__(name: str):
    """Delegate the live registry views to :mod:`repro.experiments.methods`.

    ``ALL_METHODS`` / ``GREEDY_METHODS`` / ``BASELINE_METHODS`` are computed
    from the method registry on every access; importing them eagerly here
    would freeze a snapshot at package-import time and hide methods that
    plugins register later.
    """
    if name in ("ALL_METHODS", "GREEDY_METHODS", "BASELINE_METHODS"):
        from repro.experiments import methods

        return getattr(methods, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AttackDefenseResult",
    "run_attack_defense",
    "DEFAULT_PREDICTORS",
    "ExperimentConfig",
    "quick_profile",
    "paper_profile",
    "ALL_METHODS",
    "GREEDY_METHODS",
    "BASELINE_METHODS",
    "run_method",
    "is_greedy_method",
    "SimilarityEvolution",
    "run_similarity_evolution",
    "evolution_for_problem",
    "RuntimeComparison",
    "run_runtime_comparison",
    "UtilityLossTable",
    "run_utility_loss",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_table3",
    "run_table4",
    "run_table5",
    "EXPERIMENT_RUNNERS",
    "format_table",
    "format_similarity_evolution",
    "format_runtime_comparison",
    "format_utility_loss_table",
    "results_to_json",
    "save_json",
]
