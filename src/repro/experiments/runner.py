"""Per-figure / per-table experiment runners.

Each function regenerates one artefact of the paper's evaluation section and
returns the corresponding result object (render it with
:mod:`repro.experiments.reporting`).  Every runner takes a ``scale``
parameter:

* ``"quick"`` — shrunken graphs / fewer repetitions; finishes in seconds to a
  few minutes and is what the pytest benchmarks use, and
* ``"paper"`` — the paper's parameters (Arenas-email sized graph, |T| = 20/50,
  >= 10 repetitions); expect minutes to hours depending on the experiment.

Absolute numbers differ from the paper (synthetic stand-in datasets, Python
runtime), but the qualitative ordering of the methods is preserved; see
EXPERIMENTS.md for the side-by-side comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runtime import RuntimeComparison, run_runtime_comparison
from repro.experiments.similarity_evolution import (
    SimilarityEvolution,
    run_similarity_evolution,
)
from repro.experiments.utility_loss import UtilityLossTable, run_utility_loss

__all__ = [
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_table3",
    "run_table4",
    "run_table5",
    "EXPERIMENT_RUNNERS",
]

_SCALES = ("quick", "paper")


def _check_scale(scale: str) -> None:
    if scale not in _SCALES:
        raise ExperimentError(f"scale must be one of {_SCALES}, got {scale!r}")


def _arenas_config(scale: str, num_targets: int, repetitions_paper: int = 10) -> ExperimentConfig:
    if scale == "paper":
        return ExperimentConfig(
            dataset="arenas-email",
            num_targets=num_targets,
            repetitions=repetitions_paper,
            engine="coverage",
        )
    return ExperimentConfig(
        dataset="arenas-email",
        num_targets=max(4, num_targets // 4),
        repetitions=2,
        engine="coverage",
        dataset_kwargs=(("nodes", 350), ("seed", 1)),
    )


def _dblp_config(scale: str, num_targets: int) -> ExperimentConfig:
    if scale == "paper":
        return ExperimentConfig(
            dataset="dblp",
            num_targets=num_targets,
            repetitions=10,
            engine="coverage",
        )
    return ExperimentConfig(
        dataset="dblp",
        num_targets=max(6, num_targets // 5),
        repetitions=1,
        engine="coverage",
        dataset_kwargs=(("nodes", 2000), ("seed", 7)),
    )


def run_figure3(
    scale: str = "quick",
    motifs: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    build_workers: Optional[int] = None,
) -> List[SimilarityEvolution]:
    """Fig. 3: target-subgraph count vs budget on the Arenas-email graph.

    |T| = 20, all seven methods, budgets swept up to full protection, one
    result per motif (Triangle, Rectangle, RecTri).  ``workers`` fans each
    repetition's method x budget sweep out over a shared-index session;
    ``build_workers`` fans each session's index build over processes.
    """
    _check_scale(scale)
    config = _arenas_config(scale, num_targets=20)
    if motifs is not None:
        config = config.with_overrides(motifs=tuple(motifs))
    graph = load_dataset(config.dataset, **config.dataset_options())
    return [
        run_similarity_evolution(
            config, motif, graph=graph, workers=workers, build_workers=build_workers
        )
        for motif in config.motifs
    ]


def run_figure4(
    scale: str = "quick",
    motifs: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    build_workers: Optional[int] = None,
) -> List[SimilarityEvolution]:
    """Fig. 4: target-subgraph count vs budget on the DBLP-scale graph.

    |T| = 50 and budgets 1..100 in the paper; the scalable (coverage-engine)
    implementations are used because the naive ones do not terminate at this
    scale.  ``workers`` fans each repetition's sweep out over a shared-index
    session; ``build_workers`` fans each session's index build — the wall
    that dominates a DBLP-scale run — over worker processes.
    """
    _check_scale(scale)
    config = _dblp_config(scale, num_targets=50)
    if motifs is not None:
        config = config.with_overrides(motifs=tuple(motifs))
    budgets = list(range(1, 101, 5)) if scale == "paper" else list(range(1, 26, 5))
    graph = load_dataset(config.dataset, **config.dataset_options())
    return [
        run_similarity_evolution(
            config,
            motif,
            graph=graph,
            budgets=budgets,
            workers=workers,
            build_workers=build_workers,
        )
        for motif in config.motifs
    ]


def run_figure5(
    scale: str = "quick", motifs: Optional[Sequence[str]] = None
) -> List[RuntimeComparison]:
    """Fig. 5: running time vs budget on Arenas-email, naive vs scalable.

    Every greedy algorithm is timed with both the recount (naive) and the
    coverage (``-R``) engine; the baselines RD/RDT are included for
    reference.
    """
    _check_scale(scale)
    config = _arenas_config(scale, num_targets=20, repetitions_paper=3)
    if motifs is not None:
        config = config.with_overrides(motifs=tuple(motifs))
    budgets = list(range(1, 26, 4)) if scale == "paper" else [1, 3, 5]
    graph = load_dataset(config.dataset, **config.dataset_options())
    return [
        run_runtime_comparison(
            config, motif, budgets, engines=("coverage", "recount"), graph=graph
        )
        for motif in config.motifs
    ]


def run_figure6(
    scale: str = "quick", motifs: Optional[Sequence[str]] = None
) -> List[RuntimeComparison]:
    """Fig. 6: running time vs budget on the DBLP-scale graph.

    Only the scalable implementations and the random baselines are timed
    (the naive variants are intractable at this scale, as in the paper).
    """
    _check_scale(scale)
    config = _dblp_config(scale, num_targets=50 if scale == "paper" else 10)
    if motifs is not None:
        config = config.with_overrides(motifs=tuple(motifs))
    budgets = list(range(1, 26, 4)) if scale == "paper" else [1, 3, 5]
    graph = load_dataset(config.dataset, **config.dataset_options())
    return [
        run_runtime_comparison(config, motif, budgets, engines=("coverage",), graph=graph)
        for motif in config.motifs
    ]


def run_table3(scale: str = "quick") -> UtilityLossTable:
    """Table III: utility loss ratio on Arenas-email with |T| = 20, full protection."""
    _check_scale(scale)
    config = _arenas_config(scale, num_targets=20)
    sample = None if scale == "paper" else 100
    return run_utility_loss(config, budget=None, path_length_sample=sample)


def run_table4(scale: str = "quick") -> UtilityLossTable:
    """Table IV: utility loss ratio on Arenas-email with |T| = 50, full protection."""
    _check_scale(scale)
    config = _arenas_config(scale, num_targets=50)
    if scale == "quick":
        config = config.with_overrides(num_targets=12)
    sample = None if scale == "paper" else 100
    return run_utility_loss(config, budget=None, path_length_sample=sample)


def run_table5(scale: str = "quick") -> UtilityLossTable:
    """Table V: utility loss on the DBLP-scale graph, |T| = 52, k = 25.

    Only the scalable utility metrics (clustering coefficient and core
    number) are evaluated, exactly like the paper.
    """
    _check_scale(scale)
    config = _dblp_config(scale, num_targets=52)
    budget = 25 if scale == "paper" else 10
    return run_utility_loss(config, budget=budget, metrics=("clust", "cn"))


#: Name -> runner mapping used by the CLI and the benchmarks.
EXPERIMENT_RUNNERS: Dict[str, object] = {
    "fig3": run_figure3,
    "fig4": run_figure4,
    "fig5": run_figure5,
    "fig6": run_figure6,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
}
