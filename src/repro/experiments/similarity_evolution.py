"""Similarity-evolution experiments (Figures 3 and 4).

For every motif and every protection method, the experiment tracks how the
number of still-existing target subgraphs ``s(P, T)`` decreases as the
deletion budget ``k`` grows.  Lower curves mean better protection; a curve
hitting zero has reached full protection and the corresponding budget is the
method's critical budget ``k*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.model import TPPProblem
from repro.datasets.registry import load_dataset
from repro.datasets.targets import sample_random_targets
from repro.experiments.config import ExperimentConfig
from repro.graphs.graph import Graph
from repro.service import ProtectionRequest, ProtectionService

__all__ = ["SimilarityEvolution", "run_similarity_evolution", "evolution_for_problem"]

#: Methods whose step-``i`` protector does not depend on the final budget, so
#: one run at ``max(budgets)`` yields the whole curve from its trace.
_PREFIX_METHODS = ("SGB-Greedy", "RD", "RDT")


@dataclass(frozen=True)
class SimilarityEvolution:
    """Averaged similarity curves for one dataset + motif.

    Attributes
    ----------
    dataset / motif:
        What was measured.
    budgets:
        The budget axis (shared by every curve).
    curves:
        Method name -> mean ``s(P, T)`` at each budget.
    initial_similarity:
        Mean ``s(∅, T)`` over the repetitions.
    critical_budget:
        Method name -> mean number of deletions needed for full protection
        (only for methods that reached it in every repetition).
    """

    dataset: str
    motif: str
    budgets: Tuple[int, ...]
    curves: Mapping[str, Tuple[float, ...]]
    initial_similarity: float
    critical_budget: Mapping[str, float]

    def as_rows(self) -> List[Tuple]:
        """Return one row per budget: ``(k, curve values in method order)``."""
        methods = list(self.curves)
        rows = []
        for index, budget in enumerate(self.budgets):
            rows.append((budget, *(self.curves[m][index] for m in methods)))
        return rows

    def method_names(self) -> Tuple[str, ...]:
        """Return the method names in curve order."""
        return tuple(self.curves)


def evolution_for_problem(
    problem: TPPProblem,
    budgets: Sequence[int],
    methods: Sequence[str],
    engine: str = "coverage",
    seed: int = 0,
    service: Optional[ProtectionService] = None,
    workers: Optional[int] = None,
) -> Dict[str, List[int]]:
    """Return ``method -> s(P, T) at each budget`` for a single problem instance.

    All queries are served by one :class:`~repro.service.ProtectionService`
    session (built here unless passed in), so the target-subgraph index is
    enumerated once and every run executes on a copy of the pristine
    coverage state; ``workers`` fans the request batch out via
    :meth:`~repro.service.ProtectionService.solve_many`.

    Greedy prefix property: for the single-global-budget greedy and the
    random baselines, the protector chosen at step ``i`` does not depend on
    the final budget, so a single run at ``max(budgets)`` yields the whole
    curve from its similarity trace.  The multi-local-budget methods are
    re-run per budget because their budget division changes with ``k``.
    """
    if service is None:
        service = ProtectionService(problem)
    max_budget = max(budgets)
    requests: List[ProtectionRequest] = []
    spans: Dict[str, slice] = {}
    for method in methods:
        start = len(requests)
        if method in _PREFIX_METHODS:
            requests.append(
                ProtectionRequest(method, max_budget, engine=engine, seed=seed)
            )
        else:
            requests.extend(
                ProtectionRequest(method, budget, engine=engine, seed=seed)
                for budget in budgets
            )
        spans[method] = slice(start, len(requests))
    results = service.solve_many(requests, workers=workers)
    curves: Dict[str, List[int]] = {}
    for method in methods:
        answers = results[spans[method]]
        if method in _PREFIX_METHODS:
            curves[method] = [answers[0].similarity_at(k) for k in budgets]
        else:
            curves[method] = [result.final_similarity for result in answers]
    return curves


def run_similarity_evolution(
    config: ExperimentConfig,
    motif: str,
    graph: Optional[Graph] = None,
    budgets: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    build_workers: Optional[int] = None,
) -> SimilarityEvolution:
    """Run the Fig. 3 / Fig. 4 experiment for one motif.

    Parameters
    ----------
    config:
        Shared experiment parameters (dataset, targets, repetitions, ...).
    motif:
        The motif to protect against in this run.
    graph:
        Optional pre-loaded graph (avoids re-generating it per motif).
    budgets:
        Explicit budget axis; defaults to ``config.budgets`` or, when that is
        also ``None``, to ``1 .. k*`` of the SGB greedy on the first
        repetition (the paper's choice of sweeping up to full protection).
    workers:
        Optional thread fan-out for each repetition's request batch (one
        :class:`~repro.service.ProtectionService` session per sampled
        instance; results are independent of the worker count).
    build_workers:
        Optional process fan-out for each session's index build (pass-1
        enumeration); the built index — and therefore every curve — is
        bit-identical for every worker count.
    """
    if graph is None:
        graph = load_dataset(config.dataset, **config.dataset_options())

    per_repetition: List[Dict[str, List[int]]] = []
    initial_similarities: List[int] = []
    budget_axis: Optional[List[int]] = list(budgets) if budgets is not None else (
        list(config.budgets) if config.budgets is not None else None
    )

    # one session per sampled instance: the enumerated index is shared by the
    # k* probe and every method x budget query of that repetition
    sessions: List[ProtectionService] = []
    for repetition in range(config.repetitions):
        seed = config.seed + repetition
        targets = sample_random_targets(graph, config.num_targets, seed=seed)
        session = ProtectionService(
            TPPProblem(graph, targets, motif=motif), build_workers=build_workers
        )
        sessions.append(session)
        initial_similarities.append(session.pristine_similarity())

    if budget_axis is None:
        # sweep up to the budget at which the strongest method (SGB) reaches
        # full protection on the hardest sampled instance (the paper's k*)
        k_star = 1
        for session in sessions:
            probe = session.solve(
                ProtectionRequest(
                    "SGB-Greedy",
                    session.pristine_similarity() + 1,
                    engine=config.engine,
                )
            )
            k_star = max(k_star, probe.budget_used)
        budget_axis = list(range(1, k_star + 1))

    for repetition, session in enumerate(sessions):
        seed = config.seed + repetition
        curves = evolution_for_problem(
            session.problem,
            budget_axis,
            config.methods,
            engine=config.engine,
            seed=seed,
            service=session,
            workers=workers,
        )
        per_repetition.append(curves)

    averaged: Dict[str, Tuple[float, ...]] = {}
    critical: Dict[str, float] = {}
    for method in config.methods:
        stacked = [curves[method] for curves in per_repetition]
        averaged[method] = tuple(
            sum(values) / len(values) for values in zip(*stacked)
        )
        # critical budget: first budget index where the averaged curve hits zero
        k_stars = []
        for values in stacked:
            zero_indices = [budget_axis[i] for i, v in enumerate(values) if v == 0]
            if zero_indices:
                k_stars.append(min(zero_indices))
        if len(k_stars) == len(stacked):
            critical[method] = sum(k_stars) / len(k_stars)

    return SimilarityEvolution(
        dataset=config.dataset,
        motif=motif,
        budgets=tuple(budget_axis),
        curves=averaged,
        initial_similarity=sum(initial_similarities) / len(initial_similarities),
        critical_budget=critical,
    )
