"""Running-time experiments (Figures 5 and 6).

Fig. 5 compares the naive greedy algorithms against their scalable ``-R``
implementations on the Arenas-email-scale graph; Fig. 6 reports the scalable
algorithms and the random baselines on the DBLP-scale graph (the naive
variants "didn't finish within a week" there, which this harness reproduces
in spirit by not even attempting them at that scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.model import TPPProblem
from repro.datasets.registry import load_dataset
from repro.datasets.targets import sample_random_targets
from repro.experiments.config import ExperimentConfig
from repro.graphs.graph import Graph
from repro.service import ProtectionRequest, ProtectionService
from repro.service.registry import is_greedy_method

__all__ = ["RuntimeComparison", "run_runtime_comparison"]


@dataclass(frozen=True)
class RuntimeComparison:
    """Averaged running times for one dataset + motif.

    ``curves`` maps a display label (method name plus engine suffix, e.g.
    ``"SGB-Greedy-R"`` or ``"SGB-Greedy"``) to the mean wall-clock seconds at
    every budget of ``budgets``.
    """

    dataset: str
    motif: str
    budgets: Tuple[int, ...]
    curves: Mapping[str, Tuple[float, ...]]

    def speedup(self, naive_label: str, scalable_label: str) -> Tuple[float, ...]:
        """Return the per-budget speedup of the scalable over the naive variant."""
        naive = self.curves[naive_label]
        scalable = self.curves[scalable_label]
        return tuple(
            (n / s) if s > 0 else float("inf") for n, s in zip(naive, scalable)
        )


#: Legend suffix per engine: the array kernel and the hash-set reference are
#: both "-R" (scalable) implementations, distinguished so old-vs-new engine
#: comparisons can be read off one runtime table.
_ENGINE_SUFFIXES = {"coverage": "-R", "coverage-set": "-R(set)", "recount": ""}


def _label(method: str, engine: str) -> str:
    """Return the paper-style legend label for a method + engine combination."""
    if not is_greedy_method(method):
        return method
    suffix = _ENGINE_SUFFIXES.get(engine, f"-{engine}")
    if ":" in method:
        base, division = method.split(":", 1)
        return f"{base}{suffix}:{division}"
    return f"{method}{suffix}"


def run_runtime_comparison(
    config: ExperimentConfig,
    motif: str,
    budgets: Sequence[int],
    engines: Sequence[str] = ("coverage", "recount"),
    graph: Optional[Graph] = None,
) -> RuntimeComparison:
    """Measure protector-selection running time as a function of the budget.

    Parameters
    ----------
    config:
        Shared experiment parameters; ``config.methods`` selects which
        algorithms are timed.
    motif:
        The motif to protect against.
    budgets:
        Budget values to time (the paper uses 1..25).
    engines:
        Which engines to include: both for the Fig. 5 comparison, only
        ``("coverage",)`` for the DBLP-scale Fig. 6.
    graph:
        Optional pre-loaded graph.
    """
    if graph is None:
        graph = load_dataset(config.dataset, **config.dataset_options())

    sums: Dict[str, List[float]] = {}
    for repetition in range(config.repetitions):
        seed = config.seed + repetition
        targets = sample_random_targets(graph, config.num_targets, seed=seed)
        # one session per sampled instance: enumeration cost is shared (paid
        # at session build), so only protector selection is measured per run
        session = ProtectionService(TPPProblem(graph, targets, motif=motif))
        for method in config.methods:
            method_engines = engines if is_greedy_method(method) else ("coverage",)
            for engine in method_engines:
                label = _label(method, engine)
                times = sums.setdefault(label, [0.0] * len(budgets))
                for index, budget in enumerate(budgets):
                    result = session.solve(
                        ProtectionRequest(method, budget, engine=engine, seed=seed)
                    )
                    times[index] += result.runtime_seconds

    curves = {
        label: tuple(value / config.repetitions for value in values)
        for label, values in sums.items()
    }
    return RuntimeComparison(
        dataset=config.dataset,
        motif=motif,
        budgets=tuple(budgets),
        curves=curves,
    )
