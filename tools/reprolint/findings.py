"""The unit of reprolint output: one rule violation at one location."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    rule:
        Full rule code, e.g. ``"R1-set-iteration"``.  The leading
        ``R<n>`` segment is the rule *family*; suppressions may name
        either the full code or the family.
    path:
        File the finding is anchored in (as given to the linter).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description with the expected fix.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def family(self) -> str:
        """The rule family prefix (``"R1"`` for ``"R1-set-iteration"``)."""
        return self.rule.split("-", 1)[0]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class LintStats:
    """Aggregate counters for one lint run."""

    files: int = 0
    findings: int = 0
    suppressed: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)

    def count(self, finding: Finding) -> None:
        self.findings += 1
        self.by_rule[finding.rule] = self.by_rule.get(finding.rule, 0) + 1
