"""Comment directives: suppressions and ``guarded-by`` lock annotations.

Two comment forms steer the linter:

``# reprolint: disable=RULE(reason)[,RULE2(reason2)...]``
    Suppresses findings of ``RULE`` (a full code like ``R1-set-iteration``
    or a family like ``R1``) on the same line, or — when the comment is the
    only thing on its line — on the next code line.  The parenthesised
    reason is **mandatory**: a suppression without one is itself reported
    as an ``R0-suppression`` finding and fails the lint, so every silenced
    rule documents why silencing it is sound.

``# reprolint: guarded-by(LOCK)``
    Declares, on an attribute assignment such as ``self._count = 0``, that
    every later write to that attribute must happen inside
    ``with self.LOCK:``.  Consumed by the R3 lock-discipline rule.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from tools.reprolint.findings import Finding

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*(?P<body>.+?)\s*$")
_DISABLE = re.compile(r"disable\s*=\s*(?P<rules>.+)$")
_GUARDED = re.compile(r"guarded-by\s*\(\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)\s*\)")
# the RULE name of one RULE(reason) entry; the reason is scanned manually
# so it may itself contain balanced parentheses.
_ENTRY_RULE = re.compile(r"\s*(?P<rule>[A-Za-z0-9_-]+)\s*")


@dataclass(frozen=True)
class Suppression:
    rule: str
    reason: Optional[str]
    line: int
    #: True when the directive comment has code before it on the same line,
    #: in which case it applies to that line; otherwise to the next line.
    inline: bool


@dataclass(frozen=True)
class GuardDirective:
    lock: str
    line: int


def _comment_tokens(source: str) -> List[Tuple[int, int, str, bool]]:
    """Return ``(line, col, text, inline)`` for every comment in ``source``.

    ``inline`` is True when code precedes the comment on its line.  Falls
    back to a line-based scan if tokenisation fails (the caller reports the
    syntax error separately).
    """
    comments = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for number, text in enumerate(source.splitlines(), start=1):
            stripped = text.lstrip()
            position = text.find("#")
            if position >= 0:
                comments.append(
                    (number, position, text[position:], not stripped.startswith("#"))
                )
        return comments
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line_text = token.line[: token.start[1]]
        comments.append(
            (token.start[0], token.start[1], token.string, bool(line_text.strip()))
        )
    return comments


def _parse_disable_entries(body: str) -> Optional[List[Tuple[str, Optional[str]]]]:
    """Split ``R1(reason),R2-foo(why)`` into ``[(rule, reason-or-None)...]``.

    Reasons may contain balanced parentheses (e.g. a tuple spelled out in
    prose), so the reason is scanned by paren depth rather than by regex.
    """
    entries: List[Tuple[str, Optional[str]]] = []
    rest = body
    while rest.strip():
        match = _ENTRY_RULE.match(rest)
        if not match:
            return None
        rule = match.group("rule")
        rest = rest[match.end():]
        reason: Optional[str] = None
        if rest.startswith("("):
            depth = 0
            for position, character in enumerate(rest):
                if character == "(":
                    depth += 1
                elif character == ")":
                    depth -= 1
                    if depth == 0:
                        reason = rest[1:position].strip() or None
                        rest = rest[position + 1:]
                        break
            else:
                return None  # unbalanced parentheses
        entries.append((rule, reason))
        rest = rest.lstrip()
        if rest.startswith(","):
            rest = rest[1:]
        elif rest.strip():
            return None
    return entries or None


@dataclass
class Directives:
    """All parsed directive comments of one module."""

    suppressions: List[Suppression]
    guards: Dict[int, GuardDirective]
    #: Malformed / reason-less directives, reported as findings.
    errors: List[Finding]

    def suppression_for(self, finding: Finding) -> Optional[Suppression]:
        """Return the suppression covering ``finding``, if any.

        A suppression on line ``L`` covers findings on ``L`` when inline,
        and findings on ``L + 1`` when it stands alone on its line.
        """
        for suppression in self.suppressions:
            target = suppression.line if suppression.inline else suppression.line + 1
            if target != finding.line:
                continue
            if suppression.rule in (finding.rule, finding.family):
                return suppression
        return None


def parse_directives(source: str, path: str) -> Directives:
    """Extract every reprolint directive comment from ``source``."""
    suppressions: List[Suppression] = []
    guards: Dict[int, GuardDirective] = {}
    errors: List[Finding] = []
    for line, col, text, inline in _comment_tokens(source):
        directive = _DIRECTIVE.search(text)
        if directive is None:
            if "reprolint" in text:
                errors.append(
                    Finding(
                        "R0-suppression",
                        path,
                        line,
                        col,
                        f"unparseable reprolint directive: {text.strip()!r}",
                    )
                )
            continue
        body = directive.group("body")
        guarded = _GUARDED.search(body)
        if guarded is not None:
            # inline: the directive annotates its own line; standalone: the
            # assignment starting on the next line (mirrors suppressions).
            guards[line if inline else line + 1] = GuardDirective(
                guarded.group("lock"), line
            )
            continue
        disable = _DISABLE.match(body)
        if disable is None:
            errors.append(
                Finding(
                    "R0-suppression",
                    path,
                    line,
                    col,
                    f"unknown reprolint directive: {body!r} "
                    "(expected disable=RULE(reason) or guarded-by(LOCK))",
                )
            )
            continue
        entries = _parse_disable_entries(disable.group("rules"))
        if entries is None:
            errors.append(
                Finding(
                    "R0-suppression",
                    path,
                    line,
                    col,
                    f"malformed disable directive: {disable.group('rules')!r}",
                )
            )
            continue
        for rule, reason in entries:
            if not reason:
                errors.append(
                    Finding(
                        "R0-suppression",
                        path,
                        line,
                        col,
                        f"suppression of {rule} has no reason; write "
                        f"# reprolint: disable={rule}(why this is sound)",
                    )
                )
                continue
            suppressions.append(Suppression(rule, reason, line, inline))
    return Directives(suppressions, guards, errors)
