"""Per-module analysis context shared by all AST rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional

from tools.reprolint.directives import Directives


@dataclass
class ModuleContext:
    """Everything a rule needs to check one module."""

    path: str
    source: str
    tree: ast.Module
    directives: Directives
    #: ``src/repro``-style relative path fragment used for path-scoped
    #: exemptions (e.g. R1's seeded-randomness carve-out for ``datasets/``).
    relpath: str

    _public_names: Optional[frozenset] = field(default=None, repr=False)

    @property
    def declares_public_surface(self) -> bool:
        """Whether the module declares ``__all__`` (R2 only runs if so)."""
        return self.public_names is not None

    @property
    def public_names(self) -> Optional[frozenset]:
        """The module's ``__all__`` as a frozenset, or ``None``."""
        if self._public_names is None:
            self._public_names = _extract_all(self.tree)
        return None if self._public_names == _MISSING else self._public_names


_MISSING = frozenset({"\0reprolint-no-__all__"})


def _extract_all(tree: ast.Module) -> frozenset:
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                    names = [
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
                    return frozenset(names)
    return _MISSING
