"""R1 — determinism: no order-sensitive iteration over hash-ordered sets,
no global (unseeded) randomness in library code.

The repo's correctness story is *bit-identity*: every engine, build path
and snapshot restore must reproduce the same protector trace byte for
byte.  Two language features silently break that:

* **Set iteration order** is derived from hash values and insertion
  history; iterating a ``set``/``frozenset`` (or calling ``set.pop()``)
  without an explicit ``sorted(...)`` — by convention keyed with
  ``edge_sort_key`` for edges — makes traces differ across processes,
  platforms and PYTHONHASHSEED values.  Dict iteration is exempt: CPython
  dicts are insertion-ordered, so a dict built deterministically iterates
  deterministically.
* **Global RNG state** (``random.random``, ``np.random.rand``,
  ``default_rng()`` with no seed) makes results depend on call order
  across the whole process.  Dataset synthesis under ``datasets/`` is the
  designated entropy boundary (its generators take explicit seeds) and is
  exempt.

Codes: ``R1-set-iteration``, ``R1-set-pop``, ``R1-unseeded-random``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from tools.reprolint.context import ModuleContext
from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule

#: Methods that return a new set (used to propagate "set-typed" through
#: expressions) — stdlib set algebra plus this repo's set-returning APIs.
SET_RETURNING_METHODS = frozenset(
    {
        "intersection",
        "union",
        "difference",
        "symmetric_difference",
        "edge_set",
        "target_set",
        "candidate_edges",
    }
)

#: Builtins whose consumption of an iterable is order-insensitive.  ``sum``
#: is deliberately *not* here: float addition is not associative, so even a
#: reduction can be hash-order dependent at the bit level.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "len", "min", "max", "any", "all", "set", "frozenset"}
)

#: Set-typed annotation heads.
_SET_ANNOTATIONS = frozenset({"Set", "FrozenSet", "set", "frozenset", "AbstractSet", "MutableSet"})

#: Draws from the module-level (global-state) stdlib RNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "lognormvariate",
    }
)

#: Draws from the legacy global numpy RNG (``np.random.*``).
GLOBAL_NP_RANDOM_FUNCS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "binomial",
        "poisson",
        "exponential",
        "beta",
        "gamma",
        "standard_normal",
        "bytes",
        "seed",
    }
)

#: Path fragments where entropy is part of the contract (explicitly-seeded
#: synthesis lives here; the generators take a ``seed`` argument).
ENTROPY_ALLOWED_FRAGMENTS = ("datasets/",)


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    head = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr in _SET_ANNOTATIONS
    return isinstance(head, ast.Name) and head.id in _SET_ANNOTATIONS


class _Scope:
    """One lexical function (or module) scope with set-typed name inference.

    A name counts as set-typed when it is annotated as a set anywhere in
    the scope, or when **every** assignment to it in the scope produces a
    set (flow-insensitive: ``x = set(); ...; x = sorted(x)`` stays clean,
    which trades a missed finding before the re-assignment for not
    flagging the standard determinise-then-iterate idiom).
    """

    def __init__(self) -> None:
        self.set_assigned: Dict[str, int] = {}
        self.other_assigned: Set[str] = set()
        self.annotated: Set[str] = set()

    def is_set_name(self, name: str) -> bool:
        if name in self.annotated:
            return True
        return name in self.set_assigned and name not in self.other_assigned


class DeterminismRule(Rule):
    family = "R1"
    name = "determinism"
    description = (
        "unsorted set/frozenset iteration and unseeded global randomness "
        "break bit-identical traces"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        random_aliases, np_aliases = _module_aliases(ctx.tree)
        entropy_ok = any(
            fragment in ctx.relpath.replace("\\", "/")
            for fragment in ENTROPY_ALLOWED_FRAGMENTS
        )

        for scope_node, body in _iter_scopes(ctx.tree):
            scope = _collect_scope(scope_node, body)
            checker = _ScopeChecker(
                ctx, scope, random_aliases, np_aliases, entropy_ok, findings
            )
            for statement in body:
                checker.visit(statement)
        return findings


def _module_aliases(tree: ast.Module):
    """Map local names to the ``random`` / ``numpy`` modules they denote."""
    random_aliases: Set[str] = set()
    np_aliases: Set[str] = set()
    np_random_aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                if alias.name == "random":
                    random_aliases.add(local)
                elif alias.name in ("numpy", "numpy.random"):
                    if alias.name == "numpy.random" and alias.asname:
                        np_random_aliases.add(alias.asname)
                    else:
                        np_aliases.add(local)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        np_random_aliases.add(alias.asname or "random")
    return random_aliases, (np_aliases, np_random_aliases)


def _iter_scopes(tree: ast.Module):
    """Yield ``(scope node, its immediate body)`` for the module and every
    function, without descending into nested scopes from the parent."""
    yield tree, _body_without_nested_functions(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, _body_without_nested_functions(node.body)


def _body_without_nested_functions(body):
    return list(body)


class _NonRecursingVisitor(ast.NodeVisitor):
    """Visitor that does not descend into nested function/class scopes."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # class bodies are their own scope for assignments, but statements
        # inside methods are visited when _iter_scopes reaches the method
        pass


class _AssignmentCollector(_NonRecursingVisitor):
    def __init__(self, scope: _Scope) -> None:
        self.scope = scope

    def _record(self, target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            if is_set:
                self.scope.set_assigned[target.id] = (
                    self.scope.set_assigned.get(target.id, 0) + 1
                )
            else:
                self.scope.other_assigned.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record(element, False)

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value, self.scope)
        for target in node.targets:
            self._record(target, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and _annotation_is_set(node.annotation):
            self.scope.annotated.add(node.target.id)
        elif node.value is not None:
            self._record(node.target, _is_set_expr(node.value, self.scope))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``s |= other`` keeps a set a set; anything else is unknown
        if not isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            self._record(node.target, False)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._record(node.target, False)
        self.generic_visit(node)


def _collect_scope(scope_node, body) -> _Scope:
    scope = _Scope()
    # parameter annotations participate in the inference
    if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        arguments = scope_node.args
        for arg in (
            list(arguments.posonlyargs)
            + list(arguments.args)
            + list(arguments.kwonlyargs)
            + ([arguments.vararg] if arguments.vararg else [])
            + ([arguments.kwarg] if arguments.kwarg else [])
        ):
            if _annotation_is_set(arg.annotation):
                scope.annotated.add(arg.arg)
    collector = _AssignmentCollector(scope)
    # two passes: names assigned from other set names late in the scope
    # still count (e.g. ``a = set(); b = a``)
    for _ in range(2):
        for statement in body:
            collector.visit(statement)
    return scope


def _is_set_expr(node: ast.expr, scope: _Scope) -> bool:
    """Whether ``node`` statically evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return scope.is_set_name(node.id)
    if isinstance(node, ast.Call):
        function = node.func
        if isinstance(function, ast.Name) and function.id in ("set", "frozenset"):
            return True
        if isinstance(function, ast.Attribute):
            if function.attr in SET_RETURNING_METHODS:
                return True
            if function.attr == "copy" and _is_set_expr(function.value, scope):
                return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, scope) or _is_set_expr(node.right, scope)
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, scope) and _is_set_expr(node.orelse, scope)
    return False


class _ScopeChecker(_NonRecursingVisitor):
    """Flags order-sensitive consumption of set-typed expressions and
    global-RNG draws inside one scope."""

    def __init__(
        self,
        ctx: ModuleContext,
        scope: _Scope,
        random_aliases: Set[str],
        np_aliases,
        entropy_ok: bool,
        findings: List[Finding],
    ) -> None:
        self.ctx = ctx
        self.scope = scope
        self.random_aliases = random_aliases
        self.np_module_aliases, self.np_random_aliases = np_aliases
        self.entropy_ok = entropy_ok
        self.findings = findings
        #: iter expressions absorbed by an order-insensitive consumer
        #: (``sorted(x for x in s)`` is deterministic regardless of s's order)
        self._exempt_iters: Set[int] = set()

    # -- helpers -------------------------------------------------------
    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                code,
                self.ctx.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                message,
            )
        )

    def _check_iteration(self, iterable: ast.expr, what: str) -> None:
        if id(iterable) in self._exempt_iters:
            return
        if _is_set_expr(iterable, self.scope):
            self._flag(
                iterable,
                "R1-set-iteration",
                f"{what} iterates a set/frozenset in hash order; wrap it in "
                "sorted(...) (use edge_sort_key for edges) to keep traces "
                "bit-identical",
            )

    # -- iteration contexts -------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter, "async for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Starred(self, node: ast.Starred) -> None:
        self._check_iteration(node.value, "starred unpacking")
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._check_iteration(node.value, "yield from")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        function = node.func
        # list(s) / tuple(s) / enumerate(s) / iter(s) materialise hash order;
        # sum(s) is a reduction, but float addition is not associative, so a
        # sum over hash order is not bit-identical either
        if isinstance(function, ast.Name):
            if function.id in ("list", "tuple", "enumerate", "iter", "reversed", "sum"):
                for arg in node.args[:1]:
                    self._check_iteration(arg, f"{function.id}()")
            elif function.id in ORDER_INSENSITIVE_CONSUMERS:
                # min/max resolve ties toward the first element seen, so a
                # key= function over a set is still hash-order dependent
                has_key = any(keyword.arg == "key" for keyword in node.keywords)
                if function.id in ("min", "max") and has_key:
                    for arg in node.args[:1]:
                        self._check_iteration(arg, f"{function.id}(key=...)")
                # consume the arguments without flagging iteration that this
                # order-insensitive call absorbs (incl. a directly-passed
                # comprehension's own generators); nested consumers inside
                # the element expressions are still visited and flagged
                for arg in node.args:
                    if isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                    ):
                        for generator in arg.generators:
                            self._exempt_iters.add(id(generator.iter))
                    if not isinstance(arg, ast.Name):
                        self.visit(arg)
                for keyword in node.keywords:
                    self.visit(keyword.value)
                self._check_random_call(node)
                return
        if isinstance(function, ast.Attribute):
            if function.attr == "pop" and not node.args and _is_set_expr(
                function.value, self.scope
            ):
                self._flag(
                    node,
                    "R1-set-pop",
                    "set.pop() removes a hash-order-dependent element; pop "
                    "from a sorted structure instead",
                )
            elif function.attr in ("join", "extend", "update") and node.args:
                # str.join(set) / list.extend(set) materialise hash order;
                # dict/set .update is order-insensitive for sets, but
                # list.extend is not — flag only join/extend
                if function.attr in ("join", "extend"):
                    self._check_iteration(node.args[0], f".{function.attr}()")
        self._check_random_call(node)
        self.generic_visit(node)

    # -- randomness ----------------------------------------------------
    def _check_random_call(self, node: ast.Call) -> None:
        if self.entropy_ok:
            return
        function = node.func
        if not isinstance(function, ast.Attribute):
            # bare Random() / default_rng() constructors are handled below
            if (
                isinstance(function, ast.Name)
                and function.id == "default_rng"
                and not node.args
                and not node.keywords
            ):
                self._flag(
                    node,
                    "R1-unseeded-random",
                    "default_rng() without a seed draws OS entropy; pass an "
                    "explicit seed",
                )
            return
        receiver = function.value
        # random.X(...)
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in self.random_aliases
            and function.attr in GLOBAL_RANDOM_FUNCS
        ):
            self._flag(
                node,
                "R1-unseeded-random",
                f"random.{function.attr}() uses the process-global RNG; use "
                "an explicitly seeded random.Random(seed) instance",
            )
            return
        # np.random.X(...) or (import numpy.random as npr) npr.X(...)
        is_np_random = (
            isinstance(receiver, ast.Attribute)
            and receiver.attr == "random"
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id in self.np_module_aliases
        ) or (
            isinstance(receiver, ast.Name) and receiver.id in self.np_random_aliases
        )
        if is_np_random:
            if function.attr in GLOBAL_NP_RANDOM_FUNCS:
                self._flag(
                    node,
                    "R1-unseeded-random",
                    f"np.random.{function.attr}() uses the global numpy RNG; "
                    "use np.random.default_rng(seed)",
                )
            elif function.attr in ("default_rng", "RandomState") and not (
                node.args or node.keywords
            ):
                self._flag(
                    node,
                    "R1-unseeded-random",
                    f"np.random.{function.attr}() without a seed draws OS "
                    "entropy; pass an explicit seed",
                )
