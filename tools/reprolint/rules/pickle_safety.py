"""R4 — pickle-safety: nothing unpicklable crosses the process pool.

The parallel build (``build_workers``) and ``solve_many(mode="process")``
pickle their payloads into ``ProcessPoolExecutor`` workers.  Lambdas,
functions defined inside another function (closures), and local classes
cannot be pickled — the failure surfaces at runtime, on the multi-core
machine that CI is not, as a ``PicklingError`` deep inside
``concurrent.futures``.

The rule finds every name bound to ``ProcessPoolExecutor(...)``
(assignments and ``with ... as`` aliases) and flags:

* a ``lambda`` passed to ``.submit(...)`` / ``.map(...)`` of such a name,
* a function or class *defined inside a function* passed there,
* a ``functools.partial`` over either of those,
* a ``lambda`` / local function as the pool's ``initializer=`` or inside
  ``initargs=``.

Thread pools are exempt — threads share the address space and never
pickle.  Module-level functions (and methods) are picklable by reference
and stay clean.

Code: ``R4-unpicklable-task``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from tools.reprolint.context import ModuleContext
from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule

_POOL_NAMES = ("ProcessPoolExecutor",)


def _is_process_pool_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    function = node.func
    if isinstance(function, ast.Name):
        return function.id in _POOL_NAMES
    if isinstance(function, ast.Attribute):
        return function.attr in _POOL_NAMES
    return False


def _function_local_definitions(tree: ast.Module) -> Set[str]:
    """Names of functions/classes defined *inside* a function anywhere in
    the module — exactly the definitions pickle cannot reach by reference."""
    local: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(node):
            if inner is node:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                local.add(inner.name)
    return local


def _pool_names(tree: ast.Module) -> Set[str]:
    pools: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_process_pool_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    pools.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_process_pool_call(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    pools.add(item.optional_vars.id)
    return pools


class PickleSafetyRule(Rule):
    family = "R4"
    name = "pickle-safety"
    description = (
        "lambdas/closures/local classes must not be submitted to a "
        "ProcessPoolExecutor"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        local_definitions = _function_local_definitions(ctx.tree)
        pools = _pool_names(ctx.tree)

        def describe(node: ast.expr) -> str:
            if isinstance(node, ast.Lambda):
                return "a lambda"
            if isinstance(node, ast.Name) and node.id in local_definitions:
                return f"function-local definition {node.id!r}"
            if isinstance(node, ast.Call):
                function = node.func
                partial = (
                    isinstance(function, ast.Name) and function.id == "partial"
                ) or (
                    isinstance(function, ast.Attribute)
                    and function.attr == "partial"
                )
                if partial and node.args:
                    inner = describe(node.args[0])
                    if inner:
                        return f"functools.partial over {inner}"
            return ""

        def flag(node: ast.AST, what: str, where: str) -> None:
            findings.append(
                Finding(
                    "R4-unpicklable-task",
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    f"{what} passed to {where} cannot be pickled into a "
                    "worker process; move it to module level",
                )
            )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_process_pool_call(node):
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        what = describe(keyword.value)
                        if what:
                            flag(
                                keyword.value,
                                what,
                                "ProcessPoolExecutor(initializer=)",
                            )
                    elif keyword.arg == "initargs" and isinstance(
                        keyword.value, (ast.Tuple, ast.List)
                    ):
                        for element in keyword.value.elts:
                            what = describe(element)
                            if what:
                                flag(element, what, "ProcessPoolExecutor(initargs=)")
                continue
            function = node.func
            if (
                isinstance(function, ast.Attribute)
                and function.attr in ("submit", "map")
                and isinstance(function.value, ast.Name)
                and function.value.id in pools
            ):
                for arg in node.args[:1]:
                    what = describe(arg)
                    if what:
                        flag(arg, what, f"ProcessPoolExecutor.{function.attr}()")
        return findings
