"""R6 — bench-schema: committed benchmark reports and the scripts that emit
them must stay in sync with the CI regression gate.

``benchmarks/check_bench_regression.py`` is the CI gate: it dispatches on
a report's ``"kind"`` and enforces identity flags, speedup floors and
acceptance flags per kind.  The gate *silently un-arms* when a key is
renamed on either side — ``committed.get("delta_speedup_met")`` of a
report that spells it ``delta_ok`` is just ``None`` and the check
degrades to a no-op.  This rule makes that a lint failure instead:

1. **Gate registry extraction.**  The per-kind comparator functions are
   read from the gate's AST: every string key read off the ``fresh`` /
   ``committed`` dicts, every flag tuple passed to ``_check_flags``, and
   the flag/target tuples iterated by the engine-kernel tail become that
   kind's *required keys*.
2. **Committed reports.**  Every ``BENCH_*.json`` at the repository root
   must parse, carry a known ``kind`` (missing = engine-kernel), and
   contain every required key of its kind.  Reports with a ``methods``
   table must have a non-empty one whose rows carry the per-method keys.
3. **Emitting scripts.**  For ``BENCH_<name>.json`` the sibling
   ``benchmarks/bench_<name>.py`` must mention every required key as a
   string literal — renaming an emitted flag in the script without
   updating the gate (or vice versa) fails here, before a regenerated
   report ever reaches CI.

Code: ``R6-bench-schema``.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import ProjectRule

GATE_RELPATH = Path("benchmarks") / "check_bench_regression.py"

#: keys read from the *fresh* report only; legitimate to omit in a
#: committed report (machine-shape escape hatches).
FRESH_ONLY_KEYS = frozenset({"workers_beat_serial_expected"})

#: the kind the gate assumes when a report carries no "kind" field.
DEFAULT_KIND = "engine_kernel"


class GateRegistry:
    """Per-kind required keys extracted from the regression gate's AST."""

    def __init__(
        self,
        top_level: Dict[str, Set[str]],
        nested: Dict[str, Set[str]],
    ) -> None:
        #: kind -> keys required at the top level of the report
        self.top_level = top_level
        #: kind -> keys required in every row of the report's "methods" table
        self.nested = nested

    @property
    def kinds(self) -> Set[str]:
        return set(self.top_level)


def extract_gate_registry(gate_path: Path) -> GateRegistry:
    """Parse the regression gate and derive each kind's required keys."""
    tree = ast.parse(gate_path.read_text(encoding="utf-8"))
    functions = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }
    compare = functions.get("compare")
    if compare is None:
        raise ValueError(f"{gate_path} has no compare() dispatcher")

    # dispatch table: `if committed.get("kind") == "X": return compare_Y(...)`
    kind_to_function: Dict[str, Optional[str]] = {}
    for statement in compare.body:
        if not isinstance(statement, ast.If):
            continue
        kind = _dispatched_kind(statement.test)
        if kind is None:
            continue
        for inner in statement.body:
            if isinstance(inner, ast.Return) and isinstance(inner.value, ast.Call):
                callee = inner.value.func
                if isinstance(callee, ast.Name):
                    kind_to_function[kind] = callee.id

    top_level: Dict[str, Set[str]] = {}
    nested: Dict[str, Set[str]] = {}
    for kind, function_name in kind_to_function.items():
        function = functions.get(function_name)
        if function is None:
            continue
        keys, row_keys = _required_keys(function)
        top_level[kind] = keys
        nested[kind] = row_keys
    # the dispatcher's own tail is the default (engine-kernel) comparator
    keys, row_keys = _required_keys(compare)
    keys.discard("kind")
    top_level[DEFAULT_KIND] = keys
    nested[DEFAULT_KIND] = row_keys
    return GateRegistry(top_level, nested)


def _dispatched_kind(test: ast.expr) -> Optional[str]:
    """``committed.get("kind") == "X"`` -> ``"X"``."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
    ):
        return None
    left, right = test.left, test.comparators[0]
    for getter, constant in ((left, right), (right, left)):
        if (
            isinstance(getter, ast.Call)
            and isinstance(getter.func, ast.Attribute)
            and getter.func.attr == "get"
            and getter.args
            and isinstance(getter.args[0], ast.Constant)
            and getter.args[0].value == "kind"
            and isinstance(constant, ast.Constant)
            and isinstance(constant.value, str)
        ):
            return constant.value
    return None


def _required_keys(function: ast.FunctionDef) -> Tuple[Set[str], Set[str]]:
    """Collect ``(top-level keys, per-method-row keys)`` one comparator reads."""
    keys: Set[str] = set()
    row_keys: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            function_expr = node.func
            # fresh.get("k") / committed.get("k") / *_row.get("k")
            if (
                isinstance(function_expr, ast.Attribute)
                and function_expr.attr == "get"
                and isinstance(function_expr.value, ast.Name)
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                receiver = function_expr.value.id
                key = node.args[0].value
                if receiver in ("fresh", "committed"):
                    keys.add(key)
                elif receiver.endswith("_row"):
                    row_keys.add(key)
            # _check_flags(fresh, committed, ("flag_a", "flag_b"))
            if (
                isinstance(function_expr, ast.Name)
                and function_expr.id == "_check_flags"
                and len(node.args) >= 3
                and isinstance(node.args[2], (ast.Tuple, ast.List))
            ):
                for element in node.args[2].elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        keys.add(element.value)
        elif isinstance(node, ast.For) and isinstance(
            node.iter, (ast.Tuple, ast.List)
        ):
            # for flag, target_key in (("a_met", "a_target"), ...):
            for element in ast.walk(node.iter):
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    keys.add(element.value)
    keys -= FRESH_ONLY_KEYS
    return keys, row_keys


def _string_literals(tree: ast.AST) -> Set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


class BenchSchemaRule(ProjectRule):
    family = "R6"
    name = "bench-schema"
    description = (
        "committed BENCH_*.json reports and emitting scripts carry every "
        "key the CI regression gate reads"
    )

    def check_project(self, root: Path) -> List[Finding]:
        findings: List[Finding] = []
        gate_path = root / GATE_RELPATH
        if not gate_path.exists():
            return []
        try:
            registry = extract_gate_registry(gate_path)
        except (ValueError, SyntaxError) as error:
            return [
                Finding(
                    "R6-bench-schema",
                    str(gate_path),
                    1,
                    0,
                    f"could not extract the gate registry: {error}",
                )
            ]

        for report_path in sorted(root.glob("BENCH_*.json")):
            findings.extend(self._check_report(root, report_path, registry))
        return findings

    def _check_report(
        self, root: Path, report_path: Path, registry: GateRegistry
    ) -> List[Finding]:
        findings: List[Finding] = []
        relative = str(report_path.relative_to(root))
        try:
            payload = json.loads(report_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as error:
            return [
                Finding(
                    "R6-bench-schema", relative, 1, 0, f"unreadable report: {error}"
                )
            ]
        if not isinstance(payload, dict):
            return [
                Finding(
                    "R6-bench-schema",
                    relative,
                    1,
                    0,
                    "report must be a JSON object",
                )
            ]
        kind = payload.get("kind", DEFAULT_KIND)
        if kind not in registry.kinds:
            return [
                Finding(
                    "R6-bench-schema",
                    relative,
                    1,
                    0,
                    f"unknown report kind {kind!r}; the gate dispatches on "
                    f"{sorted(registry.kinds)} — an unrecognised kind would "
                    "be checked as engine-kernel and silently pass",
                )
            ]
        required = registry.top_level[kind]
        for key in sorted(required - set(payload)):
            findings.append(
                Finding(
                    "R6-bench-schema",
                    relative,
                    1,
                    0,
                    f"missing key {key!r} read by the {kind} gate — the "
                    "corresponding CI check is un-armed",
                )
            )
        row_keys = registry.nested.get(kind, set())
        if "methods" in required:
            methods = payload.get("methods")
            if not isinstance(methods, dict) or not methods:
                findings.append(
                    Finding(
                        "R6-bench-schema",
                        relative,
                        1,
                        0,
                        f"{kind} report needs a non-empty 'methods' table",
                    )
                )
            else:
                for method, row in sorted(methods.items()):
                    if not isinstance(row, dict):
                        continue
                    for key in sorted(row_keys - set(row)):
                        findings.append(
                            Finding(
                                "R6-bench-schema",
                                relative,
                                1,
                                0,
                                f"methods[{method!r}] misses {key!r} read by "
                                "the gate",
                            )
                        )

        # the emitting script must spell every gate key literally
        script_path = (
            root
            / "benchmarks"
            / report_path.name.replace("BENCH_", "bench_").replace(".json", ".py")
        )
        if script_path.exists():
            try:
                literals = _string_literals(
                    ast.parse(script_path.read_text(encoding="utf-8"))
                )
            except SyntaxError as error:
                return findings + [
                    Finding(
                        "R6-bench-schema",
                        str(script_path.relative_to(root)),
                        getattr(error, "lineno", 1) or 1,
                        0,
                        f"unparseable benchmark script: {error.msg}",
                    )
                ]
            for key in sorted((required | row_keys) - literals):
                findings.append(
                    Finding(
                        "R6-bench-schema",
                        str(script_path.relative_to(root)),
                        1,
                        0,
                        f"script never emits gate key {key!r} (its committed "
                        f"report {report_path.name} would drop it on the "
                        "next regeneration, un-arming that CI check)",
                    )
                )
        return findings
