"""Rule interfaces.

A :class:`Rule` checks one module at a time from its AST; a
:class:`ProjectRule` additionally (or instead) checks repository-level
artifacts once per run — R6 validates committed benchmark reports against
the regression-gate registry, which no single module contains.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from tools.reprolint.context import ModuleContext
from tools.reprolint.findings import Finding


class Rule:
    """One rule family (``family``, e.g. ``"R3"``) with a short name."""

    family: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        return []


class ProjectRule(Rule):
    """A rule that also runs once against the repository root."""

    def check_project(self, root: Path) -> List[Finding]:
        return []
