"""R7 — native-boundary: ctypes stays behind the ``_native`` loader.

The native coverage kernel is deliberately quarantined: one C file, one
loader module, one dispatch point.  Everything else in the package must
be unable to tell whether the kernel is compiled C or numpy — that is
what keeps the numpy path an executable reference and the forced-fallback
CI leg meaningful.  Three codes enforce the quarantine statically:

* ``R7-ctypes-import`` — ``import ctypes`` anywhere under ``src/repro/``
  outside ``src/repro/_native/``.  Call sites never touch ctypes; they
  receive pre-bound callables from :func:`repro._native.load_kernel`.
* ``R7-undeclared-symbol`` — a symbol bound from a loaded library
  (``name = lib.repro_...`` after ``lib = ctypes.CDLL(...)``) must get
  **both** ``name.argtypes = ...`` and ``name.restype = ...`` in the same
  scope.  An undeclared symbol defaults to int-sized args/results, which
  silently truncates 64-bit pointers — the classic ctypes segfault.
* ``R7-unguarded-native-call`` — outside ``_native``, a call through a
  ``._native`` attribute (``self._native.kill_instances(...)``, or via a
  local alias ``native = self._native``) must sit either inside a
  function whose name ends with ``_native`` (the dispatch targets, only
  entered after the caller's ``if self._native is not None`` check) or
  lexically under an ``if``/``while`` whose test mentions ``_native``.
  Anything else risks calling ``None`` on the fallback path.

Codes: ``R7-ctypes-import``, ``R7-undeclared-symbol``,
``R7-unguarded-native-call``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from tools.reprolint.context import ModuleContext
from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule

#: path fragment that marks the one package allowed to touch ctypes.
_NATIVE_PACKAGE_FRAGMENT = "repro/_native"


def _in_native_package(ctx: ModuleContext) -> bool:
    return _NATIVE_PACKAGE_FRAGMENT in ctx.relpath.replace("\\", "/")


def _in_repro_package(ctx: ModuleContext) -> bool:
    normalized = ctx.relpath.replace("\\", "/")
    return "src/repro/" in normalized or normalized.startswith("repro/")


class NativeBoundaryRule(Rule):
    family = "R7"
    name = "native-boundary"
    description = (
        "ctypes only inside repro._native; bound symbols fully declared; "
        "native calls behind the kernel-dispatch guard"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        if _in_native_package(ctx):
            _check_symbol_declarations(ctx, findings)
            return findings
        if _in_repro_package(ctx):
            _check_ctypes_imports(ctx, findings)
        _check_native_call_guards(ctx, findings)
        return findings


def _check_ctypes_imports(ctx: ModuleContext, findings: List[Finding]) -> None:
    for node in ast.walk(ctx.tree):
        imported = None
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "ctypes" or alias.name.startswith("ctypes."):
                    imported = alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "ctypes" or module.startswith("ctypes."):
                imported = module
        if imported is not None:
            findings.append(
                Finding(
                    "R7-ctypes-import",
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    f"import of {imported!r} outside repro._native; the "
                    "loader module is the only sanctioned ctypes boundary — "
                    "consume pre-bound kernels via repro._native.load_kernel()",
                )
            )


def _cdll_result_names(scope: ast.AST) -> Set[str]:
    """Names in ``scope`` assigned from a ``CDLL(...)``-shaped call."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        function = node.value.func
        head = function.attr if isinstance(function, ast.Attribute) else (
            function.id if isinstance(function, ast.Name) else ""
        )
        if head in ("CDLL", "PyDLL", "WinDLL", "LoadLibrary"):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _check_symbol_declarations(ctx: ModuleContext, findings: List[Finding]) -> None:
    """Inside ``_native``: every ``name = lib.symbol`` needs argtypes+restype."""
    for scope in ast.walk(ctx.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        lib_names = _cdll_result_names(scope)
        if not lib_names:
            continue
        bound: Dict[str, ast.Assign] = {}
        declared: Dict[str, Set[str]] = {}
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id in lib_names
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound[target.id] = node
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.attr in ("argtypes", "restype")
                ):
                    declared.setdefault(target.value.id, set()).add(target.attr)
        for name, node in sorted(bound.items(), key=lambda item: item[1].lineno):
            missing = {"argtypes", "restype"} - declared.get(name, set())
            if missing:
                findings.append(
                    Finding(
                        "R7-undeclared-symbol",
                        ctx.path,
                        node.lineno,
                        node.col_offset,
                        f"bound symbol {name!r} is missing "
                        f"{' and '.join(sorted(missing))}; ctypes defaults "
                        "to int-sized conversions, which truncate 64-bit "
                        "pointers",
                    )
                )


def _test_mentions_native(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "_native":
            return True
        if isinstance(node, ast.Name) and node.id in ("native", "_native"):
            return True
    return False


def _is_native_access(node: ast.expr, aliases: Set[str]) -> bool:
    """Whether ``node`` reads through a ``._native`` kernel handle."""
    if isinstance(node, ast.Attribute):
        if node.attr == "_native":
            return True
        return _is_native_access(node.value, aliases)
    if isinstance(node, ast.Name):
        return node.id in aliases
    return False


def _check_native_call_guards(ctx: ModuleContext, findings: List[Finding]) -> None:
    for function in ast.walk(ctx.tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if function.name.endswith("_native"):
            continue  # dispatch target: entered only behind the caller's guard
        aliases: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Attribute
            ):
                if node.value.attr == "_native":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            aliases.add(target.id)
        _walk_guarded(function.body, aliases, False, ctx, findings)


def _walk_guarded(
    statements: List[ast.stmt],
    aliases: Set[str],
    guarded: bool,
    ctx: ModuleContext,
    findings: List[Finding],
) -> None:
    for statement in statements:
        if isinstance(statement, (ast.If, ast.While)):
            branch_guarded = guarded or _test_mentions_native(statement.test)
            _flag_unguarded_calls(statement.test, aliases, True, ctx, findings)
            _walk_guarded(statement.body, aliases, branch_guarded, ctx, findings)
            _walk_guarded(statement.orelse, aliases, guarded, ctx, findings)
            continue
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested functions get their own pass
        for field_name in statement._fields:
            value = getattr(statement, field_name)
            bodies = value if isinstance(value, list) else [value]
            for item in bodies:
                if isinstance(item, ast.stmt):
                    _walk_guarded([item], aliases, guarded, ctx, findings)
                elif isinstance(item, ast.expr):
                    _flag_unguarded_calls(item, aliases, guarded, ctx, findings)


def _flag_unguarded_calls(
    node: ast.expr,
    aliases: Set[str],
    guarded: bool,
    ctx: ModuleContext,
    findings: List[Finding],
) -> None:
    if guarded or node is None:
        return
    for call in ast.walk(node):
        if not isinstance(call, ast.Call):
            continue
        if isinstance(call.func, ast.Attribute) and _is_native_access(
            call.func.value, aliases
        ):
            findings.append(
                Finding(
                    "R7-unguarded-native-call",
                    ctx.path,
                    call.lineno,
                    call.col_offset,
                    f"call through the native kernel handle "
                    f"({ast.unparse(call.func)}) outside a *_native dispatch "
                    "method and outside an `if ..._native ...:` guard; on the "
                    "numpy fallback this handle is None",
                )
            )
