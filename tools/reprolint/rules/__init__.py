"""Rule registry: every rule family reprolint ships."""

from __future__ import annotations

from typing import Dict, List

from tools.reprolint.rules.base import ProjectRule, Rule
from tools.reprolint.rules.bench_schema import BenchSchemaRule
from tools.reprolint.rules.determinism import DeterminismRule
from tools.reprolint.rules.exception_taxonomy import ExceptionTaxonomyRule
from tools.reprolint.rules.lock_discipline import LockDisciplineRule
from tools.reprolint.rules.native_boundary import NativeBoundaryRule
from tools.reprolint.rules.numpy_boundary import NumpyBoundaryRule
from tools.reprolint.rules.pickle_safety import PickleSafetyRule
from tools.reprolint.rules.shard_boundary import ShardBoundaryRule

__all__ = ["ALL_RULES", "RULES_BY_FAMILY", "ProjectRule", "Rule"]

#: Every shipped rule, in family order.
ALL_RULES: List[Rule] = [
    DeterminismRule(),
    NumpyBoundaryRule(),
    LockDisciplineRule(),
    PickleSafetyRule(),
    ExceptionTaxonomyRule(),
    BenchSchemaRule(),
    NativeBoundaryRule(),
    ShardBoundaryRule(),
]

RULES_BY_FAMILY: Dict[str, Rule] = {rule.family: rule for rule in ALL_RULES}
