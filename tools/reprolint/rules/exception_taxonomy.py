"""R5 — exception-taxonomy: library errors raise typed ``repro.exceptions``.

``repro.exceptions`` gives every layer a typed error base (``GraphError``,
``MotifError``, ``TPPError``, ``PredictionError``, ``DatasetError``,
``PersistenceError``, ``ExperimentError``...), all derived from
``ReproError`` so callers can catch library failures without swallowing
programming errors.  A bare ``raise ValueError(...)`` punches a hole in
that contract: the caller either misses it or is forced back to catching
builtins.

The rule flags ``raise`` of the generic builtins (``Exception``,
``ValueError``, ``RuntimeError``...) anywhere except the taxonomy module
itself.  ``TypeError`` is deliberately exempt: a wrong *type* passed by
the programmer is a programming error, which the taxonomy's docstring
explicitly leaves to the builtins.  Re-raises (``raise`` with no
expression) and raises of anything user-defined pass.

Code: ``R5-untyped-raise``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from tools.reprolint.context import ModuleContext
from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule

#: Generic builtins that a library layer must not raise directly.
GENERIC_EXCEPTIONS = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "RuntimeError",
        "ArithmeticError",
        "LookupError",
        "EnvironmentError",
        "OSError",
    }
)

#: Module basenames exempt from the rule (the taxonomy itself).
EXEMPT_MODULES = ("exceptions.py",)


class ExceptionTaxonomyRule(Rule):
    family = "R5"
    name = "exception-taxonomy"
    description = (
        "raise typed repro.exceptions classes, not generic builtins"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        normalized = ctx.relpath.replace("\\", "/")
        if any(normalized.endswith(module) for module in EXEMPT_MODULES):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _raised_name(node.exc)
            if name in GENERIC_EXCEPTIONS:
                findings.append(
                    Finding(
                        "R5-untyped-raise",
                        ctx.path,
                        node.lineno,
                        node.col_offset,
                        f"raise of bare {name}; use the matching "
                        "repro.exceptions class for this layer (subclassing "
                        f"{name} keeps existing handlers working)",
                    )
                )
        return findings


def _raised_name(exc: ast.expr) -> Optional[str]:
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None
