"""R3 — lock-discipline: guarded attributes are only written under their lock.

``ProtectionService`` serves concurrent readers while ``apply_delta``
performs writer-locked copy-on-write swaps: every shared attribute must be
re-bound only inside ``with self._lock:`` so a reader never observes a
half-swapped session.  The invariant is declared where the attribute is
born::

    self._queries_served = 0  # reprolint: guarded-by(_lock)

and this rule then flags any write to that attribute — plain assignment,
augmented assignment, subscript store or ``del`` — outside a ``with
self._lock:`` block (any method except the declaring ``__init__``, where
the object is not shared yet).

The check is lexical: a write in a helper called *from* a locked region is
not visible to it (document such helpers with a suppression naming the
caller's lock).  Reads are never checked — the repo's pattern is
copy-on-write, where readers capture a consistent snapshot under the lock
themselves or tolerate a stale-but-consistent view.

Code: ``R3-unlocked-write``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from tools.reprolint.context import ModuleContext
from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule


class LockDisciplineRule(Rule):
    family = "R3"
    name = "lock-discipline"
    description = (
        "attributes declared guarded-by(LOCK) are only written inside "
        "`with self.LOCK:`"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if not ctx.directives.guards:
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                _check_class(ctx, node, findings)
        return findings


def _check_class(
    ctx: ModuleContext, class_node: ast.ClassDef, findings: List[Finding]
) -> None:
    guarded = _guarded_attributes(ctx, class_node)
    if not guarded:
        return
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name == "__init__":
            continue
        _check_method(ctx, method, guarded, findings)


def _guarded_attributes(
    ctx: ModuleContext, class_node: ast.ClassDef
) -> Dict[str, str]:
    """Collect ``{attribute: lock}`` from guarded-by comments on
    ``self.<attribute> = ...`` lines anywhere in the class body."""
    guarded: Dict[str, str] = {}
    for node in ast.walk(class_node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        directive = None
        for line in range(node.lineno, getattr(node, "end_lineno", node.lineno) + 1):
            directive = ctx.directives.guards.get(line)
            if directive is not None:
                break
        if directive is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attribute = _self_attribute(target)
            if attribute is not None:
                guarded[attribute] = directive.lock
    return guarded


def _self_attribute(node: ast.expr) -> Optional[str]:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_attribute(node: ast.expr) -> Optional[str]:
    """The guarded attribute a store-target touches.

    Covers ``self.X`` (re-binding) and ``self.X[...]`` (container store);
    deeper mutation through method calls is out of scope.
    """
    direct = _self_attribute(node)
    if direct is not None:
        return direct
    if isinstance(node, ast.Subscript):
        return _self_attribute(node.value)
    return None


def _check_method(
    ctx: ModuleContext,
    method: ast.FunctionDef,
    guarded: Dict[str, str],
    findings: List[Finding],
) -> None:
    for statement, lock_stack in _walk_with_locks(method.body, ()):
        targets: List[Tuple[ast.expr, ast.AST]] = []
        if isinstance(statement, ast.Assign):
            targets = [(target, statement) for target in statement.targets]
        elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
            targets = [(statement.target, statement)]
        elif isinstance(statement, ast.Delete):
            targets = [(target, statement) for target in statement.targets]
        for target, anchor in targets:
            attribute = _written_attribute(target)
            if attribute is None or attribute not in guarded:
                continue
            lock = guarded[attribute]
            if lock in lock_stack:
                continue
            findings.append(
                Finding(
                    "R3-unlocked-write",
                    ctx.path,
                    anchor.lineno,
                    anchor.col_offset,
                    f"write to self.{attribute} (guarded-by({lock})) outside "
                    f"`with self.{lock}:` in {method.name}()",
                )
            )


def _walk_with_locks(body, lock_stack: Tuple[str, ...]):
    """Yield every statement with the tuple of ``self.<lock>`` context
    managers lexically surrounding it."""
    for statement in body:
        yield statement, lock_stack
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            held = list(lock_stack)
            for item in statement.items:
                lock = _self_attribute(item.context_expr)
                if lock is not None:
                    held.append(lock)
            yield from _walk_with_locks(statement.body, tuple(held))
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested function runs later, possibly without the lock
            yield from _walk_with_locks(statement.body, ())
        elif isinstance(statement, (ast.If, ast.While, ast.For, ast.AsyncFor)):
            yield from _walk_with_locks(statement.body, lock_stack)
            yield from _walk_with_locks(statement.orelse, lock_stack)
        elif isinstance(statement, ast.Try):
            yield from _walk_with_locks(statement.body, lock_stack)
            for handler in statement.handlers:
                yield from _walk_with_locks(handler.body, lock_stack)
            yield from _walk_with_locks(statement.orelse, lock_stack)
            yield from _walk_with_locks(statement.finalbody, lock_stack)
