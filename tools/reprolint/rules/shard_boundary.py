"""R8 — shard-boundary: service code builds indexes through the factories.

The sharding identity theorem rests on one construction invariant: every
index in the service layer is enumerated on a phase-1 graph with *all*
session targets hidden, filtered *before* enumeration.  Two factories
embody it — :func:`repro.service.sharding._build_shard_index` (the shard
path) and :meth:`ProtectionService.for_filtered_targets` (the subset
path, which routes through ``TPPProblem``).  A service module that calls
``TargetSubgraphIndex(...)`` directly can silently enumerate non-shard
targets or a differently-filtered graph, breaking bit-identity in a way
no single test would localise — so the lint forbids the constructor in
``repro/service/`` outside the sanctioned factory.

Code: ``R8-direct-index``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from tools.reprolint.context import ModuleContext
from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule

#: path fragment marking the service layer the rule polices.
_SERVICE_PACKAGE_FRAGMENT = "repro/service/"

#: the one function allowed to construct a TargetSubgraphIndex directly.
_SANCTIONED_FACTORY = "_build_shard_index"


def _in_service_package(ctx: ModuleContext) -> bool:
    return _SERVICE_PACKAGE_FRAGMENT in ctx.relpath.replace("\\", "/")


def _constructs_index(call: ast.Call) -> bool:
    function = call.func
    if isinstance(function, ast.Name):
        return function.id == "TargetSubgraphIndex"
    if isinstance(function, ast.Attribute):
        return function.attr == "TargetSubgraphIndex"
    return False


class ShardBoundaryRule(Rule):
    family = "R8"
    name = "shard-boundary"
    description = (
        "service code never constructs TargetSubgraphIndex directly; "
        "indexes come from the shard/session factories that filter "
        "targets before enumeration"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        if not _in_service_package(ctx):
            return findings
        _check_scope(ctx.tree, None, ctx, findings)
        return findings


def _check_scope(
    scope: ast.AST,
    enclosing: Optional[str],
    ctx: ModuleContext,
    findings: List[Finding],
) -> None:
    """Walk ``scope`` tracking the innermost enclosing function name."""
    for node in ast.iter_child_nodes(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_scope(node, node.name, ctx, findings)
            continue
        if isinstance(node, ast.ClassDef):
            _check_scope(node, enclosing, ctx, findings)
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call) or not _constructs_index(call):
                continue
            if enclosing == _SANCTIONED_FACTORY:
                continue
            findings.append(
                Finding(
                    "R8-direct-index",
                    ctx.path,
                    call.lineno,
                    call.col_offset,
                    "direct TargetSubgraphIndex construction in service "
                    f"code (enclosing function {enclosing or '<module>'!r}); "
                    "build indexes through _build_shard_index or "
                    "ProtectionService.for_filtered_targets so targets are "
                    "filtered before enumeration",
                )
            )
