"""R2 — numpy-boundary: numpy scalars must not escape public returns.

The kernel stores counters in numpy arrays; reading one element back
yields an ``np.int64``, not an ``int``.  That scalar compares and prints
like an int, then breaks at the JSON/API boundary: ``json.dumps`` raises
``TypeError``, pickled payloads bloat, and snapshot content hashes differ
between platforms with different default widths.  The repo's convention —
enforced by every ``to_dict`` and kernel accessor so far — is an ``int()``
(or ``.item()`` / ``.tolist()``) conversion at the boundary.

The rule walks the return expressions of non-underscore functions and
methods (plus ``to_dict``, public by convention) in modules that declare a
public surface (``__all__``) and flags expressions that statically look
like numpy *scalars*:

* ``np.sum(...)`` / ``np.max(...)`` and friends with no ``axis=``,
* the same aggregator methods on numpy-tainted names (``counts.sum()``),
* scalar subscripts of numpy-tainted names (``row[i]``),
* names assigned from any of the above,
* the values of dict/tuple displays built from any of the above.

Whole-array returns are deliberately not flagged: returning an
``np.ndarray`` is a legitimate public contract (``IndexedGraph.csr()``);
the hazard is the *scalar* that masquerades as an int.

Code: ``R2-numpy-return``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from tools.reprolint.context import ModuleContext
from tools.reprolint.findings import Finding
from tools.reprolint.rules.base import Rule

#: numpy module-level reductions that yield a scalar when called with no
#: ``axis=`` keyword.
NP_SCALAR_FUNCS = frozenset(
    {
        "sum",
        "prod",
        "max",
        "min",
        "amax",
        "amin",
        "mean",
        "median",
        "std",
        "var",
        "ptp",
        "trace",
        "dot",
        "vdot",
        "inner",
        "argmax",
        "argmin",
        "count_nonzero",
        "searchsorted",
        "int64",
        "int32",
        "intp",
        "float64",
        "float32",
        "bool_",
    }
)

#: the same reductions as ndarray methods.
NDARRAY_SCALAR_METHODS = frozenset(
    {
        "sum",
        "prod",
        "max",
        "min",
        "mean",
        "std",
        "var",
        "ptp",
        "trace",
        "dot",
        "argmax",
        "argmin",
    }
)

#: calls/wrappers that convert back to native Python types.
SAFE_CONVERTERS = frozenset(
    {"int", "float", "bool", "str", "len", "round", "range", "repr"}
)
SAFE_METHODS = frozenset({"item", "tolist"})

#: ndarray-returning methods that keep a name numpy-tainted.
_TAINT_PRESERVING_METHODS = frozenset(
    {"astype", "copy", "reshape", "ravel", "flatten", "cumsum", "clip", "take"}
)

#: annotation heads that mark a parameter as a numpy array.
_NDARRAY_ANNOTATIONS = frozenset({"ndarray", "NDArray"})


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _annotation_is_ndarray(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    head = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr in _NDARRAY_ANNOTATIONS
    if isinstance(head, ast.Name):
        return head.id in _NDARRAY_ANNOTATIONS
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        text = head.value
        return any(marker in text for marker in _NDARRAY_ANNOTATIONS)
    return False


class NumpyBoundaryRule(Rule):
    family = "R2"
    name = "numpy-boundary"
    description = (
        "public functions must int()-convert numpy scalars before returning"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if not ctx.declares_public_surface:
            return []
        np_aliases = _numpy_aliases(ctx.tree)
        findings: List[Finding] = []
        for function in _public_functions(ctx.tree):
            _check_function(ctx, function, np_aliases, findings)
        return findings


def _public_functions(tree: ast.Module):
    """Yield every non-underscore function/method (dunders excluded,
    ``to_dict`` always included)."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        name = node.name
        if name == "to_dict":
            yield node
        elif not name.startswith("_"):
            yield node


def _check_function(
    ctx: ModuleContext,
    function: ast.FunctionDef,
    np_aliases: Set[str],
    findings: List[Finding],
) -> None:
    tainted = _tainted_names(function, np_aliases)
    scalar_names = _scalar_tainted_names(function, tainted, np_aliases)
    for node in ast.walk(function):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        for expression, why in _scalar_leaks(
            node.value, tainted, np_aliases, scalar_names
        ):
            findings.append(
                Finding(
                    "R2-numpy-return",
                    ctx.path,
                    expression.lineno,
                    expression.col_offset,
                    f"public return of {why} may leak a numpy scalar across "
                    f"the API/JSON boundary in {function.name}(); wrap it in "
                    "int()/float() or call .item()",
                )
            )


def _tainted_names(function: ast.FunctionDef, np_aliases: Set[str]) -> Set[str]:
    """Names in ``function`` that statically hold numpy arrays or scalars."""
    tainted: Set[str] = set()
    arguments = function.args
    for arg in (
        list(arguments.posonlyargs) + list(arguments.args) + list(arguments.kwonlyargs)
    ):
        if _annotation_is_ndarray(arg.annotation):
            tainted.add(arg.arg)
    # flow-insensitive fixpoint over simple assignments
    for _ in range(2):
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                value_tainted = _is_numpy_expr(node.value, tainted, np_aliases)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if value_tainted:
                            tainted.add(target.id)
                        else:
                            tainted.discard(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _annotation_is_ndarray(node.annotation) or (
                    node.value is not None
                    and _is_numpy_expr(node.value, tainted, np_aliases)
                ):
                    tainted.add(node.target.id)
    return tainted


def _scalar_tainted_names(
    function: ast.FunctionDef, tainted: Set[str], np_aliases: Set[str]
) -> Set[str]:
    """Names bound to a numpy-scalar-shaped expression (``total = row.sum()``).

    Flow-insensitive like the array taint: a later re-binding to a safe
    expression (``total = int(total)``) clears the name.
    """
    scalar_names: Set[str] = set()
    for _ in range(2):
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign):
                continue
            shape = _scalar_shape(node.value, tainted, np_aliases, scalar_names)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if shape is not None:
                        scalar_names.add(target.id)
                    else:
                        scalar_names.discard(target.id)
    return scalar_names


def _is_numpy_expr(node: ast.expr, tainted: Set[str], np_aliases: Set[str]) -> bool:
    """Whether ``node`` evaluates to a numpy array or scalar."""
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        function = node.func
        if isinstance(function, ast.Attribute):
            if (
                isinstance(function.value, ast.Name)
                and function.value.id in np_aliases
            ):
                return True  # any np.* call produces numpy data
            if function.attr in _TAINT_PRESERVING_METHODS | NDARRAY_SCALAR_METHODS:
                return _is_numpy_expr(function.value, tainted, np_aliases)
        return False
    if isinstance(node, ast.Subscript):
        return _is_numpy_expr(node.value, tainted, np_aliases)
    if isinstance(node, ast.BinOp):
        return _is_numpy_expr(node.left, tainted, np_aliases) or _is_numpy_expr(
            node.right, tainted, np_aliases
        )
    if isinstance(node, ast.UnaryOp):
        return _is_numpy_expr(node.operand, tainted, np_aliases)
    return False


def _has_axis_kwarg(node: ast.Call) -> bool:
    return any(keyword.arg == "axis" for keyword in node.keywords)


def _scalar_leaks(
    node: ast.expr,
    tainted: Set[str],
    np_aliases: Set[str],
    scalar_names: Set[str],
):
    """Yield ``(expression, description)`` for numpy-scalar-shaped
    sub-expressions of a return value."""
    # containers: check the element/value positions
    if isinstance(node, ast.Dict):
        for value in node.values:
            if value is not None:
                yield from _scalar_leaks(value, tainted, np_aliases, scalar_names)
        return
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _scalar_leaks(element, tainted, np_aliases, scalar_names)
        return
    if isinstance(node, ast.DictComp):
        yield from _scalar_leaks(node.value, tainted, np_aliases, scalar_names)
        return
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        yield from _scalar_leaks(node.elt, tainted, np_aliases, scalar_names)
        return
    if isinstance(node, ast.IfExp):
        yield from _scalar_leaks(node.body, tainted, np_aliases, scalar_names)
        yield from _scalar_leaks(node.orelse, tainted, np_aliases, scalar_names)
        return
    description = _scalar_shape(node, tainted, np_aliases, scalar_names)
    if description is not None:
        yield node, description


def _scalar_shape(
    node: ast.expr,
    tainted: Set[str],
    np_aliases: Set[str],
    scalar_names: Set[str] = frozenset(),
) -> Optional[str]:
    """Describe ``node`` if it is numpy-scalar shaped, else ``None``."""
    if isinstance(node, ast.Call):
        function = node.func
        # int(...) / float(...) / x.item() are the sanctioned conversions
        if isinstance(function, ast.Name) and function.id in SAFE_CONVERTERS:
            return None
        if isinstance(function, ast.Attribute) and function.attr in SAFE_METHODS:
            return None
        if (
            isinstance(function, ast.Attribute)
            and isinstance(function.value, ast.Name)
            and function.value.id in np_aliases
        ):
            if function.attr in NP_SCALAR_FUNCS and not _has_axis_kwarg(node):
                return f"np.{function.attr}(...)"
            return None
        if (
            isinstance(function, ast.Attribute)
            and function.attr in NDARRAY_SCALAR_METHODS
            and not _has_axis_kwarg(node)
            and _is_numpy_expr(function.value, tainted, np_aliases)
        ):
            return f"<array>.{function.attr}()"
        return None
    if isinstance(node, ast.Subscript):
        if isinstance(node.slice, ast.Slice):
            return None  # a slice of an array is an array, not a scalar
        if _is_numpy_expr(node.value, tainted, np_aliases):
            return "an element read from a numpy array"
        return None
    if isinstance(node, ast.Name):
        if node.id in scalar_names:
            return f"name {node.id!r} (bound to a numpy scalar)"
        # a merely array-tainted name could be an array, which is a
        # legitimate public contract — stay quiet
        return None
    if isinstance(node, ast.BinOp):
        left = _scalar_shape(node.left, tainted, np_aliases, scalar_names)
        if left is not None:
            return left
        return _scalar_shape(node.right, tainted, np_aliases, scalar_names)
    return None
