"""reprolint: repo-specific static analysis for the TPP reproduction.

Seven rule families encode the invariants every PR so far proved
dynamically with differential tests, so future changes fail fast at lint
time instead of breaking bit-identity at runtime:

* **R1 determinism** — no hash-ordered set iteration, no global RNG.
* **R2 numpy-boundary** — no numpy scalars escaping public returns.
* **R3 lock-discipline** — ``guarded-by(LOCK)`` attributes written only
  under ``with self.LOCK:``.
* **R4 pickle-safety** — nothing unpicklable submitted to a process pool.
* **R5 exception-taxonomy** — typed ``repro.exceptions``, not bare
  ``ValueError``.
* **R6 bench-schema** — committed BENCH reports / emitting scripts carry
  every key the CI regression gate reads.
* **R7 native-boundary** — ``ctypes`` only inside ``repro._native``,
  every bound symbol declared (``argtypes`` + ``restype``), native calls
  behind the kernel-dispatch guard.

Run ``python -m tools.reprolint src/repro``; suppress a finding with
``# reprolint: disable=RULE(reason)`` — the reason is mandatory.
"""

from tools.reprolint.driver import lint_paths, lint_source, main
from tools.reprolint.findings import Finding
from tools.reprolint.rules import ALL_RULES, RULES_BY_FAMILY

__all__ = [
    "ALL_RULES",
    "RULES_BY_FAMILY",
    "Finding",
    "lint_paths",
    "lint_source",
    "main",
]
