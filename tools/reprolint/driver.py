"""reprolint driver: file discovery, rule execution, suppression, output.

Usage::

    python -m tools.reprolint src/repro                # human output
    python -m tools.reprolint src/repro --format json  # machine output
    python -m tools.reprolint --list-rules

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from tools.reprolint.context import ModuleContext
from tools.reprolint.directives import parse_directives
from tools.reprolint.findings import Finding, LintStats
from tools.reprolint.rules import ALL_RULES, ProjectRule, Rule


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand the given files/directories into a sorted list of .py files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def find_project_root(paths: Sequence[str]) -> Optional[Path]:
    """Walk up from the first path to the directory holding pyproject.toml."""
    if not paths:
        return None
    start = Path(paths[0]).resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


def _selected_rules(
    select: Optional[Sequence[str]], disable: Optional[Sequence[str]]
) -> List[Rule]:
    rules = list(ALL_RULES)
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.family in wanted]
    if disable:
        unwanted = set(disable)
        rules = [rule for rule in rules if rule.family not in unwanted]
    return rules


def lint_source(
    source: str,
    path: str = "<snippet>",
    rules: Optional[Sequence[Rule]] = None,
    relpath: Optional[str] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one in-memory module; returns ``(findings, suppressed)``.

    Directive errors (``R0-suppression``) are always findings and are
    never themselves suppressible.  This is the entry point the fixture
    tests drive.
    """
    directives = parse_directives(source, path)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return (
            [
                Finding(
                    "R0-parse",
                    path,
                    getattr(error, "lineno", 1) or 1,
                    (getattr(error, "offset", 1) or 1) - 1,
                    f"syntax error: {error.msg}",
                )
            ],
            [],
        )
    ctx = ModuleContext(
        path=path,
        source=source,
        tree=tree,
        directives=directives,
        relpath=relpath if relpath is not None else path,
    )
    raw: List[Finding] = []
    for rule in rules if rules is not None else ALL_RULES:
        raw.extend(rule.check_module(ctx))

    findings: List[Finding] = list(directives.errors)
    suppressed: List[Finding] = []
    for finding in raw:
        if directives.suppression_for(finding) is not None:
            suppressed.append(finding)
        else:
            findings.append(finding)
    return findings, suppressed


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    project_root: Optional[Path] = None,
) -> Tuple[List[Finding], LintStats]:
    """Lint files/directories plus the project-level rules once."""
    active = list(rules) if rules is not None else list(ALL_RULES)
    stats = LintStats()
    findings: List[Finding] = []

    root = project_root if project_root is not None else find_project_root(paths)
    for file_path in discover_files(paths):
        stats.files += 1
        relpath = str(file_path)
        if root is not None:
            try:
                relpath = str(file_path.resolve().relative_to(root))
            except ValueError:
                pass
        module_findings, suppressed = lint_source(
            file_path.read_text(encoding="utf-8"),
            path=str(file_path),
            rules=active,
            relpath=relpath,
        )
        findings.extend(module_findings)
        stats.suppressed += len(suppressed)

    if root is not None:
        for rule in active:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(root))

    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    for finding in findings:
        stats.count(finding)
    return findings, stats


def _render_human(findings: Iterable[Finding], stats: LintStats) -> str:
    lines = [finding.render() for finding in findings]
    summary = (
        f"reprolint: {stats.findings} finding(s) in {stats.files} file(s)"
        f" ({stats.suppressed} suppressed)"
    )
    if stats.by_rule:
        summary += "  [" + ", ".join(
            f"{rule}: {count}" for rule, count in sorted(stats.by_rule.items())
        ) + "]"
    return "\n".join(lines + [summary])


def _render_json(findings: Iterable[Finding], stats: LintStats) -> str:
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "files": stats.files,
            "suppressed": stats.suppressed,
            "by_rule": dict(sorted(stats.by_rule.items())),
        },
        indent=2,
        sort_keys=False,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "Repo-specific static analysis: determinism (R1), numpy "
            "boundaries (R2), lock discipline (R3), pickle safety (R4), "
            "exception taxonomy (R5), benchmark-gate schema (R6)."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="FAMILY",
        help="only run these rule families (repeatable, e.g. --select R1)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        metavar="FAMILY",
        help="skip these rule families (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.family:>3}  {rule.name:<20} {rule.description}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    rules = _selected_rules(args.select, args.disable)
    findings, stats = lint_paths(args.paths, rules=rules)
    if args.format == "json":
        print(_render_json(findings, stats))
    else:
        print(_render_human(findings, stats))
    return 1 if findings else 0
