"""Repository tooling: docs drift checks (`check_readme`) and `reprolint`."""
