"""Fail CI when README code drifts from the library it documents.

Two checks, no mocking:

1. **Python blocks run.**  Every fenced ```python block in README.md is
   executed in its own subprocess (with ``src`` on ``PYTHONPATH``); a
   non-zero exit fails the check.  The quickstart and snapshot snippets are
   therefore guaranteed to stay runnable exactly as readers will paste
   them.
2. **CLI claims exist.**  Every ``repro-tpp <subcommand> --flag ...`` line
   inside fenced ```bash blocks is parsed and checked against the real
   argument parser: the subcommand must exist and every ``--flag`` must be
   a registered option of that subcommand.  Renaming a CLI flag without
   updating README fails the build.

Run with::

    python tools/check_readme.py            # from the repository root
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"

_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def extract_blocks(markdown: str):
    """Yield ``(language, code)`` for every fenced code block."""
    for match in _FENCE.finditer(markdown):
        yield match.group(1).lower(), match.group(2)


def run_python_blocks(blocks) -> list:
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for number, code in enumerate(blocks, start=1):
        completed = subprocess.run(
            [sys.executable, "-"],
            input=code,
            text=True,
            capture_output=True,
            cwd=REPO_ROOT,
            env=env,
        )
        if completed.returncode != 0:
            failures.append(
                f"python block #{number} exited {completed.returncode}:\n"
                f"{completed.stderr.strip()}"
            )
        else:
            print(f"python block #{number}: OK")
    return failures


def check_cli_lines(bash_blocks) -> list:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action.choices
        for action in parser._actions
        if hasattr(action, "choices") and isinstance(action.choices, dict)
    )

    failures = []
    checked = 0
    for code in bash_blocks:
        # join shell line continuations, then inspect repro-tpp invocations
        joined = code.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if not line.startswith("repro-tpp"):
                continue
            checked += 1
            tokens = line.split()
            if len(tokens) < 2 or tokens[1] not in subparsers:
                failures.append(
                    f"README names unknown subcommand in: {line!r} "
                    f"(known: {', '.join(sorted(subparsers))})"
                )
                continue
            options = set(subparsers[tokens[1]]._option_string_actions)
            for token in tokens[2:]:
                if token.startswith("--") and token not in options:
                    failures.append(
                        f"README uses flag {token!r} unknown to "
                        f"'repro-tpp {tokens[1]}' in: {line!r}"
                    )
    print(f"checked {checked} repro-tpp invocations against the live parser")
    return failures


def main() -> int:
    markdown = README.read_text(encoding="utf-8")
    blocks = list(extract_blocks(markdown))
    python_blocks = [code for language, code in blocks if language == "python"]
    bash_blocks = [code for language, code in blocks if language in ("bash", "sh")]
    if not python_blocks:
        print("ERROR: README.md has no python blocks to check", file=sys.stderr)
        return 1

    failures = run_python_blocks(python_blocks)
    failures += check_cli_lines(bash_blocks)
    if failures:
        for failure in failures:
            print(f"README DRIFT: {failure}", file=sys.stderr)
        return 1
    print("README code blocks match the library")
    return 0


if __name__ == "__main__":
    sys.exit(main())
