"""Fail CI when README code drifts from the library it documents.

Two checks, no mocking:

1. **Python blocks run.**  Every fenced ```python block in README.md is
   executed in its own subprocess (with ``src`` on ``PYTHONPATH``); a
   non-zero exit fails the check.  The quickstart and snapshot snippets are
   therefore guaranteed to stay runnable exactly as readers will paste
   them.
2. **CLI claims exist.**  Every ``repro-tpp <subcommand> --flag ...`` line
   inside fenced ```bash blocks is parsed and checked against the real
   argument parser: the subcommand must exist and every ``--flag`` must be
   a registered option of that subcommand.  Renaming a CLI flag without
   updating README fails the build.
3. **Lint commands run.**  Every ``python -m tools.reprolint ...`` line in
   a bash block is executed from the repository root and must exit 0, so
   the documented linter invocation is guaranteed runnable and the library
   is guaranteed lint-clean as documented.
4. **The mypy file list matches pyproject.**  The ``mypy <paths>`` command
   in README must name existing paths, and the set of modules it covers
   must equal the strict-override module list in ``[tool.mypy]`` — the
   README and the CI contract cannot silently diverge.

Run with::

    python tools/check_readme.py            # from the repository root
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"

_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def extract_blocks(markdown: str):
    """Yield ``(language, code)`` for every fenced code block."""
    for match in _FENCE.finditer(markdown):
        yield match.group(1).lower(), match.group(2)


def run_python_blocks(blocks) -> list:
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for number, code in enumerate(blocks, start=1):
        completed = subprocess.run(
            [sys.executable, "-"],
            input=code,
            text=True,
            capture_output=True,
            cwd=REPO_ROOT,
            env=env,
        )
        if completed.returncode != 0:
            failures.append(
                f"python block #{number} exited {completed.returncode}:\n"
                f"{completed.stderr.strip()}"
            )
        else:
            print(f"python block #{number}: OK")
    return failures


def check_cli_lines(bash_blocks) -> list:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action.choices
        for action in parser._actions
        if hasattr(action, "choices") and isinstance(action.choices, dict)
    )

    failures = []
    checked = 0
    for code in bash_blocks:
        # join shell line continuations, then inspect repro-tpp invocations
        joined = code.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if not line.startswith("repro-tpp"):
                continue
            checked += 1
            tokens = line.split()
            if len(tokens) < 2 or tokens[1] not in subparsers:
                failures.append(
                    f"README names unknown subcommand in: {line!r} "
                    f"(known: {', '.join(sorted(subparsers))})"
                )
                continue
            options = set(subparsers[tokens[1]]._option_string_actions)
            for token in tokens[2:]:
                if token.startswith("--") and token not in options:
                    failures.append(
                        f"README uses flag {token!r} unknown to "
                        f"'repro-tpp {tokens[1]}' in: {line!r}"
                    )
    print(f"checked {checked} repro-tpp invocations against the live parser")
    return failures


def check_lint_lines(bash_blocks) -> list:
    """Run every documented ``python -m tools.reprolint`` command."""
    failures = []
    checked = 0
    for code in bash_blocks:
        joined = code.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if not line.startswith("python -m tools.reprolint"):
                continue
            checked += 1
            argv = [sys.executable] + line.split()[1:]
            completed = subprocess.run(
                argv, capture_output=True, text=True, cwd=REPO_ROOT
            )
            if completed.returncode != 0:
                failures.append(
                    f"documented lint command exited {completed.returncode}: "
                    f"{line!r}\n{completed.stdout.strip()}"
                )
            else:
                print(f"lint command OK: {line}")
    if checked == 0:
        failures.append("README documents no 'python -m tools.reprolint' command")
    return failures


def _strict_mypy_modules() -> set:
    """Module patterns held to disallow-untyped-defs in pyproject.toml."""
    import tomllib

    with open(REPO_ROOT / "pyproject.toml", "rb") as handle:
        config = tomllib.load(handle)
    modules = set()
    for override in config.get("tool", {}).get("mypy", {}).get("overrides", []):
        if override.get("disallow_untyped_defs"):
            listed = override.get("module", [])
            modules.update([listed] if isinstance(listed, str) else listed)
    return modules


def _path_to_module_pattern(token: str) -> str:
    """Map a README mypy path to the pyproject override pattern covering it."""
    path = Path(token)
    parts = list(path.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if (REPO_ROOT / token).is_dir():
        return ".".join(parts) + ".*"
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def check_mypy_file_list(bash_blocks) -> list:
    failures = []
    mypy_lines = []
    for code in bash_blocks:
        joined = code.replace("\\\n", " ")
        mypy_lines.extend(
            line.strip()
            for line in joined.splitlines()
            if line.strip().startswith("mypy ")
        )
    if not mypy_lines:
        return ["README documents no 'mypy <paths>' command"]

    strict = _strict_mypy_modules()
    documented = set()
    for line in mypy_lines:
        for token in line.split()[1:]:
            if token.startswith("-"):
                continue
            if not (REPO_ROOT / token).exists():
                failures.append(f"README mypy command names missing path {token!r}")
                continue
            documented.add(_path_to_module_pattern(token))
    if not failures and documented != strict:
        only_readme = sorted(documented - strict)
        only_pyproject = sorted(strict - documented)
        if only_readme:
            failures.append(
                "README mypy command covers modules not in the pyproject "
                f"strict list: {', '.join(only_readme)}"
            )
        if only_pyproject:
            failures.append(
                "pyproject strict-override modules missing from the README "
                f"mypy command: {', '.join(only_pyproject)}"
            )
    if not failures:
        print(
            f"mypy file list matches the {len(strict)} strict-override "
            "modules in pyproject.toml"
        )
    return failures


def main() -> int:
    markdown = README.read_text(encoding="utf-8")
    blocks = list(extract_blocks(markdown))
    python_blocks = [code for language, code in blocks if language == "python"]
    bash_blocks = [code for language, code in blocks if language in ("bash", "sh")]
    if not python_blocks:
        print("ERROR: README.md has no python blocks to check", file=sys.stderr)
        return 1

    failures = run_python_blocks(python_blocks)
    failures += check_cli_lines(bash_blocks)
    failures += check_lint_lines(bash_blocks)
    failures += check_mypy_file_list(bash_blocks)
    if failures:
        for failure in failures:
            print(f"README DRIFT: {failure}", file=sys.stderr)
        return 1
    print("README code blocks match the library")
    return 0


if __name__ == "__main__":
    sys.exit(main())
