"""Tests for the target-subgraph index and coverage state."""

import pytest

from repro.exceptions import MotifError
from repro.graphs.graph import Graph
from repro.motifs.enumeration import TargetSubgraphIndex
from repro.motifs.similarity import total_similarity


@pytest.fixture
def phase1_graph():
    # targets (0,1) and (2,3) removed already; (0,1) has triangles via 4 and 5
    # where edge (0,4) also belongs to a triangle of (2,3)?  Build a shared edge:
    # triangle of (2,3) via node 0 requires edges (2,0) and (3,0).
    return Graph(
        edges=[(0, 4), (1, 4), (0, 5), (1, 5), (0, 2), (0, 3)]
    )


TARGETS = [(0, 1), (2, 3)]


class TestTargetSubgraphIndex:
    def test_rejects_targets_still_in_graph(self):
        graph = Graph(edges=[(0, 1), (0, 2), (1, 2)])
        with pytest.raises(MotifError):
            TargetSubgraphIndex(graph, [(0, 1)], "triangle")

    def test_counts_match_recount(self, phase1_graph):
        index = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle")
        assert index.initial_similarity((0, 1)) == 2
        assert index.initial_similarity((2, 3)) == 1
        assert index.initial_total_similarity() == total_similarity(
            phase1_graph, TARGETS, "triangle"
        )

    def test_instances_partitioned_by_target(self, phase1_graph):
        index = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle")
        ids_01 = set(index.instances_of((0, 1)))
        ids_23 = set(index.instances_of((2, 3)))
        assert ids_01.isdisjoint(ids_23)
        assert len(ids_01) + len(ids_23) == index.number_of_instances()

    def test_edge_to_instances(self, phase1_graph):
        index = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle")
        # edge (0,4) participates only in the (0,1) triangle via node 4
        containing = index.instances_containing((4, 0))
        assert len(containing) == 1
        assert index.target_of_instance(next(iter(containing))) == (0, 1)

    def test_candidate_edges_only_subgraph_edges(self, phase1_graph):
        phase1_graph.add_edge(8, 9)  # irrelevant edge
        index = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle")
        candidates = index.candidate_edges()
        assert (8, 9) not in candidates
        assert (0, 4) in candidates

    def test_candidate_edges_of_target(self, phase1_graph):
        index = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle")
        edges = index.candidate_edges_of((2, 3))
        assert edges == {(0, 2), (0, 3)}

    def test_target_order_preserved(self, phase1_graph):
        index = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle")
        assert index.targets == ((0, 1), (2, 3))


class TestCoverageState:
    def test_delete_edge_updates_similarity(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        assert state.total_similarity() == 3
        broken = state.delete_edge((0, 4))
        assert broken == {(0, 1): 1}
        assert state.total_similarity() == 2
        assert state.similarity_of((0, 1)) == 1

    def test_gain_matches_recount(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        for edge in list(phase1_graph.edges()):
            reduced = phase1_graph.without_edges([edge])
            expected = 3 - total_similarity(reduced, TARGETS, "triangle")
            assert state.gain(edge) == expected

    def test_gain_by_target(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        gains = state.gain_by_target((0, 2))
        assert gains == {(2, 3): 1}
        assert state.gain_for_target((0, 2), (2, 3)) == 1
        assert state.gain_for_target((0, 2), (0, 1)) == 0

    def test_deleting_unrelated_edge_breaks_nothing(self, phase1_graph):
        phase1_graph.add_edge(8, 9)
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        assert state.delete_edge((8, 9)) == {}
        assert state.total_similarity() == 3

    def test_double_delete_is_idempotent(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        state.delete_edge((0, 4))
        assert state.delete_edge((0, 4)) == {}
        assert state.total_similarity() == 2

    def test_candidate_edges_shrink_after_deletions(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        before = state.candidate_edges()
        state.delete_edge((1, 4))
        after = state.candidate_edges()
        assert (1, 4) not in after
        # edge (0,4) no longer breaks anything: its only instance died with (1,4)
        assert (0, 4) not in after
        assert after < before

    def test_full_protection_flag(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        for edge in [(0, 4), (0, 5), (0, 2)]:
            state.delete_edge(edge)
        assert state.is_fully_protected()
        assert state.total_similarity() == 0

    def test_copy_is_independent(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        clone = state.copy()
        clone.delete_edge((0, 4))
        assert state.total_similarity() == 3
        assert clone.total_similarity() == 2

    def test_deleted_edges_recorded_in_order(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        state.delete_edges([(0, 4), (0, 5)])
        assert state.deleted_edges == ((0, 4), (0, 5))


class TestArrayKernel:
    """Behaviour specific to the incremental array kernel."""

    def test_candidate_edge_list_deterministic_order(self, phase1_graph):
        index = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle")
        ordered = index.candidate_edge_list()
        assert set(ordered) == index.candidate_edges()
        assert ordered == sorted(ordered, key=lambda e: (str(e[0]), str(e[1])))
        state = index.new_state()
        assert state.candidate_edge_list() == ordered
        state.delete_edge((1, 4))
        live = state.candidate_edge_list()
        assert set(live) == state.candidate_edges()
        assert live == sorted(live, key=lambda e: (str(e[0]), str(e[1])))

    def test_top_gain_edge_tracks_deletions(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        edge, gain = state.top_gain_edge()
        assert gain == 1
        # smallest edge_sort_key among the all-tied candidates
        assert edge == min(state.candidate_edges(), key=lambda e: (str(e[0]), str(e[1])))
        for protector in [(0, 4), (0, 5), (0, 2)]:
            state.delete_edge(protector)
        assert state.top_gain_edge() is None

    def test_top_gain_edges_shortlist(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        shortlist = state.top_gain_edges(4)
        assert len(shortlist) == 4
        assert all(gain == 1 for _, gain in shortlist)
        assert state.top_gain_edges(0) == []
        # the shortlist must not consume the heap: top stays answerable
        assert state.top_gain_edge() == shortlist[0]

    def test_iter_positive_gains_matches_gain(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        state.delete_edge((1, 4))
        for edge, gain in state.iter_positive_gains():
            assert gain > 0
            assert gain == state.gain(edge)

    def test_gains_for_target_one_pass(self, phase1_graph):
        state = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_state()
        assert state.gains_for_target((2, 3)) == {(0, 2): 1, (0, 3): 1}
        state.delete_edge((0, 2))
        assert state.gains_for_target((2, 3)) == {}


class TestSetStateParity:
    """The hash-set reference state mirrors the kernel on the fixture."""

    def test_new_set_state_matches_kernel(self, phase1_graph):
        index = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle")
        kernel, reference = index.new_state(), index.new_set_state()
        for edge in sorted(phase1_graph.edges()):
            assert kernel.gain(edge) == reference.gain(edge)
        assert kernel.candidate_edges() == reference.candidate_edges()
        assert kernel.delete_edge((0, 4)) == reference.delete_edge((0, 4))
        assert kernel.total_similarity() == reference.total_similarity()
        assert kernel.similarity_by_target() == reference.similarity_by_target()

    def test_set_state_copy_independent(self, phase1_graph):
        reference = TargetSubgraphIndex(phase1_graph, TARGETS, "triangle").new_set_state()
        clone = reference.copy()
        clone.delete_edge((0, 4))
        assert reference.total_similarity() == 3
        assert clone.total_similarity() == 2
