"""Differential tests: CSR-row enumeration vs tuple-based enumeration.

Every built-in motif implements two enumeration paths: the tuple-based
``enumerate_instances`` (public API over :class:`Graph` adjacency sets) and
the id-based ``enumerate_instance_edge_ids`` the coverage kernel runs over
the :class:`IndexedGraph` CSR rows.  These tests assert the two paths yield
the same multiset of instances on random graphs, and that the base-class
fallback keeps custom (tuple-only) motifs working through the index.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.graphs.indexed import IndexedGraph
from repro.motifs.base import MotifPattern, get_motif
from repro.motifs.enumeration import TargetSubgraphIndex
from repro.motifs.extra import CliqueMotif, PathMotif

MOTIFS = ("triangle", "rectangle", "rectri", "path4", "clique4")


def random_phase1_graph(seed):
    """Return ``(graph, target)`` with the target already removed."""
    rng = random.Random(seed)
    n = rng.randint(5, 14)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < rng.uniform(0.2, 0.5):
                graph.add_edge(u, v)
    edges = sorted(graph.edges())
    if not edges:
        return None, None
    target = edges[rng.randrange(len(edges))]
    graph.remove_edge(*target)
    return graph, target


def instance_multiset(instances):
    return sorted(sorted(instance) for instance in instances)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=len(MOTIFS) - 1),
)
@settings(max_examples=60, deadline=None)
def test_csr_enumeration_matches_tuple_enumeration(seed, motif_index):
    graph, target = random_phase1_graph(seed)
    if graph is None:
        return
    motif = get_motif(MOTIFS[motif_index])
    indexed = IndexedGraph(graph)
    via_tuples = instance_multiset(motif.enumerate_instances(graph, target))
    via_ids = instance_multiset(
        [indexed.edge_at(edge_id) for edge_id in instance]
        for instance in motif.enumerate_instance_edge_ids(indexed, graph, target)
    )
    assert via_tuples == via_ids
    # the id form of one instance must not repeat an edge: the kernel's
    # kill walk decrements one counter per (instance, edge) membership
    for instance in motif.enumerate_instance_edge_ids(indexed, graph, target):
        assert len(set(instance)) == len(instance)


@pytest.mark.parametrize(
    "motif",
    [PathMotif(2), PathMotif(3), PathMotif(5), CliqueMotif(3), CliqueMotif(5)],
    ids=["path2", "path3", "path5", "clique3", "clique5"],
)
def test_parametrised_extra_motifs_agree(motif):
    for seed in range(25):
        graph, target = random_phase1_graph(seed)
        if graph is None:
            continue
        indexed = IndexedGraph(graph)
        via_tuples = instance_multiset(motif.enumerate_instances(graph, target))
        via_ids = instance_multiset(
            [indexed.edge_at(edge_id) for edge_id in instance]
            for instance in motif.enumerate_instance_edge_ids(indexed, graph, target)
        )
        assert via_tuples == via_ids


def test_missing_endpoint_yields_nothing():
    graph = Graph(edges=[(0, 1), (1, 2)])
    indexed = IndexedGraph(graph)
    for name in MOTIFS:
        motif = get_motif(name)
        assert list(motif.enumerate_instance_edge_ids(indexed, graph, (0, 99))) == []


class TupleOnlyTriangle(MotifPattern):
    """A custom motif with no id-space override (exercises the fallback)."""

    name = "tuple-only-triangle"

    def enumerate_instances(self, graph, target):
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        for w in graph.common_neighbors(u, v):
            yield frozenset(
                (self._canonical(u, w), self._canonical(w, v))
            )


def test_tuple_only_motif_builds_identical_index():
    graph = Graph(edges=[(0, 4), (1, 4), (0, 5), (1, 5), (0, 2), (0, 3)])
    targets = [(0, 1), (2, 3)]
    fallback = TargetSubgraphIndex(graph, targets, TupleOnlyTriangle())
    builtin = TargetSubgraphIndex(graph, targets, "triangle")
    assert fallback.number_of_instances() == builtin.number_of_instances()
    assert fallback.candidate_edges() == builtin.candidate_edges()
    for target in targets:
        assert fallback.initial_similarity(target) == builtin.initial_similarity(target)


def test_tuple_only_motif_through_parallel_build_matches_serial():
    """The parallel dispatcher must not silently drop the non-built-in path:
    a custom tuple-only motif enumerated in worker processes produces the
    same index (same flat arrays) as the serial fallback."""
    graph = Graph(edges=[(0, 4), (1, 4), (0, 5), (1, 5), (0, 2), (0, 3), (2, 4), (3, 4)])
    targets = [(0, 1), (2, 3)]
    serial = TargetSubgraphIndex(graph, targets, TupleOnlyTriangle())
    for workers in (2, 3):
        parallel = TargetSubgraphIndex(
            graph, targets, TupleOnlyTriangle(), build_workers=workers
        )
        assert parallel.number_of_instances() == serial.number_of_instances()
        assert (
            parallel._inst_edge_ids.tobytes() == serial._inst_edge_ids.tobytes()
        )
        assert parallel._inst_indptr.tobytes() == serial._inst_indptr.tobytes()
        assert parallel._inst_slot.tobytes() == serial._inst_slot.tobytes()
        assert parallel.candidate_edge_list() == serial.candidate_edge_list()
        for target in targets:
            assert parallel.initial_similarity(target) == serial.initial_similarity(
                target
            )
