"""Tests for the Triangle, Rectangle and RecTri motif patterns (Fig. 1)."""

import pytest

from repro.exceptions import UnknownMotifError
from repro.graphs.graph import Graph, canonical_edge
from repro.motifs.base import available_motifs, coerce_motif, get_motif
from repro.motifs.rectangle import RectangleMotif
from repro.motifs.rectri import RecTriMotif
from repro.motifs.triangle import TriangleMotif


class TestRegistry:
    def test_available_motifs(self):
        assert {"triangle", "rectangle", "rectri"} <= set(available_motifs())

    def test_get_motif_case_insensitive(self):
        assert isinstance(get_motif("Triangle"), TriangleMotif)

    def test_unknown_motif_raises(self):
        with pytest.raises(UnknownMotifError):
            get_motif("pentagon")

    def test_coerce_passes_instances_through(self):
        motif = RectangleMotif()
        assert coerce_motif(motif) is motif
        assert isinstance(coerce_motif("rectri"), RecTriMotif)


class TestTriangleMotif:
    def test_single_common_neighbor(self):
        # target (0, 1) with common neighbor 2
        graph = Graph(edges=[(0, 2), (1, 2)])
        motif = TriangleMotif()
        instances = motif.instances(graph, (0, 1))
        assert instances == [frozenset({(0, 2), (1, 2)})]
        assert motif.count(graph, (0, 1)) == 1

    def test_count_equals_common_neighbors(self):
        graph = Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)])
        motif = TriangleMotif()
        assert motif.count(graph, (0, 1)) == 2

    def test_no_instances_without_common_neighbor(self):
        graph = Graph(edges=[(0, 2), (1, 3)])
        assert TriangleMotif().count(graph, (0, 1)) == 0

    def test_missing_endpoint_gives_zero(self):
        graph = Graph(edges=[(0, 2)])
        assert TriangleMotif().count(graph, (0, 99)) == 0

    def test_protector_edges_union(self):
        graph = Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3)])
        edges = TriangleMotif().protector_edges(graph, (0, 1))
        assert edges == frozenset({(0, 2), (1, 2), (0, 3), (1, 3)})


class TestRectangleMotif:
    def test_single_three_path(self):
        # target (0, 3): path 0-1-2-3
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        motif = RectangleMotif()
        instances = motif.instances(graph, (0, 3))
        assert instances == [frozenset({(0, 1), (1, 2), (2, 3)})]

    def test_multiple_paths_counted(self):
        # two disjoint 3-paths between 0 and 5
        graph = Graph(edges=[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)])
        assert RectangleMotif().count(graph, (0, 5)) == 2

    def test_path_through_endpoint_excluded(self):
        # 0-1-2 and target (0, 2): the only 3-length walks reuse an endpoint
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert RectangleMotif().count(graph, (0, 2)) == 0

    def test_triangle_plus_edge_is_not_a_rectangle(self):
        # common neighbor only (2-path) should not count
        graph = Graph(edges=[(0, 2), (1, 2)])
        assert RectangleMotif().count(graph, (0, 1)) == 0

    def test_instances_are_symmetric_in_target_orientation(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        motif = RectangleMotif()
        forward = set(motif.instances(graph, (0, 3)))
        backward = set(motif.instances(graph, (3, 0)))
        assert forward == backward


class TestRecTriMotif:
    def build_example(self):
        # target (u, v); w common neighbor; b adjacent to w and v
        graph = Graph(edges=[("u", "w"), ("w", "v"), ("w", "b"), ("b", "v")])
        return graph

    def test_basic_instance(self):
        graph = self.build_example()
        motif = RecTriMotif()
        instances = motif.instances(graph, ("u", "v"))
        expected = frozenset(
            {
                canonical_edge("u", "w"),
                canonical_edge("w", "v"),
                canonical_edge("w", "b"),
                canonical_edge("b", "v"),
            }
        )
        assert instances == [expected]

    def test_second_orientation_counted(self):
        # 3-path running v - w - b - u (b adjacent to w and u, not v)
        graph = Graph(edges=[("u", "w"), ("w", "v"), ("w", "b"), ("b", "u")])
        assert RecTriMotif().count(graph, ("u", "v")) == 1

    def test_both_orientations_counted(self):
        # b adjacent to u, v and w: b also becomes a common neighbor, so each
        # of the two common neighbors (w and b) contributes both orientations
        graph = self.build_example()
        graph.add_edge("b", "u")
        assert RecTriMotif().count(graph, ("u", "v")) == 4

    def test_requires_the_two_path(self):
        # no common neighbor w: no RecTri instance even if a 3-path exists
        graph = Graph(edges=[("u", "a"), ("a", "b"), ("b", "v")])
        assert RecTriMotif().count(graph, ("u", "v")) == 0

    def test_count_at_least_triangle_degreewise(self):
        # every RecTri instance needs a triangle 2-path, so zero triangles
        # implies zero RecTri instances
        graph = Graph(edges=[(0, 2), (2, 3), (3, 1), (0, 4), (4, 1)])
        triangle_count = TriangleMotif().count(graph, (0, 1))
        rectri_count = RecTriMotif().count(graph, (0, 1))
        if triangle_count == 0:
            assert rectri_count == 0


class TestSubmodularityCases:
    """The four cases of Lemma 2 (Fig. 1), instantiated on the Triangle motif."""

    def build(self):
        # target (0, 1) with two triangles: via 2 and via 3; plus an edge (4, 5)
        # that participates in no target subgraph.
        return Graph(
            edges=[(0, 2), (1, 2), (0, 3), (1, 3), (4, 5), (0, 4), (1, 5)]
        )

    def marginal(self, graph, deleted, candidate):
        motif = TriangleMotif()
        before = motif.count(graph.without_edges(deleted), (0, 1))
        after = motif.count(graph.without_edges(list(deleted) + [candidate]), (0, 1))
        return before - after

    def test_case1_both_outside_subgraphs(self):
        graph = self.build()
        assert self.marginal(graph, [], (4, 5)) == 0
        assert self.marginal(graph, [(0, 4)], (4, 5)) == 0

    def test_case2_both_in_same_subgraph(self):
        graph = self.build()
        # deleting (0, 2) first removes the gain of (1, 2)
        assert self.marginal(graph, [], (1, 2)) == 1
        assert self.marginal(graph, [(0, 2)], (1, 2)) == 0

    def test_case3_candidate_in_subgraph_other_outside(self):
        graph = self.build()
        assert self.marginal(graph, [], (0, 3)) == 1
        assert self.marginal(graph, [(4, 5)], (0, 3)) == 1

    def test_case4_candidate_outside_other_in_subgraph(self):
        graph = self.build()
        assert self.marginal(graph, [], (4, 5)) == 0
        assert self.marginal(graph, [(0, 3)], (4, 5)) == 0
