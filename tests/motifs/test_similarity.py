"""Tests for the recount-based similarity and dissimilarity functions."""

import pytest

from repro.exceptions import ConstantError
from repro.graphs.graph import Graph
from repro.motifs.similarity import (
    default_constant,
    dissimilarity,
    similarity,
    similarity_by_target,
    total_similarity,
)


@pytest.fixture
def graph():
    # two targets (0,1) and (2,3); (0,1) has 2 triangles, (2,3) has 1
    return Graph(
        edges=[(0, 4), (1, 4), (0, 5), (1, 5), (2, 6), (3, 6)]
    )


TARGETS = [(0, 1), (2, 3)]


class TestSimilarity:
    def test_similarity_per_target(self, graph):
        assert similarity(graph, (0, 1), "triangle") == 2
        assert similarity(graph, (2, 3), "triangle") == 1

    def test_similarity_by_target(self, graph):
        values = similarity_by_target(graph, TARGETS, "triangle")
        assert values == {(0, 1): 2, (2, 3): 1}

    def test_total_similarity(self, graph):
        assert total_similarity(graph, TARGETS, "triangle") == 3

    def test_total_similarity_other_motifs(self, graph):
        assert total_similarity(graph, TARGETS, "rectangle") >= 0
        assert total_similarity(graph, TARGETS, "rectri") >= 0

    def test_default_constant_equals_initial_similarity(self, graph):
        assert default_constant(graph, TARGETS, "triangle") == 3


class TestDissimilarity:
    def test_initial_dissimilarity_is_zero_with_default_constant(self, graph):
        constant = default_constant(graph, TARGETS, "triangle")
        assert dissimilarity(graph, TARGETS, "triangle", constant) == 0

    def test_dissimilarity_grows_with_deletions(self, graph):
        constant = default_constant(graph, TARGETS, "triangle")
        reduced = graph.without_edges([(0, 4)])
        assert dissimilarity(reduced, TARGETS, "triangle", constant) == 1

    def test_constant_too_small_raises(self, graph):
        with pytest.raises(ConstantError):
            dissimilarity(graph, TARGETS, "triangle", constant=1)

    def test_larger_constant_shifts_value(self, graph):
        value = dissimilarity(graph, TARGETS, "triangle", constant=10)
        assert value == 10 - 3
