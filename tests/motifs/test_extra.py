"""Tests for the additional PathMotif and CliqueMotif patterns."""

import pytest

from repro.graphs.generators import complete_graph, path_graph
from repro.graphs.graph import Graph
from repro.motifs.base import get_motif
from repro.motifs.extra import CliqueMotif, PathMotif
from repro.motifs.rectangle import RectangleMotif
from repro.motifs.triangle import TriangleMotif
from repro.exceptions import MotifDefinitionError


class TestPathMotif:
    def test_length_two_matches_triangle(self):
        graph = Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)])
        assert PathMotif(length=2).count(graph, (0, 1)) == TriangleMotif().count(
            graph, (0, 1)
        )

    def test_length_three_matches_rectangle(self):
        graph = Graph(edges=[(0, 2), (2, 3), (3, 1), (0, 4), (4, 5), (5, 1)])
        assert PathMotif(length=3).count(graph, (0, 1)) == RectangleMotif().count(
            graph, (0, 1)
        )

    def test_length_four_on_path_graph(self):
        graph = path_graph(5)  # 0-1-2-3-4
        assert PathMotif(length=4).count(graph, (0, 4)) == 1
        assert PathMotif(length=3).count(graph, (0, 4)) == 0

    def test_paths_are_simple(self):
        # a single chord must not let the path revisit nodes
        graph = Graph(edges=[(0, 2), (2, 3), (3, 2)]) if False else Graph(
            edges=[(0, 2), (2, 3), (3, 4), (4, 1), (2, 4)]
        )
        instances = PathMotif(length=4).instances(graph, (0, 1))
        for instance in instances:
            nodes = {node for edge in instance for node in edge}
            # a simple path of length 4 touches exactly 5 distinct nodes
            assert len(nodes) == 5

    def test_invalid_length(self):
        with pytest.raises(MotifDefinitionError):
            PathMotif(length=1)

    def test_registered_path4(self):
        motif = get_motif("path4")
        assert isinstance(motif, PathMotif)
        assert motif.length == 4


class TestCliqueMotif:
    def test_size_three_matches_triangle(self):
        graph = Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3), (2, 3)])
        assert CliqueMotif(size=3).count(graph, (0, 1)) == TriangleMotif().count(
            graph, (0, 1)
        )

    def test_size_four_on_k5_minus_target(self):
        graph = complete_graph(5)
        graph.remove_edge(0, 1)
        # remaining common neighbors of 0 and 1: {2, 3, 4}, all pairwise
        # connected -> C(3, 2) = 3 four-cliques would be completed
        assert CliqueMotif(size=4).count(graph, (0, 1)) == 3

    def test_clique_requires_internal_edges(self):
        # common neighbors 2 and 3 NOT connected -> no 4-clique
        graph = Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3)])
        assert CliqueMotif(size=4).count(graph, (0, 1)) == 0

    def test_instance_edges_cover_whole_clique(self):
        graph = complete_graph(4)
        graph.remove_edge(0, 1)
        instances = CliqueMotif(size=4).instances(graph, (0, 1))
        assert len(instances) == 1
        assert len(instances[0]) == 5  # K4 has 6 edges, minus the target

    def test_invalid_size(self):
        with pytest.raises(MotifDefinitionError):
            CliqueMotif(size=2)

    def test_registered_clique4(self):
        motif = get_motif("clique4")
        assert isinstance(motif, CliqueMotif)
        assert motif.size == 4


class TestExtraMotifsWithGreedy:
    @pytest.mark.parametrize("motif_name", ["path4", "clique4"])
    def test_sgb_fully_protects_extra_motifs(self, motif_name):
        from repro.core.model import TPPProblem
        from repro.core.sgb import sgb_greedy
        from repro.datasets.synthetic import small_social_graph
        from repro.datasets.targets import sample_random_targets

        graph = small_social_graph(seed=6)
        targets = sample_random_targets(graph, 3, seed=0)
        problem = TPPProblem(graph, targets, motif=motif_name)
        result = sgb_greedy(problem, budget=problem.initial_similarity() + 1)
        assert result.fully_protected
