"""Differential tests: native C kernel vs numpy kernel vs set reference.

The native kernel must be *observably bit-identical* to the numpy kernel,
which in turn is the executable reference validated against
:class:`SetCoverageState`.  These tests drive all three through the same
greedy walks — the SGB validated-top walk, the CT batched pair sweep and
the WT single-target pair walk — across every built-in motif plus a
tuple-only custom motif, and exercise the loader's fallback, cache and
serialization behaviour.

Everything that needs the compiled kernel is skipped when it cannot be
loaded, so the forced-fallback CI leg (``REPRO_NATIVE=0``) still runs the
loader/fallback tests while the differential ones skip cleanly.
"""

from __future__ import annotations

import pickle
import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro._native import build as native_build
from repro._native import (
    build_library,
    find_compiler,
    kernel_cache_dir,
    load_kernel,
    native_available,
    native_disabled,
    resolve_kernel,
)
from repro.exceptions import NativeKernelError
from repro.graphs.graph import Graph
from repro.motifs.base import MotifPattern
from repro.motifs.enumeration import TargetSubgraphIndex

MOTIFS = ("triangle", "rectangle", "rectri", "path4")

needs_native = pytest.mark.skipif(
    not native_available(),
    reason="native kernel not loadable (no compiler or REPRO_NATIVE=0)",
)
needs_compiler = pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler on this machine"
)


class TupleOnlyTriangle(MotifPattern):
    """A custom motif with no id-space override (exercises the fallback)."""

    name = "tuple-only-triangle"

    def enumerate_instances(self, graph, target):
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        for w in graph.common_neighbors(u, v):
            yield frozenset((self._canonical(u, w), self._canonical(w, v)))


def random_index(seed, motif):
    rng = random.Random(seed)
    n = rng.randint(10, 18)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.35:
                graph.add_edge(u, v)
    edges = sorted(graph.edges())
    if len(edges) < 4:
        return None
    targets = []
    for _ in range(4):
        target = edges[rng.randrange(len(edges))]
        if target not in targets:
            targets.append(target)
            graph.remove_edge(*target)
    return TargetSubgraphIndex(graph, targets, motif)


def sgb_walk(state):
    """(deleted edge, gain, total sim) triples of the full validated walk."""
    trace = []
    while True:
        top = state.top_gain_edge()
        if top is None:
            break
        state.delete_edge(top[0])
        trace.append((top[0], top[1], state.total_similarity()))
    return trace


def pair_walk(state, targets, constant, budget):
    """(score, target, edge, sims) tuples of a best_scored_pair walk."""
    trace = []
    for _ in range(budget):
        best = state.best_scored_pair(targets, constant)
        if best is None:
            break
        state.delete_edge(best[2])
        trace.append(
            (best[0], best[1], best[2], tuple(state.similarity_by_target().items()))
        )
    return trace


@needs_native
@pytest.mark.parametrize("motif", MOTIFS + ("tuple-only",))
def test_sgb_walk_bit_identical_across_kernels_and_set(motif):
    pattern = TupleOnlyTriangle() if motif == "tuple-only" else motif
    for seed in range(12):
        index = random_index(seed, pattern)
        if index is None or index.number_of_instances() == 0:
            continue
        native = index.new_state(kernel="native")
        numpy_state = index.new_state(kernel="numpy")
        assert native.kernel == "native" and numpy_state.kernel == "numpy"
        native_trace = sgb_walk(native)
        assert native_trace == sgb_walk(numpy_state)
        # replay the native deletion sequence on the set reference
        reference = index.new_set_state()
        for edge, gain, total in native_trace:
            assert reference.gain(edge) == gain
            reference.delete_edge(edge)
            assert reference.total_similarity() == total
        assert native.similarity_by_target() == reference.similarity_by_target()
        assert native.is_fully_protected() == reference.is_fully_protected()


@needs_native
@pytest.mark.parametrize("motif", MOTIFS)
def test_pair_walks_bit_identical_across_kernels(motif):
    for seed in range(12):
        index = random_index(seed, motif)
        if index is None or index.number_of_instances() == 0:
            continue
        constant = index.number_of_instances() + 1
        all_targets = list(index.targets)
        # CT-style: every target each step
        native = index.new_state(kernel="native")
        numpy_state = index.new_state(kernel="numpy")
        assert pair_walk(native, all_targets, constant, 20) == pair_walk(
            numpy_state, all_targets, constant, 20
        )
        # WT-style: one target at a time, and a mid-walk subset change
        native = index.new_state(kernel="native")
        numpy_state = index.new_state(kernel="numpy")
        for target in all_targets:
            assert pair_walk(native, (target,), constant, 3) == pair_walk(
                numpy_state, (target,), constant, 3
            )
        # changing the constant must rebuild the heaps identically
        assert pair_walk(native, all_targets, constant + 3, 5) == pair_walk(
            numpy_state, all_targets, constant + 3, 5
        )


@needs_native
def test_copy_midwalk_continues_identically():
    index = random_index(3, "rectangle")
    state = index.new_state(kernel="native")
    for _ in range(3):
        top = state.top_gain_edge()
        if top is None:
            break
        state.delete_edge(top[0])
    clone = state.copy()
    assert clone.kernel == "native"
    assert sgb_walk(clone) == sgb_walk(state)
    assert clone.similarity_by_target() == state.similarity_by_target()


@needs_native
def test_pickle_roundtrip_preserves_kernel_and_walk():
    index = random_index(5, "triangle")
    state = index.new_state(kernel="native")
    constant = index.number_of_instances() + 1
    pair_walk(state, list(index.targets), constant, 2)
    revived = pickle.loads(pickle.dumps(state))
    assert revived.kernel == "native"
    assert revived.deleted_edges == state.deleted_edges
    assert pair_walk(
        revived, list(index.targets), constant, 10
    ) == pair_walk(state, list(index.targets), constant, 10)


def _finish_walk(state):
    return sgb_walk(state)


@needs_native
def test_process_pool_roundtrip_rebuilds_native_handles():
    index = random_index(7, "rectangle")
    state = index.new_state(kernel="native")
    top = state.top_gain_edge()
    if top is not None:
        state.delete_edge(top[0])
    local = sgb_walk(state.copy())
    with ProcessPoolExecutor(max_workers=1) as pool:
        remote = pool.submit(_finish_walk, state).result()
    assert remote == local


def _reset_loader(monkeypatch):
    monkeypatch.setattr(native_build, "_LOADED", None)
    monkeypatch.setattr(native_build, "_LOAD_FAILED", False)
    monkeypatch.setattr(native_build, "_FALLBACK_LOGGED", False)


class TestLoaderFallback:
    def test_missing_compiler_degrades_to_numpy(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "empty"))
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setattr(native_build, "find_compiler", lambda: None)
        monkeypatch.setattr(native_build, "_prebuilt_library", lambda: None)
        _reset_loader(monkeypatch)
        assert load_kernel() is None
        assert not native_available()
        assert resolve_kernel("auto") == "numpy"
        assert resolve_kernel(None) == "numpy"
        with pytest.raises(NativeKernelError):
            resolve_kernel("native")
        index = random_index(1, "triangle")
        assert index.new_state(kernel="auto").kernel == "numpy"

    def test_repro_native_zero_forces_numpy_even_for_explicit_native(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        _reset_loader(monkeypatch)
        assert native_disabled()
        assert load_kernel() is None
        assert resolve_kernel("native") == "numpy"
        index = random_index(1, "triangle")
        state = index.new_state(kernel="native")
        assert state.kernel == "numpy"
        assert sgb_walk(state) == sgb_walk(index.new_state(kernel="numpy"))

    def test_unknown_kernel_name_rejected(self):
        with pytest.raises(NativeKernelError):
            resolve_kernel("fortran")


@needs_compiler
class TestCacheBuild:
    def test_build_into_fresh_cache_and_reuse(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        assert kernel_cache_dir() == tmp_path
        artifact = build_library()
        assert artifact.parent == tmp_path and artifact.exists()
        first_mtime = artifact.stat().st_mtime_ns
        assert build_library() == artifact  # cache hit, no rebuild
        assert artifact.stat().st_mtime_ns == first_mtime
        assert build_library(force=True) == artifact  # same key, recompiled
        kernel = native_build.NativeKernel(artifact)
        assert kernel.kill_instances is not None

    def test_stale_cache_entry_is_ignored_not_loaded(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        stale = tmp_path / "coverage_kernel-0000000000000000.so"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_bytes(b"not a shared object")
        artifact = build_library()
        assert artifact != stale  # keyed by the real source digest
        monkeypatch.setattr(native_build, "_prebuilt_library", lambda: None)
        _reset_loader(monkeypatch)
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        kernel = load_kernel()
        assert kernel is not None and kernel.library_path == artifact
