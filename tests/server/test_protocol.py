"""Unit tests for the minimal HTTP framing layer."""

import asyncio

import pytest

from repro.exceptions import ServerProtocolError
from repro.server.protocol import (
    json_response,
    parse_response_head,
    read_request,
    response_bytes,
)


def parse(data: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestRequestParsing:
    def test_get_with_query(self):
        request = parse(b"GET /stats?verbose=1&x=a%20b HTTP/1.1\r\nHost: h\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/stats"
        assert request.query == {"verbose": "1", "x": "a b"}
        assert request.body == b""
        assert request.keep_alive is True

    def test_post_with_body(self):
        body = b'{"method": "SGB-Greedy", "budget": 5}'
        raw = (
            b"POST /solve HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.body == body
        assert request.json() == {"method": "SGB-Greedy", "budget": 5}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_header_names_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Custom-Header: Value\r\n\r\n")
        assert request.headers["x-custom-header"] == "Value"

    def test_http10_defaults_to_close(self):
        assert parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive is False
        assert (
            parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive
            is True
        )

    def test_http11_connection_close(self):
        assert parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive is False


class TestRequestRejection:
    def test_malformed_request_line(self):
        with pytest.raises(ServerProtocolError):
            parse(b"NONSENSE\r\n\r\n")

    def test_unsupported_version(self):
        with pytest.raises(ServerProtocolError):
            parse(b"GET / HTTP/2\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(ServerProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_body_exceeding_limit(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
        with pytest.raises(ServerProtocolError):
            parse(raw, max_body_bytes=10)

    def test_truncated_body(self):
        with pytest.raises(ServerProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_malformed_header_line(self):
        with pytest.raises(ServerProtocolError):
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_bad_json_body(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oops")
        # parsing frames lazily; .json() raises on the bad payload
        with pytest.raises(ServerProtocolError):
            request.json()


class TestResponses:
    def test_response_round_trip(self):
        raw = json_response(200, {"b": 2, "a": 1})
        head, _, body = raw.partition(b"\r\n\r\n")
        status, headers = parse_response_head(head)
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert int(headers["content-length"]) == len(body)
        # canonical key order: coalesced duplicates compare byte-identical
        assert body == b'{"a": 1, "b": 2}'

    def test_extra_headers_and_close(self):
        raw = response_bytes(
            429, b"{}", keep_alive=False, extra_headers={"Retry-After": "1"}
        )
        status, headers = parse_response_head(raw.partition(b"\r\n\r\n")[0])
        assert status == 429
        assert headers["retry-after"] == "1"
        assert headers["connection"] == "close"
