"""The HTTP front over a sharded session, plus protocol edge cases.

A ``ShardedProtectionService`` drops into ``ProtectionServer`` unchanged:
solves route/scatter-gather behind ``POST /solve``, ``GET /stats`` reports
the shard count and combined instances, and hot reload understands
``.tppshards`` bundles and combined-hash delta files (reporting which
shards a delta actually touched).  This file also pins the protocol edge
cases deferred from the serving-front PR: an oversized request body
answers ``413``, an unknown route ``404``, and request coalescing across
a shard-aware reload boundary keeps the admitted-session semantics.

The shard count comes from ``REPRO_SHARDS`` (default 3) so the CI
``tests-sharded`` matrix leg genuinely reshapes these sessions.
"""

import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.datasets.targets import sample_random_targets
from repro.exceptions import ServerError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import canonical_edge
from repro.motifs.updates import EdgeDelta
from repro.persistence import save_delta_snapshot
from repro.server import (
    ProtectionServer,
    ServingClient,
    serve_in_background,
)
from repro.server.protocol import parse_response_head
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    ShardedProtectionService,
    register_method,
    shards_from_env,
    unregister_method,
)

SHARDS = shards_from_env(default=3)


@pytest.fixture(scope="module")
def problem():
    graph = powerlaw_cluster_graph(160, 3, 0.5, seed=13)
    targets = sample_random_targets(graph, 6, seed=3)
    built = TPPProblem(graph, targets, motif="triangle")
    built.build_index()
    return built


@pytest.fixture(scope="module")
def reference(problem):
    return ShardedProtectionService(problem, shards=SHARDS)


@pytest.fixture
def served(problem):
    server = ProtectionServer(
        ShardedProtectionService(problem, shards=SHARDS), solver_threads=3
    )
    handle = serve_in_background(server)
    try:
        yield server, ServingClient(handle.url, timeout=120.0)
    finally:
        handle.stop()


def trace(result):
    return (result.protectors, result.similarity_trace)


def raw_request(url, payload):
    """Write raw bytes to the server and return (status, headers, body)."""
    host, _, port = url.rsplit("/", 1)[-1].partition(":")
    with socket.create_connection((host, int(port)), timeout=30.0) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    blob = b"".join(chunks)
    head, _, body = blob.partition(b"\r\n\r\n")
    status, headers = parse_response_head(head)
    return status, headers, body


class TestShardedSolve:
    def test_parity_with_direct_sharded_session(self, served, reference):
        _, client = served
        request = ProtectionRequest("SGB-Greedy", 6)
        assert trace(client.solve(request)) == trace(reference.solve(request))

    def test_metadata_reports_routing(self, served, reference):
        _, client = served
        payload = client.solve_payload(ProtectionRequest("SGB-Greedy", 6))
        meta = payload["extra"]["service"]["shards"]
        assert meta["count"] == reference.shard_count
        assert meta["mode"] in ("single", "scatter-gather")
        assert payload["extra"]["server"]["content_hash"] == (
            reference.content_hash()
        )

    def test_single_shard_subset_over_http(self, served, reference):
        _, client = served
        piece = reference.assignment[0]
        request = ProtectionRequest("SGB-Greedy", 3, targets=piece)
        payload = client.solve_payload(request)
        assert payload["extra"]["service"]["shards"]["mode"] == "single"
        assert tuple(
            canonical_edge(*p) for p in payload["protectors"]
        ) == reference.solve(request).protectors

    def test_stats_reports_shards_and_combined_instances(
        self, served, reference
    ):
        _, client = served
        stats = client.stats()
        assert stats["shards"] == reference.shard_count
        assert stats["instances"] == reference.number_of_instances()
        assert stats["targets"] == len(reference.targets)
        assert stats["content_hash"] == reference.content_hash()

    def test_health_reports_combined_hash(self, served, reference):
        _, client = served
        assert client.health()["content_hash"] == reference.content_hash()


class TestProtocolEdgeCases:
    def test_oversized_body_is_413(self, served):
        server, client = served
        status, _, body = raw_request(
            client.base_url,
            b"POST /solve HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 999999999999\r\n\r\n",
        )
        assert status == 413
        assert b"exceeds" in body
        # the connection was refused before any body was read; the server
        # keeps serving
        assert client.health()["status"] == "ok"

    def test_unknown_route_is_404(self, served):
        _, client = served
        status, _, body = client._request("GET", "/definitely-not-a-route")
        assert status == 404
        assert b"unknown path" in body

    def test_unknown_route_post_is_404_too(self, served):
        _, client = served
        status, _, _ = client._request("POST", "/shards", body=b"{}")
        assert status == 404


class TestShardedReload:
    def test_bundle_swap_reports_shards(self, served, reference, tmp_path):
        server, client = served
        bundle = reference.save_session(tmp_path / "session.tppshards")
        outcome = client.reload(snapshot=bundle)
        assert outcome["action"] == "swapped"
        assert outcome["shards"] == reference.shard_count
        assert outcome["content_hash"] == reference.content_hash()
        stats = client.stats()
        assert stats["index_source"] == "snapshot"
        assert stats["shards"] == reference.shard_count

    def test_delta_reload_reports_touched_shards(
        self, served, problem, tmp_path
    ):
        server, client = served
        live = server.current_service()
        target_set = set(live.targets)
        deletions = [
            canonical_edge(*edge)
            for edge in sorted(problem.phase1_graph.edges())
            if canonical_edge(*edge) not in target_set
        ][:2]
        delta = EdgeDelta.from_edges(delete=deletions)
        scratch = ShardedProtectionService(problem, shards=SHARDS)
        parent_hash = scratch.content_hash()
        expected = scratch.apply_delta(delta)
        delta_file = save_delta_snapshot(
            tmp_path / "step.tppdelta", delta, parent_hash,
            scratch.content_hash(),
        )
        outcome = client.reload(delta=delta_file)
        assert outcome["action"] == "delta-applied"
        assert outcome["touched_shards"] == list(expected.touched_shards)
        assert outcome["content_hash"] == scratch.content_hash()
        stats = client.stats()
        assert stats["index_source"] == "delta"
        assert stats["deltas_applied"] == 1
        # replay: parent hash no longer matches the live combined hash
        with pytest.raises(ServerError, match="409"):
            client.reload(delta=delta_file)

    def test_coalescing_across_a_reload_boundary(
        self, served, problem, reference, tmp_path
    ):
        """A joiner that coalesces onto a solve admitted before the reload
        gets the admitted session's answer; fresh requests after the
        in-flight solve completes answer from the new session."""
        server, client = served
        bundle = reference.save_session(tmp_path / "session.tppshards")
        started = threading.Event()
        release = threading.Event()

        @register_method("Gated-Sharded", kind="greedy", order=992)
        def _run(problem_arg, budget, engine, seed, **options):
            started.set()
            assert release.wait(timeout=60.0)
            return sgb_greedy(problem_arg, budget, engine=engine)

        try:
            request = ProtectionRequest("Gated-Sharded", 4)
            with ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(client.solve_payload, request)
                assert started.wait(timeout=30.0)
                # the reload lands while the gated solve is mid-flight
                outcome = client.reload(snapshot=bundle)
                assert outcome["action"] == "swapped"
                second = pool.submit(client.solve_payload, request)
                deadline = threading.Event()
                for _ in range(200):
                    if server.stats()["coalesced_hits"] >= 1:
                        break
                    deadline.wait(0.02)
                assert server.stats()["coalesced_hits"] >= 1
                release.set()
                payloads = [
                    first.result(timeout=60.0),
                    second.result(timeout=60.0),
                ]
        finally:
            release.set()
            unregister_method("Gated-Sharded")

        flags = sorted(
            payload["extra"]["server"].pop("coalesced")
            for payload in payloads
        )
        assert flags == [False, True]
        # both riders share one solve on the session admitted pre-reload
        assert payloads[0] == payloads[1]
        assert server.stats()["reloads"] == 1
        # the next identical request starts fresh on the reloaded session
        fresh = client.solve_payload(ProtectionRequest("SGB-Greedy", 4))
        assert fresh["extra"]["server"]["coalesced"] is False
        expected = ShardedProtectionService(problem, shards=SHARDS).solve(
            ProtectionRequest("SGB-Greedy", 4)
        )
        assert tuple(
            canonical_edge(*p) for p in fresh["protectors"]
        ) == expected.protectors


class TestMixedReload:
    def test_plain_to_sharded_and_back(self, problem, reference, tmp_path):
        """One server hops between unsharded and sharded sessions; stats
        always describe whichever session is live."""
        server = ProtectionServer(ProtectionService(problem), solver_threads=2)
        with serve_in_background(server) as handle:
            client = ServingClient(handle.url, timeout=120.0)
            assert "shards" not in client.stats()
            bundle = reference.save_session(tmp_path / "session.tppshards")
            outcome = client.reload(snapshot=bundle)
            assert outcome["shards"] == reference.shard_count
            assert client.stats()["shards"] == reference.shard_count
            request = ProtectionRequest("SGB-Greedy", 5)
            assert trace(client.solve(request)) == trace(
                reference.solve(request)
            )
            snapshot = problem.save_index(tmp_path / "plain.tppsnap")
            outcome = client.reload(snapshot=snapshot)
            assert "shards" not in outcome
            assert "shards" not in client.stats()
