"""Integration tests for the HTTP serving front.

Every test talks to a real ``ProtectionServer`` bound to a loopback port
via ``serve_in_background`` — the same path the CLI and the benchmarks
use — so request framing, routing, backpressure, coalescing and the
replica cold-start all run end-to-end over actual sockets.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.datasets.targets import sample_random_targets
from repro.exceptions import (
    ArtifactNotFoundError,
    ServerError,
    ServerOverloadedError,
    SnapshotFormatError,
    SnapshotMismatchError,
)
from repro.graphs.generators import powerlaw_cluster_graph
from repro.persistence import index_content_hash
from repro.server import ArtifactStore, ProtectionServer, ServingClient, serve_in_background
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    register_method,
    unregister_method,
)


@pytest.fixture(scope="module")
def problem():
    graph = powerlaw_cluster_graph(180, 3, 0.5, seed=3)
    targets = sample_random_targets(graph, 5, seed=1)
    built = TPPProblem(graph, targets, motif="triangle")
    built.build_index()  # sessions created from it reuse this index
    return built


@pytest.fixture(scope="module")
def reference(problem):
    return ProtectionService(problem)


@pytest.fixture
def served(problem, tmp_path):
    server = ProtectionServer(
        ProtectionService(problem),
        store=ArtifactStore(tmp_path / "store"),
        solver_threads=3,
    )
    handle = serve_in_background(server)
    try:
        yield server, ServingClient(handle.url, timeout=120.0)
    finally:
        handle.stop()


def trace(result):
    return (result.protectors, result.similarity_trace)


class GateMethod:
    """A registered method that blocks until the test releases it."""

    def __init__(self, name):
        self.name = name
        self.started = threading.Event()
        self.release = threading.Event()

    def __enter__(self):
        @register_method(self.name, kind="greedy", order=990)
        def _run(problem, budget, engine, seed, **options):
            self.started.set()
            assert self.release.wait(timeout=60.0), "gate never released"
            return sgb_greedy(problem, budget, engine=engine)

        return self

    def __exit__(self, *exc_info):
        self.release.set()
        unregister_method(self.name)


class TestSolve:
    def test_parity_with_direct_session(self, served, reference):
        _, client = served
        request = ProtectionRequest("SGB-Greedy", 5)
        assert trace(client.solve(request)) == trace(reference.solve(request))

    def test_server_metadata_block(self, served, problem):
        server, client = served
        payload = client.solve_payload(ProtectionRequest("CT-Greedy:TBD", 4))
        meta = payload["extra"]["server"]
        assert meta["coalesced"] is False
        assert meta["content_hash"] == index_content_hash(problem.build_index())
        assert meta["queue_seconds"] >= 0.0
        assert meta["solve_seconds"] > 0.0
        # the session's own metadata block survives alongside
        assert payload["extra"]["service"]["reused_index"] is True

    def test_subset_request_parity(self, served, reference, problem):
        _, client = served
        subset = tuple(problem.targets[:3])
        request = ProtectionRequest("SGB-Greedy", 4, targets=subset)
        assert trace(client.solve(request)) == trace(reference.solve(request))

    def test_queries_served_visible_in_stats(self, served):
        _, client = served
        before = client.stats()["queries_served"]
        client.solve(ProtectionRequest("SGB-Greedy", 3))
        assert client.stats()["queries_served"] == before + 1


class TestRejection:
    def test_invalid_method_is_400(self, served):
        _, client = served
        with pytest.raises(ServerError, match="400"):
            client.solve(ProtectionRequest("No-Such-Method", 3))

    def test_non_object_body_is_400(self, served):
        _, client = served
        status, _, _ = client._request("POST", "/solve", body=b"[1, 2]")
        assert status == 400

    def test_unparseable_body_is_400(self, served):
        _, client = served
        status, _, _ = client._request("POST", "/solve", body=b"{nope")
        assert status == 400

    def test_unknown_path_is_404(self, served):
        _, client = served
        with pytest.raises(ServerError, match="404"):
            client._json("GET", "/no-such-endpoint")

    def test_wrong_method_is_405_with_allow(self, served):
        _, client = served
        status, headers, _ = client._request("GET", "/solve")
        assert status == 405
        assert headers["allow"] == "POST"

    def test_queue_full_is_429(self, problem):
        server = ProtectionServer(
            ProtectionService(problem), max_pending=1, solver_threads=2
        )
        with GateMethod("Gated-429") as gate, serve_in_background(server) as handle:
            client = ServingClient(handle.url, timeout=120.0)
            with ThreadPoolExecutor(max_workers=1) as pool:
                occupying = pool.submit(
                    client.solve, ProtectionRequest("Gated-429", 3)
                )
                assert gate.started.wait(timeout=30.0)
                # a *different* request cannot coalesce and the queue is full
                with pytest.raises(ServerOverloadedError) as excinfo:
                    client.solve(ProtectionRequest("Gated-429", 4))
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after >= 0.0
                gate.release.set()
                occupying.result(timeout=60.0)
            assert server.stats()["rejected"] == 1
            assert server.stats()["solves_executed"] == 1

    def test_draining_is_503(self, served):
        server, client = served
        client.health()  # serving normally first
        server.drain()
        with pytest.raises(ServerOverloadedError) as excinfo:
            client.health()
        assert excinfo.value.status == 503
        with pytest.raises(ServerOverloadedError):
            client.solve(ProtectionRequest("SGB-Greedy", 3))
        assert client.stats()["status"] == "draining"


class TestCoalescing:
    def test_permuted_subset_duplicates_share_one_solve(self, served, problem):
        server, client = served
        subset = tuple(problem.targets[:3])
        permuted = (subset[2], subset[0], subset[1])
        solves_before = server.stats()["solves_executed"]
        with GateMethod("Gated-Coalesce") as gate:
            with ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(
                    client.solve_payload,
                    ProtectionRequest("Gated-Coalesce", 4, targets=subset),
                )
                assert gate.started.wait(timeout=30.0)
                second = pool.submit(
                    client.solve_payload,
                    ProtectionRequest("Gated-Coalesce", 4, targets=permuted),
                )
                # the joiner is counted before the shared solve finishes
                deadline = threading.Event()
                for _ in range(200):
                    if server.stats()["coalesced_hits"] >= 1:
                        break
                    deadline.wait(0.02)
                assert server.stats()["coalesced_hits"] >= 1
                gate.release.set()
                payloads = [first.result(timeout=60.0), second.result(timeout=60.0)]
        # one initiator, one coalesced joiner — otherwise identical payloads
        flags = sorted(p["extra"]["server"].pop("coalesced") for p in payloads)
        assert flags == [False, True]
        assert payloads[0] == payloads[1]
        assert server.stats()["solves_executed"] == solves_before + 1


class TestStats:
    def test_expected_fields(self, served, problem):
        _, client = served
        stats = client.stats()
        for field in (
            "status",
            "queries_served",
            "index_source",
            "deltas_applied",
            "content_hash",
            "targets",
            "instances",
            "pending",
            "max_pending",
            "uptime_seconds",
            "requests_total",
            "solves_executed",
            "solve_errors",
            "coalesced_hits",
            "rejected",
            "reloads",
            "poll_errors",
        ):
            assert field in stats, field
        assert stats["status"] == "serving"
        assert stats["index_source"] == "built"
        assert stats["targets"] == len(problem.targets)
        assert stats["content_hash"] == index_content_hash(problem.build_index())

    def test_health(self, served, problem):
        _, client = served
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["content_hash"] == index_content_hash(problem.build_index())


class TestColdStart:
    def test_replica_serves_byte_identical_traces(
        self, served, reference, problem, tmp_path
    ):
        _, client = served
        published = client.publish_file(problem.save_index(tmp_path / "a.tppsnap"))
        content_hash = published["content_hash"]
        client.set_latest(content_hash)
        assert client.list_artifacts()["latest"] == content_hash

        replica = client.cold_start(content_hash, cache_dir=tmp_path / "cache")
        assert replica.index_source == "snapshot"
        for request in (
            ProtectionRequest("SGB-Greedy", 5),
            ProtectionRequest("WT-Greedy:TBD", 4),
        ):
            assert trace(replica.solve(request)) == trace(reference.solve(request))

    def test_cached_fetch_skips_network(self, served, problem, tmp_path):
        _, client = served
        published = client.publish_file(problem.save_index(tmp_path / "a.tppsnap"))
        content_hash = published["content_hash"]
        cache = tmp_path / "cache"
        client.cold_start(content_hash, cache_dir=cache)
        # second start must come from the cache file, not the wire
        requests_before = client.stats()["requests_total"]
        client.cold_start(content_hash, cache_dir=cache)
        assert client.stats()["requests_total"] == requests_before + 1  # the stats call

    def test_unknown_hash_is_404(self, served, tmp_path):
        _, client = served
        with pytest.raises(ArtifactNotFoundError):
            client.cold_start("feedbeef" * 8, cache_dir=tmp_path / "cache")

    def test_mislabelled_artifact_refused_and_cache_scrubbed(
        self, served, problem, tmp_path
    ):
        _, client = served
        published = client.publish_file(problem.save_index(tmp_path / "a.tppsnap"))
        content_hash = published["content_hash"]
        # poison the cache: a *valid* snapshot of different content under
        # the requested hash's cache filename
        other = TPPProblem(
            powerlaw_cluster_graph(120, 3, 0.5, seed=11),
            sample_random_targets(powerlaw_cluster_graph(120, 3, 0.5, seed=11), 4, seed=2),
            motif="triangle",
        )
        cache = tmp_path / "cache"
        cache.mkdir()
        poisoned = cache / f"{content_hash}.tppsnap"
        other.save_index(poisoned)
        with pytest.raises(SnapshotMismatchError):
            client.cold_start(content_hash, cache_dir=cache)
        assert not poisoned.exists()  # scrubbed so a retry re-downloads
        # and the retry indeed recovers by re-fetching the real artifact
        replica = client.cold_start(content_hash, cache_dir=cache)
        assert index_content_hash(replica.index) == content_hash

    def test_corrupt_cache_refused_and_scrubbed(self, served, problem, tmp_path):
        _, client = served
        published = client.publish_file(problem.save_index(tmp_path / "a.tppsnap"))
        content_hash = published["content_hash"]
        cache = tmp_path / "cache"
        cache.mkdir()
        corrupt = cache / f"{content_hash}.tppsnap"
        corrupt.write_bytes(b"not a snapshot at all")
        with pytest.raises(SnapshotFormatError):
            client.cold_start(content_hash, cache_dir=cache)
        assert not corrupt.exists()


class TestConstruction:
    def test_bad_parameters_rejected(self, problem):
        with pytest.raises(ServerError):
            ProtectionServer(ProtectionService(problem), max_pending=0)
        with pytest.raises(ServerError):
            ProtectionServer(ProtectionService(problem), solver_threads=0)

    def test_bad_base_url_rejected(self):
        with pytest.raises(ServerError):
            ServingClient("ftp://example.org")
