"""Hot-reload under concurrent load.

The guarantees under test: queries already in flight finish on the
session they were admitted under; a completed swap answers with the new
content hash; ``*.tppdelta`` files apply through the session's
copy-on-write machinery; and a corrupt or stale artifact is refused with
the live session untouched.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.datasets.targets import sample_random_targets
from repro.exceptions import ServerError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import canonical_edge
from repro.motifs.updates import EdgeDelta
from repro.persistence import index_content_hash, save_delta_snapshot
from repro.server import ArtifactStore, ProtectionServer, ServingClient, serve_in_background
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    register_method,
    unregister_method,
)


def build_problem(seed):
    graph = powerlaw_cluster_graph(160, 3, 0.5, seed=seed)
    targets = sample_random_targets(graph, 4, seed=seed + 1)
    problem = TPPProblem(graph, targets, motif="triangle")
    problem.build_index()
    return problem


@pytest.fixture(scope="module")
def problem_a():
    return build_problem(9)


@pytest.fixture(scope="module")
def problem_b():
    return build_problem(21)


@pytest.fixture(scope="module")
def hash_a(problem_a):
    return index_content_hash(problem_a.build_index())


@pytest.fixture(scope="module")
def hash_b(problem_b):
    return index_content_hash(problem_b.build_index())


@pytest.fixture
def served(problem_a, tmp_path):
    server = ProtectionServer(
        ProtectionService(problem_a),
        store=ArtifactStore(tmp_path / "store"),
        solver_threads=3,
    )
    handle = serve_in_background(server)
    try:
        yield server, ServingClient(handle.url, timeout=120.0)
    finally:
        handle.stop()


def trace(result):
    return (result.protectors, result.similarity_trace)


def make_delta(problem, count=2):
    """Delete ``count`` non-target phase-1 edges (a small, valid update)."""
    phase1 = problem.phase1_graph
    target_set = {canonical_edge(*target) for target in problem.targets}
    deletions = [
        canonical_edge(*edge)
        for edge in sorted(phase1.edges())
        if canonical_edge(*edge) not in target_set
    ][:count]
    return EdgeDelta.from_edges(delete=deletions)


class TestSnapshotSwap:
    def test_inflight_finishes_on_old_session(
        self, served, problem_a, problem_b, hash_a, hash_b, tmp_path
    ):
        server, client = served
        snapshot_b = problem_b.save_index(tmp_path / "b.tppsnap")

        started = threading.Event()
        release = threading.Event()

        @register_method("Gated-Reload", kind="greedy", order=991)
        def _run(problem, budget, engine, seed, **options):
            started.set()
            assert release.wait(timeout=60.0)
            return sgb_greedy(problem, budget, engine=engine)

        try:
            with ThreadPoolExecutor(max_workers=1) as pool:
                inflight = pool.submit(
                    client.solve_payload, ProtectionRequest("Gated-Reload", 4)
                )
                assert started.wait(timeout=30.0)
                # swap while the query is mid-solve on the old session
                outcome = client.reload(snapshot=snapshot_b)
                assert outcome["action"] == "swapped"
                assert outcome["content_hash"] == hash_b
                release.set()
                payload = inflight.result(timeout=60.0)
        finally:
            release.set()
            unregister_method("Gated-Reload")

        # the in-flight query finished on the session it was admitted under
        assert payload["extra"]["server"]["content_hash"] == hash_a
        expected = ProtectionService(problem_a).solve(
            ProtectionRequest("SGB-Greedy", 4)
        )
        assert tuple(map(tuple, payload["protectors"])) == expected.protectors

        # post-swap queries answer from the new session
        fresh = client.solve_payload(ProtectionRequest("SGB-Greedy", 4))
        assert fresh["extra"]["server"]["content_hash"] == hash_b
        expected_b = ProtectionService(problem_b).solve(
            ProtectionRequest("SGB-Greedy", 4)
        )
        assert tuple(map(tuple, fresh["protectors"])) == expected_b.protectors
        assert client.stats()["reloads"] == 1

    def test_concurrent_load_straddles_the_swap(
        self, served, problem_a, problem_b, hash_a, hash_b, tmp_path
    ):
        """Queries racing a swap all succeed and each one's payload matches
        a direct solve on whichever session answered it."""
        server, client = served
        snapshot_b = problem_b.save_index(tmp_path / "b.tppsnap")
        budgets = [2, 3, 4, 5]
        with ThreadPoolExecutor(max_workers=len(budgets) + 1) as pool:
            solves = [
                pool.submit(
                    client.solve_payload, ProtectionRequest("SGB-Greedy", budget)
                )
                for budget in budgets
            ]
            swap = pool.submit(client.reload, snapshot=snapshot_b)
            payloads = [solve.result(timeout=120.0) for solve in solves]
            assert swap.result(timeout=120.0)["content_hash"] == hash_b
        references = {
            hash_a: ProtectionService(problem_a),
            hash_b: ProtectionService(problem_b),
        }
        for budget, payload in zip(budgets, payloads):
            answered_by = payload["extra"]["server"]["content_hash"]
            assert answered_by in references
            expected = references[answered_by].solve(
                ProtectionRequest("SGB-Greedy", budget)
            )
            assert tuple(map(tuple, payload["protectors"])) == expected.protectors


class TestDeltaReload:
    def test_delta_applies_and_stale_replay_refused(
        self, served, problem_a, hash_a, tmp_path
    ):
        server, client = served
        delta = make_delta(problem_a)
        _, outcome = problem_a.apply_delta(delta)
        delta_file = save_delta_snapshot(
            tmp_path / "step.tppdelta", delta, problem_a.build_index(), outcome.index
        )
        result_hash = index_content_hash(outcome.index)
        assert result_hash != hash_a

        reloaded = client.reload(delta=delta_file)
        assert reloaded["action"] == "delta-applied"
        assert reloaded["content_hash"] == result_hash
        stats = client.stats()
        assert stats["index_source"] == "delta"
        assert stats["deltas_applied"] == 1

        # replaying the same delta: its parent hash no longer matches
        with pytest.raises(ServerError, match="409"):
            client.reload(delta=delta_file)
        # ...and the live session is untouched by the refused replay
        assert client.stats()["content_hash"] == result_hash

    def test_delta_reload_serves_updated_results(self, served, problem_a, tmp_path):
        server, client = served
        before = client.solve(ProtectionRequest("SGB-Greedy", 4))
        delta = make_delta(problem_a)
        mutated, outcome = problem_a.apply_delta(delta)
        delta_file = save_delta_snapshot(
            tmp_path / "step.tppdelta", delta, problem_a.build_index(), outcome.index
        )
        client.reload(delta=delta_file)
        after = client.solve(ProtectionRequest("SGB-Greedy", 4))
        expected = ProtectionService(mutated).solve(ProtectionRequest("SGB-Greedy", 4))
        assert trace(after) == trace(expected)
        # the swap genuinely changed the answering state
        assert (
            index_content_hash(ProtectionService(mutated).index)
            != index_content_hash(ProtectionService(problem_a).index)
        )
        del before  # the pre-swap answer is problem_a's; no assertion needed


class TestRefusals:
    def test_corrupt_publish_refused_store_untouched(self, served, hash_a):
        server, client = served
        with pytest.raises(ServerError, match="publish failed \\(400\\)"):
            client.publish_bytes(b"definitely not a snapshot")
        assert client.list_artifacts()["artifacts"] == []
        # the live session never noticed
        assert client.health()["content_hash"] == hash_a

    def test_reload_missing_file_is_409(self, served, hash_a, tmp_path):
        _, client = served
        with pytest.raises(ServerError, match="409"):
            client.reload(snapshot=tmp_path / "never-written.tppsnap")
        assert client.health()["content_hash"] == hash_a

    def test_reload_needs_exactly_one_source(self, served, tmp_path):
        _, client = served
        with pytest.raises(ServerError, match="400"):
            client.reload()
        with pytest.raises(ServerError, match="400"):
            client.reload(snapshot=tmp_path / "a", delta=tmp_path / "b")

    def test_reload_unknown_hash_is_404(self, served):
        _, client = served
        with pytest.raises(ServerError, match="404"):
            client.reload(content_hash="feedface" * 8)


class TestStorePolling:
    def test_poll_converges_on_latest_snapshot(
        self, served, problem_b, hash_b, tmp_path
    ):
        server, client = served
        snapshot_b = problem_b.save_index(tmp_path / "b.tppsnap")
        client.publish_file(snapshot_b)
        client.set_latest(hash_b)
        outcome = server.poll_store_once()
        assert outcome["action"] == "converged"
        assert outcome["content_hash"] == hash_b
        # already current afterwards
        assert server.poll_store_once()["action"] == "noop"

    def test_poll_prefers_published_deltas(self, served, problem_a, hash_a, tmp_path):
        server, client = served
        delta = make_delta(problem_a)
        _, outcome = problem_a.apply_delta(delta)
        delta_file = save_delta_snapshot(
            tmp_path / "step.tppdelta", delta, problem_a.build_index(), outcome.index
        )
        result_hash = index_content_hash(outcome.index)
        client.publish_file(delta_file)
        client.set_latest(result_hash)
        polled = server.poll_store_once()
        assert polled == {
            "action": "converged",
            "steps": 1,
            "latest": result_hash,
            "content_hash": result_hash,
        }
        # the delta path kept the copy-on-write lineage, not a full swap
        assert client.stats()["index_source"] == "delta"

    def test_poll_without_pointer_is_noop(self, served):
        server, _ = served
        assert server.poll_store_once()["action"] == "noop"

    def test_background_poll_loop_converges(self, problem_a, problem_b, hash_b, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        server = ProtectionServer(
            ProtectionService(problem_a),
            store=store,
            solver_threads=2,
            poll_interval=0.05,
        )
        with serve_in_background(server) as handle:
            client = ServingClient(handle.url, timeout=120.0)
            client.publish_file(problem_b.save_index(tmp_path / "b.tppsnap"))
            client.set_latest(hash_b)
            deadline = threading.Event()
            for _ in range(200):
                if client.health()["content_hash"] == hash_b:
                    break
                deadline.wait(0.02)
            assert client.health()["content_hash"] == hash_b
