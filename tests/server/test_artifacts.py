"""Tests for the content-hash-addressed artifact store."""

import pytest

from repro.core.model import TPPProblem
from repro.datasets.targets import sample_random_targets
from repro.exceptions import ArtifactNotFoundError, SnapshotFormatError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.motifs.updates import EdgeDelta
from repro.persistence import index_content_hash, save_delta_snapshot
from repro.server import ArtifactStore


@pytest.fixture
def problem():
    graph = powerlaw_cluster_graph(180, 3, 0.5, seed=3)
    targets = sample_random_targets(graph, 5, seed=1)
    return TPPProblem(graph, targets, motif="triangle")


@pytest.fixture
def snapshot_file(problem, tmp_path):
    return problem.save_index(tmp_path / "index.tppsnap")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def make_delta(problem, count=2):
    """Delete ``count`` non-target phase-1 edges (a small, valid update)."""
    from repro.graphs.graph import canonical_edge

    phase1 = problem.phase1_graph
    target_set = {canonical_edge(*target) for target in problem.targets}
    deletions = [
        canonical_edge(*edge)
        for edge in sorted(phase1.edges())
        if canonical_edge(*edge) not in target_set
    ][:count]
    return EdgeDelta.from_edges(delete=deletions)


class TestPublish:
    def test_snapshot_addressed_by_content_hash(self, store, snapshot_file, problem):
        record = store.publish_file(snapshot_file)
        assert record.kind == "snapshot"
        assert record.content_hash == index_content_hash(problem.build_index())
        assert record.path.name == f"{record.content_hash}.tppsnap"
        assert record.path.read_bytes() == snapshot_file.read_bytes()

    def test_republish_is_idempotent(self, store, snapshot_file):
        first = store.publish_file(snapshot_file)
        second = store.publish_file(snapshot_file)
        assert first.content_hash == second.content_hash
        assert len(store.records()) == 1

    def test_garbage_bytes_refused(self, store):
        with pytest.raises(SnapshotFormatError):
            store.publish_bytes(b"this is not a snapshot")
        assert store.records() == []
        # no staging debris left behind either
        assert list(store.root.glob(".incoming-*")) == []

    def test_delta_addressed_by_result_hash(self, store, problem, tmp_path):
        index = problem.build_index()
        delta = make_delta(problem)
        _, outcome = problem.apply_delta(delta)
        delta_file = save_delta_snapshot(
            tmp_path / "step.tppdelta", delta, index, outcome.index
        )
        record = store.publish_file(delta_file)
        assert record.kind == "delta"
        assert record.content_hash == index_content_hash(outcome.index)
        assert record.parent_content_hash == index_content_hash(index)
        assert store.delta_from(record.parent_content_hash) is not None
        assert store.delta_from("no-such-parent") is None


class TestFetch:
    def test_resolve_and_fetch(self, store, snapshot_file):
        record = store.publish_file(snapshot_file)
        assert store.resolve(record.content_hash).path == record.path
        assert store.fetch_bytes(record.content_hash) == snapshot_file.read_bytes()

    def test_unknown_hash(self, store):
        with pytest.raises(ArtifactNotFoundError):
            store.resolve("deadbeef" * 8)

    def test_mislabelled_file_refused(self, store, snapshot_file):
        record = store.publish_file(snapshot_file)
        wrong = store.root / ("0" * 64 + ".tppsnap")
        record.path.rename(wrong)
        with pytest.raises(SnapshotFormatError, match="tampered"):
            store.resolve("0" * 64)


class TestLatestPointer:
    def test_unset_by_default(self, store):
        assert store.latest() is None

    def test_set_and_read(self, store, snapshot_file):
        record = store.publish_file(snapshot_file)
        store.set_latest(record.content_hash)
        assert store.latest() == record.content_hash
        assert store.describe()["latest"] == record.content_hash

    def test_dangling_pointer_refused(self, store):
        with pytest.raises(ArtifactNotFoundError):
            store.set_latest("deadbeef" * 8)
