"""Tests for the TPP vs structural-anonymization comparison."""

import pytest

from repro.anonymization.comparison import compare_protection_mechanisms
from repro.datasets.synthetic import small_social_graph
from repro.datasets.targets import sample_random_targets


@pytest.fixture(scope="module")
def outcomes():
    graph = small_social_graph(seed=3)
    targets = sample_random_targets(graph, 5, seed=1)
    return compare_protection_mechanisms(
        graph, targets, motif="triangle", metrics=("clust", "cn"), seed=0
    )


class TestComparison:
    def test_all_mechanisms_present(self, outcomes):
        names = [outcome.mechanism for outcome in outcomes]
        assert names[0] == "targets-deleted-only"
        assert any(name.startswith("TPP") for name in names)
        assert "random-perturbation" in names
        assert "random-switching" in names
        assert "randomized-response" in names

    def test_tpp_reaches_zero_residual(self, outcomes):
        tpp = next(o for o in outcomes if o.mechanism.startswith("TPP"))
        assert tpp.residual_similarity == 0

    def test_tpp_protects_better_than_structural_at_similar_edits(self, outcomes):
        tpp = next(o for o in outcomes if o.mechanism.startswith("TPP"))
        for name in ("random-perturbation", "random-switching"):
            structural = next(o for o in outcomes if o.mechanism == name)
            assert tpp.residual_similarity <= structural.residual_similarity

    def test_rows_are_well_formed(self, outcomes):
        for outcome in outcomes:
            mechanism, edits, residual, loss = outcome.as_row()
            assert isinstance(mechanism, str)
            assert edits >= 0
            assert residual >= 0
            assert 0.0 <= loss <= 100.0

    def test_explicit_budgets(self):
        graph = small_social_graph(seed=9)
        targets = sample_random_targets(graph, 3, seed=2)
        outcomes = compare_protection_mechanisms(
            graph,
            targets,
            tpp_budget=2,
            structural_edits=2,
            metrics=("clust",),
            seed=1,
        )
        tpp = next(o for o in outcomes if o.mechanism.startswith("TPP"))
        assert tpp.edits <= len(targets) + 2
