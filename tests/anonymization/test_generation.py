"""Tests for the pseudo-graph generation baselines."""

import pytest

from repro.anonymization.generation import (
    configuration_model_release,
    degree_preserving_rewire_release,
)
from repro.datasets.synthetic import small_social_graph
from repro.graphs.algorithms import average_clustering
from repro.exceptions import PerturbationError


@pytest.fixture
def graph():
    return small_social_graph(seed=6)


class TestConfigurationModel:
    def test_degree_sequence_approximately_preserved(self, graph):
        result = configuration_model_release(graph, seed=0)
        original = sorted(graph.degrees().values())
        released = sorted(result.graph.degrees().values())
        # stub matching may drop a few problematic stubs; allow small slack
        assert abs(sum(original) - sum(released)) <= 0.05 * sum(original)
        assert len(released) == len(original)

    def test_nodes_preserved(self, graph):
        result = configuration_model_release(graph, seed=1)
        assert set(result.graph.nodes()) == set(graph.nodes())

    def test_simple_graph_output(self, graph):
        result = configuration_model_release(graph, seed=2)
        edges = list(result.graph.edges())
        assert len(edges) == len(set(edges))
        assert all(u != v for u, v in edges)

    def test_structure_is_rerandomised(self, graph):
        result = configuration_model_release(graph, seed=3)
        overlap = len(graph.edge_set() & result.graph.edge_set())
        assert overlap < graph.number_of_edges() * 0.7

    def test_reproducible(self, graph):
        a = configuration_model_release(graph, seed=9)
        b = configuration_model_release(graph, seed=9)
        assert a.graph == b.graph

    def test_edit_bookkeeping_consistent(self, graph):
        result = configuration_model_release(graph, seed=4)
        reconstructed = graph.without_edges(result.deleted)
        for edge in result.added:
            reconstructed.add_edge(*edge)
        assert reconstructed.edge_set() == result.graph.edge_set()


class TestDegreePreservingRewire:
    def test_degrees_exactly_preserved(self, graph):
        result = degree_preserving_rewire_release(graph, switches_per_edge=1.0, seed=0)
        assert result.graph.degrees() == graph.degrees()

    def test_clustering_destroyed_by_heavy_rewiring(self, graph):
        result = degree_preserving_rewire_release(graph, switches_per_edge=3.0, seed=1)
        assert average_clustering(result.graph) < average_clustering(graph)

    def test_zero_switches_is_identity(self, graph):
        result = degree_preserving_rewire_release(graph, switches_per_edge=0.0, seed=0)
        assert result.graph == graph

    def test_negative_rate_rejected(self, graph):
        with pytest.raises(PerturbationError):
            degree_preserving_rewire_release(graph, switches_per_edge=-1.0)

    def test_mechanism_label(self, graph):
        result = degree_preserving_rewire_release(graph, switches_per_edge=0.5, seed=2)
        assert result.mechanism == "degree-preserving-rewire"
