"""Tests for the structural anonymization baselines."""

import pytest

from repro.anonymization.perturbation import (
    random_perturbation,
    random_switching,
    randomized_response,
)
from repro.datasets.synthetic import small_social_graph
from repro.exceptions import PerturbationError


@pytest.fixture
def graph():
    return small_social_graph(seed=4)


class TestRandomPerturbation:
    def test_edit_counts(self, graph):
        result = random_perturbation(graph, deletions=5, additions=3, seed=0)
        assert len(result.deleted) == 5
        assert len(result.added) == 3
        assert result.edits == 8
        assert (
            result.graph.number_of_edges()
            == graph.number_of_edges() - 5 + 3
        )

    def test_deleted_were_edges_added_were_not(self, graph):
        result = random_perturbation(graph, deletions=4, additions=4, seed=1)
        assert all(graph.has_edge(*edge) for edge in result.deleted)
        assert all(not graph.has_edge(*edge) for edge in result.added)

    def test_reproducible(self, graph):
        a = random_perturbation(graph, 3, 3, seed=7)
        b = random_perturbation(graph, 3, 3, seed=7)
        assert a.deleted == b.deleted and a.added == b.added

    def test_original_untouched(self, graph):
        edges_before = graph.number_of_edges()
        random_perturbation(graph, 5, 5, seed=2)
        assert graph.number_of_edges() == edges_before


class TestRandomSwitching:
    def test_degrees_preserved(self, graph):
        result = random_switching(graph, switches=10, seed=0)
        assert result.graph.degrees() == graph.degrees()
        assert result.mechanism == "random-switching"

    def test_edge_count_preserved(self, graph):
        result = random_switching(graph, switches=15, seed=1)
        assert result.graph.number_of_edges() == graph.number_of_edges()

    def test_edits_are_paired(self, graph):
        result = random_switching(graph, switches=5, seed=2)
        assert len(result.deleted) == len(result.added)
        assert len(result.deleted) % 2 == 0

    def test_zero_switches(self, graph):
        result = random_switching(graph, switches=0, seed=0)
        assert result.graph == graph
        assert result.edits == 0


class TestRandomizedResponse:
    def test_flip_probability_validation(self, graph):
        with pytest.raises(PerturbationError):
            randomized_response(graph, flip_probability=1.5)

    def test_zero_probability_is_identity_on_edges(self, graph):
        result = randomized_response(graph, flip_probability=0.0, seed=0)
        assert result.graph.edge_set() == graph.edge_set()

    def test_full_probability_removes_all_original_edges(self, graph):
        result = randomized_response(graph, flip_probability=1.0, seed=0, max_added=10)
        assert all(not result.graph.has_edge(*edge) for edge in graph.edges())
        assert len(result.added) <= 10

    def test_roughly_balanced_flips(self, graph):
        result = randomized_response(graph, flip_probability=0.3, seed=3)
        assert len(result.added) <= len(result.deleted)
        fraction = len(result.deleted) / graph.number_of_edges()
        assert 0.1 <= fraction <= 0.5
