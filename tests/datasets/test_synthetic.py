"""Tests for synthetic datasets and the Fig. 2 construction."""

import pytest

from repro.datasets.synthetic import (
    arenas_email_like,
    dblp_like,
    figure2_example,
    small_social_graph,
)
from repro.graphs.algorithms import average_clustering, is_connected


class TestArenasEmailLike:
    def test_default_scale_matches_real_dataset(self):
        graph = arenas_email_like()
        assert graph.number_of_nodes() == 1133
        # real network has 5451 edges; the stand-in should be within ~15%
        assert 4600 <= graph.number_of_edges() <= 6300

    def test_clustered_and_connected(self):
        graph = arenas_email_like(nodes=400, seed=2)
        assert average_clustering(graph) > 0.1
        assert is_connected(graph)

    def test_seed_reproducibility(self):
        assert arenas_email_like(nodes=300, seed=5) == arenas_email_like(nodes=300, seed=5)

    def test_custom_size(self):
        assert arenas_email_like(nodes=200).number_of_nodes() == 200


class TestDblpLike:
    def test_scaled_down_default(self):
        graph = dblp_like(nodes=1500)
        assert graph.number_of_nodes() == 1500
        # average degree around 6-7 like the real DBLP graph
        avg_degree = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert 4.0 <= avg_degree <= 8.0

    def test_high_clustering(self):
        graph = dblp_like(nodes=1000, seed=3)
        assert average_clustering(graph) > 0.2


class TestSmallSocialGraph:
    def test_size(self):
        graph = small_social_graph()
        assert graph.number_of_nodes() == 60
        assert graph.number_of_edges() > 60


class TestFigure2Example:
    def test_structure_sizes(self):
        example = figure2_example()
        assert len(example.targets) == 5
        assert len(example.protectors) == 4
        assert len(example.other_links) == 6
        assert example.graph.number_of_edges() == 15

    def test_all_labelled_links_are_edges(self):
        example = figure2_example()
        for edge in (
            *example.targets.values(),
            *example.protectors.values(),
            *example.other_links.values(),
        ):
            assert example.graph.has_edge(*edge)

    def test_labels_are_distinct_edges(self):
        example = figure2_example()
        all_edges = [
            *example.targets.values(),
            *example.protectors.values(),
            *example.other_links.values(),
        ]
        assert len(set(all_edges)) == len(all_edges)

    def test_ct_budget_division(self):
        example = figure2_example()
        division = example.ct_budget_division
        assert sum(division.values()) == 2
        assert division[example.targets["t1"]] == 1
        assert division[example.targets["t2"]] == 1

    def test_target_list_in_label_order(self):
        example = figure2_example()
        assert example.target_list[0] == example.targets["t1"]
        assert example.target_list[-1] == example.targets["t5"]
