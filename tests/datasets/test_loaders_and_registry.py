"""Tests for dataset loaders and the named registry."""

import gzip

import pytest

from repro.datasets.loaders import (
    load_edge_list_dataset,
    load_konect_arenas_email,
    load_snap_dblp,
)
from repro.datasets.registry import available_datasets, dataset_description, load_dataset
from repro.exceptions import DatasetError


class TestLoaders:
    def test_load_edge_list(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("# toy\n1 2\n2 3\n")
        graph = load_edge_list_dataset(path)
        assert graph.number_of_edges() == 2

    def test_load_edge_list_missing(self, tmp_path):
        with pytest.raises(DatasetError):
            load_edge_list_dataset(tmp_path / "missing.txt")

    def test_load_arenas_from_directory(self, tmp_path):
        (tmp_path / "out.arenas-email").write_text("% konect\n1 2\n2 3\n3 1\n")
        graph = load_konect_arenas_email(tmp_path)
        assert graph.number_of_edges() == 3

    def test_load_arenas_missing_mentions_download(self, tmp_path):
        with pytest.raises(DatasetError) as exc:
            load_konect_arenas_email(tmp_path)
        assert "konect" in str(exc.value).lower()

    def test_load_dblp_gzip(self, tmp_path):
        path = tmp_path / "com-dblp.ungraph.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("# snap\n10 20\n20 30\n")
        graph = load_snap_dblp(tmp_path)
        assert graph.number_of_edges() == 2

    def test_load_dblp_missing_mentions_download(self, tmp_path):
        with pytest.raises(DatasetError) as exc:
            load_snap_dblp(tmp_path / "nope.txt")
        assert "snap" in str(exc.value).lower()


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert "arenas-email" in names
        assert "dblp" in names

    def test_descriptions(self):
        assert "email" in dataset_description("arenas-email").lower()
        with pytest.raises(DatasetError):
            dataset_description("imaginary")

    def test_load_synthetic_by_name(self):
        graph = load_dataset("small-social")
        assert graph.number_of_nodes() == 60

    def test_load_with_kwargs(self):
        graph = load_dataset("arenas-email", nodes=150, seed=4)
        assert graph.number_of_nodes() == 150

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("facebook")

    def test_real_file_preferred_when_present(self, tmp_path):
        (tmp_path / "out.arenas-email").write_text("% konect\n1 2\n")
        graph = load_dataset("arenas-email", data_dir=tmp_path)
        assert graph.number_of_edges() == 1

    def test_falls_back_to_synthetic_when_dir_empty(self, tmp_path):
        graph = load_dataset("arenas-email", data_dir=tmp_path, nodes=120, seed=1)
        assert graph.number_of_nodes() == 120
