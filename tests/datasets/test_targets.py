"""Tests for target sampling strategies."""

import pytest

from repro.datasets.synthetic import small_social_graph
from repro.datasets.targets import (
    sample_degree_weighted_targets,
    sample_ego_targets,
    sample_random_targets,
)
from repro.exceptions import DatasetError
from repro.graphs.graph import Graph, canonical_edge


@pytest.fixture
def graph():
    return small_social_graph(seed=0)


class TestRandomTargets:
    def test_samples_existing_edges(self, graph):
        targets = sample_random_targets(graph, 10, seed=1)
        assert len(targets) == 10
        assert len(set(targets)) == 10
        assert all(graph.has_edge(*t) for t in targets)

    def test_reproducible(self, graph):
        assert sample_random_targets(graph, 5, seed=7) == sample_random_targets(
            graph, 5, seed=7
        )

    def test_too_many_requested(self):
        tiny = Graph(edges=[(0, 1)])
        with pytest.raises(DatasetError):
            sample_random_targets(tiny, 5, seed=0)


class TestDegreeWeightedTargets:
    def test_samples_existing_edges_without_duplicates(self, graph):
        targets = sample_degree_weighted_targets(graph, 8, seed=2)
        assert len(targets) == 8
        assert len(set(targets)) == 8
        assert all(graph.has_edge(*t) for t in targets)

    def test_biased_towards_hub_links(self, graph):
        degrees = graph.degrees()
        weighted = sample_degree_weighted_targets(graph, 10, seed=3)
        uniform = sample_random_targets(graph, 10, seed=3)

        def mean_product(edges):
            return sum(degrees[u] * degrees[v] for u, v in edges) / len(edges)

        # averaged over several seeds the bias must show
        weighted_mean = sum(
            mean_product(sample_degree_weighted_targets(graph, 10, seed=s))
            for s in range(5)
        )
        uniform_mean = sum(
            mean_product(sample_random_targets(graph, 10, seed=s)) for s in range(5)
        )
        assert weighted_mean > uniform_mean

    def test_too_many_requested(self):
        tiny = Graph(edges=[(0, 1), (1, 2)])
        with pytest.raises(DatasetError):
            sample_degree_weighted_targets(tiny, 5, seed=0)


class TestEgoTargets:
    def test_targets_incident_to_ego(self, graph):
        ego = max(graph.nodes(), key=graph.degree)
        targets = sample_ego_targets(graph, ego=ego, count=4, seed=0)
        assert len(targets) == 4
        assert all(ego in edge for edge in targets)

    def test_auto_ego_selection(self, graph):
        targets = sample_ego_targets(graph, count=3, seed=0)
        hub = max(graph.nodes(), key=lambda n: (graph.degree(n), str(n)))
        assert all(hub in edge for edge in targets)

    def test_ego_with_too_few_links(self):
        graph = Graph(edges=[(0, 1), (0, 2)])
        with pytest.raises(DatasetError):
            sample_ego_targets(graph, ego=1, count=3)

    def test_unknown_ego(self, graph):
        with pytest.raises(DatasetError):
            sample_ego_targets(graph, ego="ghost", count=1)

    def test_no_suitable_ego(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(DatasetError):
            sample_ego_targets(graph, count=5)

    def test_edges_are_canonical(self, graph):
        targets = sample_ego_targets(graph, count=3, seed=1)
        assert all(edge == canonical_edge(*edge) for edge in targets)
