"""Executable versions of the §VI-D counter-examples.

The paper argues that swapping the subgraph-count similarity for the classic
local indices breaks monotonicity of the dissimilarity under link deletion,
which is why those indices cannot be plugged into the greedy framework.  For
each index we verify, on the Fig. 7 style construction, that

* some deletion leaves the dissimilarity unchanged or increases it, and
* some deletion *decreases* it (the violation).
"""

import pytest

from repro.core.dissimilarity import LocalIndexDissimilarity, SubgraphDissimilarity
from repro.graphs.graph import Graph
from repro.prediction.local import (
    adamic_adar_index,
    hub_depressed_index,
    hub_promoted_index,
    jaccard_index,
    leicht_holme_newman_index,
    resource_allocation_index,
    salton_index,
    sorensen_index,
)

TARGET = ("u", "v")

INDICES = [
    jaccard_index,
    salton_index,
    sorensen_index,
    hub_promoted_index,
    hub_depressed_index,
    leicht_holme_newman_index,
    adamic_adar_index,
    resource_allocation_index,
]


def fig7_graph() -> Graph:
    """Released graph of Fig. 7: u and v share neighbors p2, p3; extra stubs.

    Node layout (paper's labels p1..p6 are edges there; here we realise an
    equivalent structure): u's neighbors {a, c1, c2}; v's neighbors
    {b, b2, c1, c2}; c2 additionally has a pendant neighbor so degrees differ
    between the two endpoints (needed for the Hub-Depressed violation).
    """
    return Graph(
        edges=[
            ("u", "a"),
            ("u", "c1"),
            ("u", "c2"),
            ("v", "b"),
            ("v", "b2"),
            ("v", "c1"),
            ("v", "c2"),
            ("c2", "x"),
        ]
    )


@pytest.mark.parametrize("index", INDICES, ids=lambda f: f.__name__)
def test_local_index_dissimilarity_is_not_monotone(index):
    graph = fig7_graph()
    f = LocalIndexDissimilarity([TARGET], index, constant=10.0)
    gains = {edge: f.marginal_gain(graph, edge) for edge in graph.edges()}
    assert any(gain < 0 for gain in gains.values()), (
        f"{index.__name__}: expected some deletion to DECREASE the dissimilarity"
    )
    assert any(gain > 0 for gain in gains.values()), (
        f"{index.__name__}: expected some deletion to increase the dissimilarity"
    )


@pytest.mark.parametrize("motif", ["triangle", "rectangle", "rectri"])
def test_subgraph_dissimilarity_is_monotone_on_same_graph(motif):
    """Contrast: the paper's subgraph dissimilarity never decreases."""
    graph = fig7_graph()
    f = SubgraphDissimilarity([TARGET], motif, constant=100)
    for edge in graph.edges():
        assert f.marginal_gain(graph, edge) >= 0


def test_resource_allocation_submodularity_counterexample():
    """Fig. 8: RA dissimilarity is monotone under hub-adjacent deletions but
    not submodular — a later deletion can have a LARGER marginal gain."""
    # v' is the shared hub: target1 = (u1, w1), target2 = (u2, w2), both
    # pairs share common neighbor v'; v' also has extra neighbors to give it
    # a large degree that shrinks as protectors are deleted.
    graph = Graph(
        edges=[
            ("u1", "hub"),
            ("w1", "hub"),
            ("u2", "hub"),
            ("w2", "hub"),
            ("hub", "extra1"),
            ("hub", "extra2"),
        ]
    )
    targets = [("u1", "w1"), ("u2", "w2")]
    f = LocalIndexDissimilarity(targets, resource_allocation_index, constant=10.0)

    # first deletion shrinks the hub's degree without breaking any triangle;
    # the second deletion breaks target2's triangle.  Its marginal gain is
    # LARGER after the first deletion (1/5 -> ... -> 1/4 terms), violating
    # submodularity.
    first = ("extra1", "hub")
    second = ("u2", "hub")
    gain_on_empty = f.marginal_gain(graph, second)
    gain_after_first = f.marginal_gain(graph.without_edges([first]), second)
    assert gain_after_first > gain_on_empty
