"""Tests for the motif-based predictors (the paper's threat model)."""

import pytest

from repro.graphs.graph import Graph
from repro.motifs.similarity import similarity
from repro.prediction.base import get_predictor
from repro.prediction.motif_based import MotifPredictor


@pytest.fixture
def released_graph():
    # hidden target (0, 1); two triangles and one rectangle-ish path survive
    return Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (4, 5), (5, 1)])


class TestMotifPredictor:
    def test_score_equals_similarity(self, released_graph):
        predictor = MotifPredictor("triangle")
        assert predictor.score(released_graph, 0, 1) == similarity(
            released_graph, (0, 1), "triangle"
        )

    def test_rectangle_score(self, released_graph):
        predictor = MotifPredictor("rectangle")
        assert predictor.score(released_graph, 0, 1) == similarity(
            released_graph, (0, 1), "rectangle"
        )

    def test_existing_edge_scored_on_phase1_style_graph(self):
        graph = Graph(edges=[(0, 1), (0, 2), (1, 2)])
        predictor = MotifPredictor("triangle")
        # scoring an existing edge removes it first, so the score equals the
        # similarity the TPP model would assign to it as a target
        assert predictor.score(graph, 0, 1) == 1.0

    def test_registered_specialisations(self, released_graph):
        for name in ("triangle_motif", "rectangle_motif", "rectri_motif"):
            predictor = get_predictor(name)
            assert predictor.score(released_graph, 0, 1) >= 0.0

    def test_fully_protected_graph_scores_zero(self, released_graph):
        protected = released_graph.without_edges([(0, 2), (0, 3)])
        predictor = MotifPredictor("triangle")
        assert predictor.score(protected, 0, 1) == 0.0
